"""Gateway middleware: a thundering herd collapsed to one backend invocation.

Fifty clients ask for the *same* response at the *same* instant — the
classic thundering herd a cache miss (or a popular cold URL) triggers.
Two runs over byte-identical arrivals show what the ingress pipeline buys:

* **Bare gateway** — all fifty requests queue, and the backend is invoked
  fifty times for one answer.
* **cache + coalesce pipeline** — the first request becomes the in-flight
  *leader*; the other forty-nine park behind it (no queue slot, no backend
  work) and resolve the instant the leader does.  The completed response
  also fills the response cache, so a second herd arriving later is
  answered entirely at the ingress: zero backend invocations.

The exactly-one-invocation and >=90%-hit-rate punchlines are asserted as a
regression benchmark in ``benchmarks/test_middleware_pipeline.py``.

Run with::

    python examples/middleware_pipeline.py
"""

from __future__ import annotations

import sys

from repro.gateway.middleware import build_pipeline
from repro.traffic import TrafficEngine, render_middleware_table
from repro.traffic.arrivals import Request

MB = 1024 * 1024
HERD = 50
REPEAT_AT_S = 30.0  # the second herd, well after the first resolves


def make_herds() -> list:
    """Two thundering herds for one hot response key, 30 s apart."""
    return [
        Request(
            request_id=index,
            arrival_s=0.0 if index < HERD else REPEAT_AT_S,
            function="hot-lookup",
            payload_bytes=4 * MB,
        )
        for index in range(2 * HERD)
    ]


def run(with_pipeline: bool):
    middleware = build_pipeline(["cache", "coalesce"]) if with_pipeline else None
    engine = TrafficEngine("roadrunner-user", middleware=middleware)
    summary = engine.run(make_herds())
    return engine, summary


def main() -> int:
    bare_engine, bare = run(with_pipeline=False)
    piped_engine, piped = run(with_pipeline=True)

    print("Thundering herd: %d identical requests at t=0, %d more at t=%.0fs"
          % (HERD, HERD, REPEAT_AT_S))
    print()
    print("Bare gateway       : %3d backend invocations for %d requests"
          % (bare.completed, bare.offered))
    print("cache + coalesce   : %3d backend invocation(s) — %d coalesced behind the"
          % (piped.completed, piped.coalesced))
    print("                     leader, %d answered from the response cache"
          % piped.cached)
    print()
    print(render_middleware_table(piped_engine.middleware_stats))
    print()
    print("Tail latency, herd member (p99): bare %.4fs -> piped %.4fs"
          % (bare.latency.p99_s, piped.latency.p99_s))

    ok = (
        piped.completed == 1
        and piped.coalesced == HERD - 1
        and piped.cached == HERD
        and bare.completed == 2 * HERD
    )
    print()
    print("OK" if ok else "UNEXPECTED: middleware accounting drifted")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
