"""Noisy neighbour: two tenants on one cluster, with and without fairness.

A steady tenant (Poisson, 20 rps) and a bursty tenant (300 rps on-windows)
share a single 4-core node.  Both runs see *byte-identical* seeded arrival
streams; the only difference is the gateway's dispatch policy:

* **FIFO** — one logical global queue.  Every burst parks hundreds of the
  noisy tenant's requests ahead of the steady tenant, whose p99 latency
  explodes to the burst drain time.
* **WFQ** — weighted fair queueing over per-tenant queues.  Each freed core
  alternates between tenants, so the steady tenant's tail barely notices
  the burst while the noisy tenant only queues against itself.

This is the middleware concern the runtime comparison papers take as
given: fair multiplexing of concurrent applications over shared
infrastructure.  The punchline — the steady tenant's p99 under WFQ
strictly beats FIFO — is asserted as a regression benchmark in
``benchmarks/test_traffic_noisy_neighbour.py``.

Run with::

    python examples/noisy_neighbour.py
"""

from __future__ import annotations

import sys

from repro.traffic import (
    Autoscaler,
    BurstyArrivals,
    FairnessPolicy,
    MultiTenantTrafficEngine,
    PoissonArrivals,
    TargetConcurrencyPolicy,
    TenantSpec,
    TrafficConfig,
    render_multi_tenant_report,
)

DURATION_S = 20.0
PAYLOAD_MB = 50.0


def make_tenants() -> list:
    """The tenant mix: identical seeds for every run that calls this."""
    return [
        TenantSpec(
            name="steady",
            mode="roadrunner-user",
            weight=1,
            arrivals=PoissonArrivals(
                rate_rps=20.0, duration_s=DURATION_S, function="steady",
                payload_mb=PAYLOAD_MB, seed=7,
            ),
        ),
        TenantSpec(
            name="noisy",
            mode="roadrunner-user",
            weight=1,
            arrivals=BurstyArrivals(
                on_rate_rps=300.0, duration_s=DURATION_S, on_s=3.0, off_s=5.0,
                function="noisy", payload_mb=PAYLOAD_MB, seed=8,
            ),
        ),
    ]


def run(fairness: FairnessPolicy):
    engine = MultiTenantTrafficEngine(
        make_tenants(),
        config=TrafficConfig(nodes=1, initial_replicas=2),
        fairness=fairness,
        autoscaler_factory=lambda: Autoscaler(
            TargetConcurrencyPolicy(1.0), min_replicas=1, max_replicas=8, keep_alive_s=5.0
        ),
    )
    return engine.run()


def main() -> int:
    wfq = run(FairnessPolicy.WFQ)
    fifo = run(FairnessPolicy.FIFO)

    print(render_multi_tenant_report(wfq))
    print()

    steady_wfq = wfq.tenants["steady"].latency
    steady_fifo = fifo.tenants["steady"].latency
    noisy_wfq = wfq.tenants["noisy"].latency
    print("Steady tenant, identical arrivals, shared 4-core node:")
    print(
        "  FIFO sharing : p50=%.3fs  p99=%.3fs   (queued behind every burst)"
        % (steady_fifo.p50_s, steady_fifo.p99_s)
    )
    print(
        "  WFQ sharing  : p50=%.3fs  p99=%.3fs   (%.0fx better p99)"
        % (steady_wfq.p50_s, steady_wfq.p99_s, steady_fifo.p99_s / steady_wfq.p99_s)
    )
    print(
        "  Noisy tenant pays for its own burst either way: p99=%.3fs under WFQ."
        % noisy_wfq.p99_s
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
