"""Observability drill-down: one instrumented run, every telemetry surface.

Drives a seeded bursty stream against Roadrunner's user-space mode with a
full telemetry stack attached, then walks the outputs an operator would
reach for, in order of zoom:

1. the **latency waterfall** — where completed requests spent their time
   (queue vs cold start vs service), per scheduling class;
2. the **metrics registry** — request counters by outcome, replica and
   queue-depth gauges, latency summaries with P² sketch percentiles,
   printed as a Prometheus text-exposition snapshot;
3. the **request traces** — per-request lifecycle spans, exported as
   Perfetto/Chrome trace JSON with queue / cold-start / service slices
   nested inside each request's track (open in https://ui.perfetto.dev);
4. the **JSONL event stream** — one structured line per request outcome
   and scaling action, diffable across seeded runs;
5. the same run again in **sketch mode** (``retain_records=False``):
   no per-request records retained, identical summary shape, streaming
   percentiles within a whisker of the exact ones.

Run with::

    python examples/observability_drilldown.py
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.metrics.timeline import export_traffic_trace
from repro.obs import (
    JsonlEventWriter,
    ProgressReporter,
    Telemetry,
    TraceLog,
    read_jsonl,
    render_prometheus,
)
from repro.traffic import (
    Autoscaler,
    BurstyArrivals,
    TargetConcurrencyPolicy,
    TrafficConfig,
    TrafficEngine,
    render_waterfall_table,
)


def make_autoscaler() -> Autoscaler:
    return Autoscaler(
        TargetConcurrencyPolicy(target_concurrency=1.0),
        min_replicas=1,
        max_replicas=32,
        keep_alive_s=10.0,
        control_interval_s=1.0,
    )


def main() -> int:
    arrivals = BurstyArrivals(
        on_rate_rps=120.0, duration_s=40.0, on_s=5.0, off_s=10.0, payload_mb=1.0, seed=23
    )
    requests = arrivals.generate()
    out_dir = tempfile.mkdtemp(prefix="repro-obs-")
    events_path = os.path.join(out_dir, "events.jsonl")
    trace_path = os.path.join(out_dir, "trace.json")

    # 1-4: one instrumented run with every sink attached.
    telemetry = Telemetry(
        trace_log=TraceLog(),
        events=JsonlEventWriter(events_path),
        progress=ProgressReporter(interval_s=10.0),
    )
    engine = TrafficEngine("roadrunner-user", autoscaler=make_autoscaler(), telemetry=telemetry)
    summary = engine.run(requests, pattern=arrivals.name)
    telemetry.events.close()

    print(render_waterfall_table(engine.waterfall))
    print()
    print("Prometheus exposition snapshot (first 20 lines):")
    for line in render_prometheus(telemetry.registry).splitlines()[:20]:
        print("  " + line)

    export_traffic_trace(trace_path, telemetry.trace_log.traces)
    events = read_jsonl(events_path)
    scaling = [event for event in events if event["event"] == "scale"]
    print()
    print("wrote %s (%d request tracks; open in ui.perfetto.dev)" % (trace_path, len(telemetry.trace_log)))
    print("wrote %s (%d events, %d scaling actions)" % (events_path, len(events), len(scaling)))

    # 5: the same stream in sketch mode — no records, streaming percentiles.
    sketch_engine = TrafficEngine(
        "roadrunner-user",
        autoscaler=make_autoscaler(),
        config=TrafficConfig(retain_records=False),
    )
    sketch = sketch_engine.run(requests, pattern=arrivals.name)
    print()
    print("exact  p50/p99: %.6fs / %.6fs (from %d retained records)"
          % (summary.latency.p50_s, summary.latency.p99_s, len(engine.records)))
    print("sketch p50/p99: %.6fs / %.6fs (from %d retained records)"
          % (sketch.latency.p50_s, sketch.latency.p99_s, len(sketch_engine.records)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
