"""Quickstart: two chained Wasm functions exchanging data through Roadrunner.

Deploys ``ingest`` and ``infer`` into one shared Wasm VM on a single node,
sends a small text payload through the Roadrunner facade channel (which picks
the user-space mode automatically) and prints the latency breakdown next to
the WasmEdge HTTP baseline for the same transfer.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Cluster,
    FunctionSpec,
    Invoker,
    Orchestrator,
    Payload,
    RoadrunnerChannel,
    RuntimeKind,
    SequenceWorkflow,
    WasmEdgeHttpChannel,
)


def run_roadrunner(payload: Payload):
    """Deploy the chained pair in one Wasm VM and transfer through Roadrunner."""
    cluster = Cluster.single_node()
    orchestrator = Orchestrator(cluster)
    specs = [
        FunctionSpec("ingest", runtime=RuntimeKind.ROADRUNNER, workflow="quickstart"),
        FunctionSpec("infer", runtime=RuntimeKind.ROADRUNNER, workflow="quickstart"),
    ]
    orchestrator.deploy_all(specs, share_vm_key="quickstart", materialize=True)
    channel = RoadrunnerChannel(cluster)
    invoker = Invoker(orchestrator, channel)
    result = invoker.invoke(SequenceWorkflow(["ingest", "infer"]), payload)
    return channel, result


def run_wasmedge_baseline(payload: Payload):
    """The same pair as separate WasmEdge functions talking HTTP through WASI."""
    cluster = Cluster.single_node()
    orchestrator = Orchestrator(cluster)
    specs = [
        FunctionSpec("ingest", runtime=RuntimeKind.WASMEDGE),
        FunctionSpec("infer", runtime=RuntimeKind.WASMEDGE),
    ]
    orchestrator.deploy_all(specs, materialize=True)
    invoker = Invoker(orchestrator, WasmEdgeHttpChannel(cluster))
    return invoker.invoke(SequenceWorkflow(["ingest", "infer"]), payload)


def main() -> None:
    payload = Payload.from_text("hello, roadrunner! " * 2048)  # ~38 KB of text
    channel, roadrunner = run_roadrunner(payload)
    baseline = run_wasmedge_baseline(payload)

    delivered = roadrunner.outcomes["ingest->infer"].delivered
    payload.require_match(delivered)

    print("Payload size          : %d bytes" % payload.size)
    print("Roadrunner mode       : %s" % channel.last_mode.value)
    print("Roadrunner latency    : %.6f s" % roadrunner.total_latency_s)
    print("  serialization       : %.6f s" % roadrunner.aggregate.serialization_s)
    print("  Wasm VM I/O         : %.6f s" % roadrunner.aggregate.wasm_io_s)
    print("WasmEdge HTTP latency : %.6f s" % baseline.total_latency_s)
    print("  serialization       : %.6f s" % baseline.aggregate.serialization_s)
    speedup = baseline.total_latency_s / roadrunner.total_latency_s
    print("Speedup               : %.1fx" % speedup)
    print("Delivered payload matches the sent payload: OK")


if __name__ == "__main__":
    main()
