"""Ingress gateway + trace replay: a platform-level view of Roadrunner.

Clients never address a serverless function directly — they hit the platform
ingress, which load-balances across replicas (Sec. 1 of the paper).  This
example registers a small replica pool behind the gateway, replays a bursty
invocation trace against it with Roadrunner's user-space transfers, and then
replays the same trace on the WasmEdge HTTP baseline for comparison.

Run with::

    python examples/edge_gateway_replay.py
"""

from __future__ import annotations

from repro import Cluster, FunctionSpec, Orchestrator, RuntimeKind
from repro.core.router import RoadrunnerChannel
from repro.platform.gateway import IngressGateway, RoutingPolicy
from repro.workloads.generators import make_payload
from repro.workloads.traces import bursty_trace, compare_modes_on_trace


def gateway_demo() -> None:
    print("=== Ingress gateway: routing client requests to replicas ===")
    cluster = Cluster.single_node()
    orchestrator = Orchestrator(cluster)
    ingest = orchestrator.deploy(
        FunctionSpec("ingest", runtime=RuntimeKind.ROADRUNNER, workflow="wf"),
        "node-a",
        share_vm_key="wf",
        materialize=True,
    )
    gateway = IngressGateway(orchestrator, policy=RoutingPolicy.LEAST_LOADED)
    gateway.register(
        FunctionSpec("detector", runtime=RuntimeKind.ROADRUNNER, workflow="wf"),
        replicas=3,
        node_name="node-a",
        share_vm_key="wf",
    )
    channel = RoadrunnerChannel(cluster)

    payload = make_payload(2, real=True)
    # Route a burst of six concurrent requests: least-loaded spreads them over
    # the three replicas, then they are released as they complete.
    in_flight = []
    for request in range(6):
        replica = gateway.route("detector")
        outcome = channel.transfer(ingest, replica, payload)
        in_flight.append((request, replica, outcome))
        print("request %d -> %-12s %.6f s (mode=%s)"
              % (request, replica.name, outcome.metrics.total_latency_s, outcome.metrics.mode))
    for _, replica, _ in in_flight:
        gateway.release("detector", replica)
    print("requests served per replica:", gateway.served_per_replica("detector"))


def trace_demo() -> None:
    print("\n=== Bursty trace replay: Roadrunner vs WasmEdge HTTP ===")
    trace = bursty_trace(bursts=3, burst_size=15, payload_mb=10)
    results = compare_modes_on_trace(trace, ("roadrunner-user", "wasmedge-http"))
    for mode, result in results.items():
        print("  " + result.summary())
    roadrunner, wasmedge = results["roadrunner-user"], results["wasmedge-http"]
    print("p95 latency improvement: %.1f%%"
          % (100 * (1 - roadrunner.p95_latency_s / wasmedge.p95_latency_s)))


def main() -> None:
    gateway_demo()
    trace_demo()


if __name__ == "__main__":
    main()
