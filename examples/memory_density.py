"""Memory density: what a node's RSS budget does to keep-alive economics.

Two byte-identical workloads — a bursty container tenant next to a steady
Wasm tenant — run twice over the same seeds:

* **Unbounded memory** — idle replicas park for the full keep-alive window
  at zero cost; the cluster carries every warm replica it ever started.
* **60 MB node budget** — parked replicas now occupy a scarce resource.
  Past the pressure knee service times inflate, the autoscaler trims its
  keep-alive window, and the OOM evictor reclaims the coldest idle replica
  when a node overflows — forcing that tenant to pay a cold start on its
  next burst.

The punchline is the density column the paper's argument rests on:
**RSS-MB-seconds per 1000 served requests**, the resident memory a unit
of goodput costs.  Containers (~38 MB parked) are an order of magnitude
more expensive to keep warm than Wasm replicas (~9 MB), which is exactly
why a memory-priced cluster evicts them first.

Run with::

    python examples/memory_density.py
"""

from __future__ import annotations

import sys

from repro.traffic.arrivals import BurstyArrivals, PoissonArrivals
from repro.traffic.engine import MultiTenantTrafficEngine, TrafficConfig
from repro.traffic.report import render_summary_table
from repro.traffic.tenants import TenantSpec

NODE_BUDGET_MB = 60.0


def make_tenants() -> list:
    """A bursty container tenant beside a steady Wasm tenant."""
    return [
        TenantSpec(
            name="containers",
            mode="runc-http",  # ~38 MB parked per replica
            weight=1,
            arrivals=BurstyArrivals(
                on_rate_rps=40, duration_s=12, function="containers",
                payload_mb=0.5, seed=7,
            ),
        ),
        TenantSpec(
            name="wasm",
            mode="roadrunner-user",  # ~9 MB parked per replica
            weight=1,
            arrivals=PoissonArrivals(
                rate_rps=20, duration_s=12, function="wasm",
                payload_mb=0.5, seed=11,
            ),
        ),
    ]


def run(node_memory_mb: float):
    engine = MultiTenantTrafficEngine(
        make_tenants(),
        config=TrafficConfig(nodes=2, node_memory_mb=node_memory_mb),
    )
    summary = engine.run()
    return engine, summary


def main() -> int:
    _, unbounded = run(node_memory_mb=0.0)
    engine, budgeted = run(node_memory_mb=NODE_BUDGET_MB)

    print("Same seeds, same arrivals; only the node RSS budget changes.")
    print()
    print("Unbounded memory (no model):")
    print(render_summary_table(dict(unbounded.tenants, cluster=unbounded.cluster)))
    print()
    print("%.0f MB per node:" % NODE_BUDGET_MB)
    print(render_summary_table(dict(budgeted.tenants, cluster=budgeted.cluster)))
    print()

    print("OOM evictions (time, tenant, replica):")
    for when, tenant, replica in engine.evictions:
        print("  t=%7.3fs  %-10s %s" % (when, tenant, replica))
    print()
    print("Cold starts: %d unbounded -> %d budgeted (evicted replicas must"
          % (unbounded.cluster.cold_starts, budgeted.cluster.cold_starts))
    print("restart to serve the next burst).")
    for name in ("containers", "wasm"):
        row = budgeted.tenants[name]
        print("%-10s: %8.1f RSS-MB-s per 1k served requests"
              % (name, row.rss_mb_per_1k))

    containers = budgeted.tenants["containers"]
    wasm = budgeted.tenants["wasm"]
    ok = (
        budgeted.cluster.oom_evictions > 0
        and budgeted.cluster.cold_starts > unbounded.cluster.cold_starts
        and unbounded.cluster.oom_evictions == 0
        and containers.rss_mb_per_1k > wasm.rss_mb_per_1k
    )
    print()
    print("OK" if ok else "UNEXPECTED: memory-pressure accounting drifted")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
