"""Reproduce every figure of the paper's evaluation and print the tables.

This is a thin wrapper around :mod:`repro.experiments`: it runs Figs. 2, 6,
7, 8, 9 and 10 (optionally with the full sweeps) and prints one fixed-width
table per panel, in the same units the paper plots.

Run with::

    python examples/reproduce_paper.py            # quick sweeps (seconds)
    python examples/reproduce_paper.py --full     # the paper's full sweeps
"""

from __future__ import annotations

import argparse

from repro.experiments.runner import render_all, run_all


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full payload-size and fan-out sweeps instead of the quick subset",
    )
    arguments = parser.parse_args()
    results = run_all(quick=not arguments.full)
    print(render_all(results))


if __name__ == "__main__":
    main()
