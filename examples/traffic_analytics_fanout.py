"""Traffic analytics fan-out: one ingest function feeding many analysers.

The paper's second motivating workload: traffic data arrives at an ingest
function which fans records out to N analytics functions.  The example runs
the fan-out at several degrees for all four intra-node configurations
(Roadrunner user space, Roadrunner kernel space, RunC HTTP, WasmEdge HTTP)
and prints the latency/throughput scaling table — a miniature of Fig. 9.

Run with::

    python examples/traffic_analytics_fanout.py
"""

from __future__ import annotations

from repro.experiments.environment import INTRA_NODE_MODES
from repro.experiments.harness import measure_fanout
from repro.experiments.panels import mode_label
from repro.metrics.report import format_table
from repro.workloads.scenarios import traffic_records

DEGREES = (1, 5, 10, 25)
PAYLOAD_MB = 2


def main() -> None:
    sample = traffic_records(vehicles=200)
    print("Each analytics branch receives %g MB of traffic records" % PAYLOAD_MB)
    print("(a real sample record batch is %d bytes of JSON)\n" % sample.size)

    latency_rows = []
    throughput_rows = []
    for degree in DEGREES:
        latency_row = [degree]
        throughput_row = [degree]
        for mode in INTRA_NODE_MODES:
            aggregate = measure_fanout(mode, degree=degree, payload_mb=PAYLOAD_MB)
            latency_row.append(round(aggregate.mean_branch_latency_s, 5))
            throughput_row.append(round(aggregate.throughput_rps, 1))
        latency_rows.append(latency_row)
        throughput_rows.append(throughput_row)

    headers = ["fanout"] + [mode_label(mode) for mode in INTRA_NODE_MODES]
    print(format_table(headers, latency_rows, title="Mean per-branch latency (s)"))
    print()
    print(format_table(headers, throughput_rows, title="Aggregate throughput (requests/s)"))
    print(
        "\nRoadrunner (User space) keeps per-branch latency lowest and scales "
        "throughput furthest; WasmEdge pays Wasm-speed serialization on every branch."
    )


if __name__ == "__main__":
    main()
