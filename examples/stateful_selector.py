"""Stateful functions and dynamic runtime selection (future-work extensions).

Two things the paper lists as future work are implemented as extensions in
this reproduction and shown here together:

1. the **dynamic runtime selector** picks a runtime/data-passing mode per
   workflow from its profile (payload size, cold-start frequency,
   colocatability);
2. the **shim-managed state store** lets a function keep state (an ML model's
   feature cache here) in its own linear memory across invocations, and hand
   it to a trusted colocated function without serialization.

Run with::

    python examples/stateful_selector.py
"""

from __future__ import annotations

from repro import Cluster, FunctionSpec, Orchestrator, Payload, RuntimeKind
from repro.core.state import ShimStateStore
from repro.core.user_space import UserSpaceChannel
from repro.platform.runtime_selector import RuntimeSelector, WorkflowProfile
from repro.workloads.scenarios import sensor_batch

MB = 1024 * 1024


def pick_runtime() -> None:
    print("=== Dynamic runtime selection ===")
    selector = RuntimeSelector()
    profiles = {
        "chatty API (small payloads, warm)": WorkflowProfile(
            payload_bytes=int(0.2 * MB), cold_start_fraction=0.0
        ),
        "video analytics (large payloads, colocatable)": WorkflowProfile(
            payload_bytes=120 * MB, cold_start_fraction=0.05
        ),
        "edge-to-cloud aggregation (remote stages)": WorkflowProfile(
            payload_bytes=30 * MB, colocatable=False
        ),
        "bursty cron jobs (cold starts dominate)": WorkflowProfile(
            payload_bytes=1 * MB, cold_start_fraction=0.9
        ),
    }
    for name, profile in profiles.items():
        recommendation = selector.recommend(profile)
        print("\n%s" % name)
        print("  -> runtime: %s, data passing: %s, est. %.4f s/invocation"
              % (recommendation.runtime.value, recommendation.data_passing.value,
                 recommendation.estimated_latency_s))
        print("     %s" % recommendation.rationale)


def stateful_pipeline() -> None:
    print("\n=== Shim-managed function state ===")
    cluster = Cluster.single_node()
    orchestrator = Orchestrator(cluster)
    specs = [
        FunctionSpec("aggregator", runtime=RuntimeKind.ROADRUNNER, workflow="iot"),
        FunctionSpec("detector", runtime=RuntimeKind.ROADRUNNER, workflow="iot"),
    ]
    aggregator, detector = orchestrator.deploy_all(specs, share_vm_key="iot", materialize=True)
    channel = UserSpaceChannel(cluster)
    aggregator_state = ShimStateStore(channel.shim_for(aggregator))
    detector_state = ShimStateStore(channel.shim_for(detector))

    # The aggregator keeps a rolling window of sensor batches across invocations.
    for invocation in range(3):
        batch = sensor_batch(readings=64 + 32 * invocation, sensor_id="edge-%d" % invocation)
        version = aggregator_state.put("rolling-window", batch)
        print("invocation %d: stored %d bytes of state (version %d)"
              % (invocation, batch.size, version))

    # Hand the current window to the detector without serialization.
    aggregator_state.share_with(detector_state, "rolling-window")
    window = detector_state.get("rolling-window")
    print("detector sees the window: %d bytes, version %d"
          % (window.size, detector_state.version("rolling-window")))

    # Ordinary data-plane transfers keep working alongside the state store.
    outcome = channel.transfer(aggregator, detector, Payload.from_text("trigger"))
    print("data-plane transfer alongside state: %.6f s, serialization %.6f s"
          % (outcome.metrics.total_latency_s, outcome.metrics.serialization_s))


def main() -> None:
    pick_runtime()
    stateful_pipeline()


if __name__ == "__main__":
    main()
