"""Follow the sun: three regions, staggered diurnal peaks, one global router.

Three tenants live in three WAN-linked regions — Europe, the US east coast
and Asia-Pacific.  Each drives a diurnal arrival stream whose "day" is
shifted by a third of the cycle (``phase_s``), the classic follow-the-sun
pattern: when eu-west peaks, us-east is mid-morning and ap-south is asleep.

Two federated runs see *byte-identical* seeded arrivals; only the global
router's policy differs:

* **locality** — requests serve in their home region unless it is saturated
  or failed.  Almost nothing crosses the WAN, so the tail latency is the
  home cluster's queueing behaviour and nothing else.
* **random** — the seeded baseline scatters placements uniformly.  Roughly
  two thirds of all requests pay a WAN round trip before they even queue,
  which the end-to-end tail cannot hide.

The punchline — locality's p99 strictly beats random's, and ships an order
of magnitude fewer bytes across regions — is asserted here and re-checked
as a regression benchmark in ``benchmarks/test_federation.py``.

Run with::

    python examples/follow_the_sun.py
"""

from __future__ import annotations

import sys

from repro.traffic import (
    ClusterSpec,
    DiurnalArrivals,
    FederatedTrafficEngine,
    TenantSpec,
    TrafficConfig,
    render_router_table,
)

DURATION_S = 30.0
PERIOD_S = 30.0  # one simulated "day"
PAYLOAD_MB = 2.0
WAN_RTT_S = 0.080
WAN_BANDWIDTH_BPS = 250e6 / 8.0  # 250 Mbit/s

REGIONS = ("eu-west", "us-east", "ap-south")


def make_tenants() -> list:
    """One tenant per region, peaks staggered by a third of the day."""
    return [
        TenantSpec(
            name="app-%s" % region,
            mode="roadrunner-user",
            arrivals=DiurnalArrivals(
                peak_rps=60.0,
                trough_rps=6.0,
                duration_s=DURATION_S,
                period_s=PERIOD_S,
                phase_s=index * PERIOD_S / len(REGIONS),
                payload_mb=PAYLOAD_MB,
                seed=11 + index,
            ),
        )
        for index, region in enumerate(REGIONS)
    ]


def make_clusters() -> list:
    return [
        ClusterSpec(region=region, nodes=4, tenants=("app-%s" % region,))
        for region in REGIONS
    ]


def run(policy: str):
    engine = FederatedTrafficEngine(
        make_tenants(),
        make_clusters(),
        config=TrafficConfig(nodes=4, initial_replicas=1),
        router=policy,
        wan_rtt_s=WAN_RTT_S,
        wan_bandwidth_Bps=WAN_BANDWIDTH_BPS,
    )
    return engine.run()


def main() -> int:
    locality = run("locality")
    random = run("random")

    print(render_router_table(locality))
    print()
    print(render_router_table(random))
    print()

    p99_local = locality.cluster.latency.p99_s
    p99_random = random.cluster.latency.p99_s
    print("Identical staggered diurnal arrivals, three 4-node regions:")
    print(
        "  locality router : p99=%.3fs  %5.1f MB over the WAN"
        % (p99_local, locality.router.wan_bytes / 1e6)
    )
    print(
        "  random router   : p99=%.3fs  %5.1f MB over the WAN  (%.1fx worse p99)"
        % (p99_random, random.router.wan_bytes / 1e6, p99_random / p99_local)
    )

    assert locality.cluster.completed == locality.cluster.offered
    assert random.cluster.completed == random.cluster.offered
    assert p99_local < p99_random, (
        "locality p99 %.4fs should beat random %.4fs" % (p99_local, p99_random)
    )
    assert locality.router.wan_bytes < random.router.wan_bytes
    print("\nfollow-the-sun: locality beats the random baseline on p99. OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
