"""Steady-state autoscaling: sustained Poisson traffic against two runtimes.

Generates one seeded Poisson arrival stream (40 rps for 45 simulated
seconds, 1 MB payloads) and drives it against Roadrunner's user-space mode
and the RunC HTTP baseline with a Knative-style target-concurrency
autoscaler.  Both runs see *exactly* the same arrivals, so every difference
in the report — replica counts, cold-start spend, tail latency — comes from
the runtime's per-invocation costs, not the workload.

The punchline mirrors the paper at platform scale: Roadrunner's cheap
transfers let a tiny pool absorb the stream, while the container baseline
scales wide and pays seconds of cold starts to hold the same goodput.

Run with::

    python examples/steady_state_autoscale.py
"""

from __future__ import annotations

import sys

from repro.traffic import (
    Autoscaler,
    PoissonArrivals,
    TargetConcurrencyPolicy,
    TrafficConfig,
    render_traffic_report,
    run_comparison,
)


def main() -> int:
    arrivals = PoissonArrivals(rate_rps=40.0, duration_s=45.0, payload_mb=1.0, seed=11)
    requests = arrivals.generate()

    def autoscaler_factory() -> Autoscaler:
        return Autoscaler(
            TargetConcurrencyPolicy(target_concurrency=1.0),
            min_replicas=1,
            max_replicas=64,
            keep_alive_s=10.0,
            control_interval_s=1.0,
        )

    results = run_comparison(
        requests,
        modes=("roadrunner-user", "runc-http"),
        autoscaler_factory=autoscaler_factory,
        config=TrafficConfig(nodes=4, initial_replicas=1),
        pattern=arrivals.name,
    )
    print(render_traffic_report(results))

    roadrunner = results["roadrunner-user"]
    runc = results["runc-http"]
    print()
    print(
        "Roadrunner held %.1f rps with a mean pool of %.1f replicas (%.2fs cold starts);"
        % (roadrunner.goodput_rps, roadrunner.mean_replicas, roadrunner.cold_start_seconds)
    )
    print(
        "RunC needed %.1f replicas on average and %.2fs of cold starts for %.1f rps."
        % (runc.mean_replicas, runc.cold_start_seconds, runc.goodput_rps)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
