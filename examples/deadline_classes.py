"""Deadline classes: EDF vs FIFO inside one tenant's queue, same arrivals.

One tenant sends a 50/50 mix of two scheduling classes over a shared
4-core node: **interactive** requests (priority 0) that must finish within
200 ms of arrival, and **batch** requests (priority 1) with no deadline.
Traffic arrives in bursts that briefly outrun the fixed pool, so requests
queue — and the intra-tenant dispatch order decides who waits:

* **FIFO** — arrival order, class-blind.  Every burst parks interactive
  requests behind whatever batch work arrived first; their deadline-met
  ratio drops to the burst drain behaviour.
* **EDF** — priority tiers, earliest deadline first.  Interactive requests
  jump the batch backlog (which has no deadline to miss), so their
  deadline-met ratio stays at 1.0 while batch merely finishes later.

Both runs see *byte-identical* seeded arrivals with *identical* class
stamps; the only difference is the gateway's intra-tenant order.  The
punchline — EDF's deadline-met ratio strictly beats FIFO's — is asserted
as a regression benchmark in ``benchmarks/test_traffic_deadline_classes.py``.

Run with::

    python examples/deadline_classes.py
"""

from __future__ import annotations

import sys

from repro.traffic import (
    Autoscaler,
    BurstyArrivals,
    FairnessPolicy,
    FixedReplicasPolicy,
    IntraTenantOrder,
    MultiTenantTrafficEngine,
    RequestClass,
    TenantSpec,
    TrafficConfig,
    render_class_table,
)

DURATION_S = 20.0
PAYLOAD_MB = 50.0
DEADLINE_S = 0.2

CLASSES = (
    RequestClass("interactive", share=0.5, priority=0, deadline_s=DEADLINE_S),
    RequestClass("batch", share=0.5, priority=1),
)


def make_tenant() -> TenantSpec:
    """The tenant spec: identical seeds (and class stamps) for every run."""
    return TenantSpec(
        name="app",
        mode="roadrunner-user",
        weight=1,
        arrivals=BurstyArrivals(
            on_rate_rps=120.0, duration_s=DURATION_S, on_s=4.0, off_s=6.0,
            function="app", payload_mb=PAYLOAD_MB, seed=11,
        ),
        classes=CLASSES,
    )


def run(intra: IntraTenantOrder):
    engine = MultiTenantTrafficEngine(
        [make_tenant()],
        config=TrafficConfig(nodes=1, initial_replicas=2),
        fairness=FairnessPolicy.WFQ,
        intra=intra,
        autoscaler_factory=lambda: Autoscaler(
            FixedReplicasPolicy(4), min_replicas=2, max_replicas=4
        ),
    )
    return engine.run()


def main() -> int:
    fifo = run(IntraTenantOrder.FIFO).tenants["app"]
    edf = run(IntraTenantOrder.EDF).tenants["app"]

    print(render_class_table({"fifo": fifo, "edf": edf}, label="order"))
    print()

    fifo_int = next(c for c in fifo.classes if c.name == "interactive")
    edf_int = next(c for c in edf.classes if c.name == "interactive")
    fifo_batch = next(c for c in fifo.classes if c.name == "batch")
    edf_batch = next(c for c in edf.classes if c.name == "batch")
    print(
        "Interactive class (%.0f ms deadline), identical arrivals and class mix:"
        % (DEADLINE_S * 1000)
    )
    print(
        "  FIFO order : deadline met %d/%d (ratio %.3f), p99=%.3fs"
        % (fifo_int.deadline_met, fifo_int.deadline_total,
           fifo_int.deadline_met_ratio, fifo_int.latency.p99_s)
    )
    print(
        "  EDF order  : deadline met %d/%d (ratio %.3f), p99=%.3fs"
        % (edf_int.deadline_met, edf_int.deadline_total,
           edf_int.deadline_met_ratio, edf_int.latency.p99_s)
    )
    print(
        "  Batch pays with tail latency, not deadlines: p99 %.3fs -> %.3fs."
        % (fifo_batch.latency.p99_s, edf_batch.latency.p99_s)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
