"""Edge-cloud ML image pipeline: the paper's motivating scenario.

A four-stage workflow (ingest -> extract-frames -> preprocess -> infer) where
the first two stages run on the edge node and the last two in the cloud.
Frames are real byte payloads; the pipeline is executed once with Roadrunner
(user-space transfers on each node, the virtual data hose across the link)
and once with the WasmEdge HTTP baseline, then the per-edge breakdown is
printed.

Run with::

    python examples/image_pipeline.py
"""

from __future__ import annotations

from repro import (
    Cluster,
    FunctionSpec,
    Invoker,
    Orchestrator,
    RoadrunnerChannel,
    RuntimeKind,
    SequenceWorkflow,
    WasmEdgeHttpChannel,
)
from repro.workloads.scenarios import image_frame

STAGES = ["ingest", "extract-frames", "preprocess", "infer"]
PLACEMENT = {
    "ingest": "edge",
    "extract-frames": "edge",
    "preprocess": "cloud",
    "infer": "cloud",
}


def build_deployment(runtime: RuntimeKind, share_vms: bool):
    cluster = Cluster.edge_cloud_pair()
    orchestrator = Orchestrator(cluster)
    specs = [
        FunctionSpec(stage, runtime=runtime, workflow="vision-pipeline") for stage in STAGES
    ]
    orchestrator.deploy_all(
        specs,
        placement=PLACEMENT,
        share_vm_key="vision-pipeline" if share_vms else None,
        materialize=True,
    )
    return cluster, orchestrator


def run_pipeline(channel_factory, runtime: RuntimeKind, share_vms: bool, frame):
    cluster, orchestrator = build_deployment(runtime, share_vms)
    channel = channel_factory(cluster)
    invoker = Invoker(orchestrator, channel)
    workflow = SequenceWorkflow(STAGES, name="vision-pipeline")
    return invoker.invoke(workflow, frame)


def describe(result, label: str) -> None:
    print("\n%s" % label)
    print("  total latency      : %.6f s" % result.total_latency_s)
    print("  serialization      : %.6f s" % result.aggregate.serialization_s)
    print("  Wasm VM I/O        : %.6f s" % result.aggregate.wasm_io_s)
    print("  copied bytes       : %d" % result.aggregate.copied_bytes)
    for edge, outcome in result.outcomes.items():
        print(
            "    %-28s %.6f s  (mode=%s)"
            % (edge, outcome.metrics.total_latency_s, outcome.metrics.mode)
        )


def main() -> None:
    frame = image_frame(width=640, height=360)
    print("Frame payload: %d bytes (%s)" % (frame.size, frame.content_type))

    roadrunner = run_pipeline(RoadrunnerChannel, RuntimeKind.ROADRUNNER, share_vms=True, frame=frame)
    baseline = run_pipeline(WasmEdgeHttpChannel, RuntimeKind.WASMEDGE, share_vms=False, frame=frame)

    # The frame must survive all stages byte for byte in both systems.
    for result in (roadrunner, baseline):
        final_edge = "%s->%s" % (STAGES[-2], STAGES[-1])
        frame.require_match(result.outcomes[final_edge].delivered)

    describe(roadrunner, "Roadrunner (user space on each node, data hose across the link)")
    describe(baseline, "WasmEdge HTTP baseline (WASI-mediated serialization)")
    print(
        "\nEnd-to-end speedup: %.1fx"
        % (baseline.total_latency_s / roadrunner.total_latency_s)
    )


if __name__ == "__main__":
    main()
