"""Benchmark: trace-driven replay of realistic invocation patterns.

Not a paper figure — it complements the fixed-size sweeps with bursty and
mixed-size traffic, confirming that Roadrunner's advantage holds under a
production-like workload mix rather than only at isolated payload sizes.
"""

from repro.workloads.traces import bursty_trace, compare_modes_on_trace, mixed_size_trace

INTRA_MODES = ("roadrunner-user", "roadrunner-kernel", "runc-http", "wasmedge-http")


def test_trace_replay_mixed_sizes(benchmark):
    trace = mixed_size_trace(count=120, seed=7)

    def run():
        return compare_modes_on_trace(trace, INTRA_MODES)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    roadrunner = results["roadrunner-user"]
    wasmedge = results["wasmedge-http"]
    runc = results["runc-http"]
    assert roadrunner.mean_latency_s < runc.mean_latency_s < wasmedge.mean_latency_s
    assert roadrunner.p95_latency_s < wasmedge.p95_latency_s
    assert roadrunner.total_cpu_s < 0.2 * wasmedge.total_cpu_s


def test_trace_replay_bursty(benchmark):
    trace = bursty_trace(bursts=4, burst_size=25, payload_mb=10)

    def run():
        return compare_modes_on_trace(trace, ("roadrunner-user", "wasmedge-http"))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert (
        results["roadrunner-user"].busy_fraction
        < results["wasmedge-http"].busy_fraction
    )
