"""Throughput gate: a million simulated requests in CI-sized wall-clock.

The ROADMAP's "Raw speed" item asks the traffic engine to sustain 10⁶+
simulated requests per run; this benchmark is the tracked proof.  It drives
the sketch-mode engine (``retain_records=False``) through a seeded Poisson
stream of ~10⁶ requests against a pinned 16-replica fleet, measures
simulated-requests-per-wall-clock-second, and writes ``BENCH_throughput.json``
at the repo root so the perf trajectory is versioned alongside the equality
gates.

Gates (all overridable via environment for unusually slow runners):

* the run completes every offered request;
* wall-clock stays within ``REPRO_THROUGHPUT_BUDGET_S`` (default 240 s —
  ~9x headroom over the reference machine, which finishes in under 30 s);
* throughput clears ``REPRO_THROUGHPUT_FLOOR_REQ_S`` (default 5000 req/s —
  half the *pre-optimisation* engine's rate on the reference machine, so
  only a genuine hot-path regression trips it, not a slow CI box).

The recorded ``speedup_vs_baseline`` compares against the pre-rework engine
measured on the same scenario and machine (10 227 req/s); the optimised
engine clocks ~3.3-3.7x that, clearing the ≥3x target this PR tracks.
"""

import json
import os
import time
from pathlib import Path

from repro.sim.costs import DEFAULT_COST_MODEL
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.autoscaler import Autoscaler, FixedReplicasPolicy
from repro.traffic.engine import TrafficConfig, TrafficEngine, _measure_service_time

#: Pre-rework engine on this scenario (reference machine) — the denominator
#: for the tracked speedup.  Re-measure only when the scenario changes.
BASELINE_REQ_PER_S = 10_227.0

RATE_RPS = 2000.0
DURATION_S = 500.0  # ~10⁶ Poisson arrivals at 2000 rps
PAYLOAD_MB = 0.25
SEED = 7


def _build_engine() -> TrafficEngine:
    return TrafficEngine(
        "roadrunner-user",
        autoscaler=Autoscaler(
            FixedReplicasPolicy(16), min_replicas=16, max_replicas=16
        ),
        config=TrafficConfig(
            nodes=4,
            per_replica_concurrency=4,
            initial_replicas=16,
            retain_records=False,
            queue_timeout_s=5.0,
        ),
    )


def test_million_request_throughput():
    budget_s = float(os.environ.get("REPRO_THROUGHPUT_BUDGET_S", "240"))
    floor_req_s = float(os.environ.get("REPRO_THROUGHPUT_FLOOR_REQ_S", "5000"))

    requests = PoissonArrivals(
        rate_rps=RATE_RPS,
        duration_s=DURATION_S,
        payload_mb=PAYLOAD_MB,
        seed=SEED,
    ).generate()
    assert len(requests) >= 990_000, "scenario no longer reaches ~10⁶ requests"

    engine = _build_engine()
    # Pre-measure the (mode, payload) service time so the timed region covers
    # pure dispatch work, not the one-off calibration transfer.
    payload_bytes = requests[0].payload_bytes
    engine._service_cache[("roadrunner-user", payload_bytes)] = (
        _measure_service_time("roadrunner-user", payload_bytes, DEFAULT_COST_MODEL)
    )

    start = time.perf_counter()
    summary = engine.run(requests, pattern="poisson")
    wall_s = time.perf_counter() - start

    assert summary.offered == len(requests)
    assert summary.completed + summary.timed_out + summary.shed == summary.offered

    req_per_s = len(requests) / wall_s
    result = {
        "requests": len(requests),
        "wall_s": round(wall_s, 3),
        "req_per_s": round(req_per_s, 1),
        "baseline_req_per_s": BASELINE_REQ_PER_S,
        "speedup_vs_baseline": round(req_per_s / BASELINE_REQ_PER_S, 2),
        "floor_req_per_s": floor_req_s,
        "budget_s": budget_s,
        "scenario": {
            "rate_rps": RATE_RPS,
            "duration_s": DURATION_S,
            "payload_mb": PAYLOAD_MB,
            "seed": SEED,
            "mode": "roadrunner-user",
            "nodes": 4,
            "replicas": 16,
            "per_replica_concurrency": 4,
        },
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")

    assert wall_s <= budget_s, (
        "10⁶-request run took %.1fs, over the %.0fs CI budget" % (wall_s, budget_s)
    )
    assert req_per_s >= floor_req_s, (
        "throughput %.0f req/s under the %.0f req/s floor" % (req_per_s, floor_req_s)
    )
