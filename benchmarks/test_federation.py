"""Benchmark: regional failure and spillover in the federated traffic engine.

Not a paper figure — the geo-distributed regime the ROADMAP's federation
item targets: several WAN-linked regional clusters behind one global
router, with one region failing mid-run.  The assertions pin the
availability property the federation must keep: under byte-identical
seeded arrivals, killing a region mid-run costs at most 10% of the
no-failure run's goodput, because the router spills the dead region's
load into the survivors (paying WAN transfer, not losing requests).
"""

import pytest

from repro.traffic import (
    ClusterSpec,
    FederatedTrafficEngine,
    PoissonArrivals,
    TenantSpec,
    TrafficConfig,
)

DURATION_S = 20.0
PAYLOAD_MB = 2.0
WAN_RTT_S = 0.080
WAN_BANDWIDTH_BPS = 250e6 / 8.0

REGIONS = ("eu-west", "us-east", "ap-south")


def _tenants():
    return [
        TenantSpec(
            name="app-%s" % region,
            mode="roadrunner-user",
            arrivals=PoissonArrivals(
                rate_rps=40.0, duration_s=DURATION_S,
                function="app-%s" % region, payload_mb=PAYLOAD_MB,
                seed=21 + index,
            ),
        )
        for index, region in enumerate(REGIONS)
    ]


def _run(fail_at=None):
    engine = FederatedTrafficEngine(
        _tenants(),
        [
            ClusterSpec(region=region, nodes=4, tenants=("app-%s" % region,))
            for region in REGIONS
        ],
        config=TrafficConfig(nodes=4, initial_replicas=1),
        router="locality",
        wan_rtt_s=WAN_RTT_S,
        wan_bandwidth_Bps=WAN_BANDWIDTH_BPS,
        fail_at=fail_at,
    )
    return engine.run()


def test_spillover_keeps_goodput_within_10pct_of_no_failure(benchmark):
    def run():
        return _run(), _run(fail_at={"us-east": DURATION_S / 4.0})

    healthy, degraded = benchmark.pedantic(run, rounds=1, iterations=1)

    # Identical seeded arrivals: both runs offered exactly the same load.
    assert degraded.cluster.offered == healthy.cluster.offered
    assert degraded.failed_regions == ("us-east",)

    # The dead region's post-failure arrivals spilled over the WAN instead
    # of being lost.
    assert degraded.router.spillovers > 0
    assert degraded.router.wan_bytes > healthy.router.wan_bytes
    survivors_served = sum(
        degraded.region(region).tenants["app-us-east"].completed
        for region in REGIONS
        if region != "us-east"
    )
    assert survivors_served > 0

    # The availability headline: losing one of three regions costs at most
    # 10% of goodput.
    assert degraded.cluster.goodput_rps >= 0.90 * healthy.cluster.goodput_rps, (
        "goodput degraded %.1f -> %.1f rps"
        % (healthy.cluster.goodput_rps, degraded.cluster.goodput_rps)
    )


def test_locality_federation_conserves_every_request(benchmark):
    summary = benchmark.pedantic(_run, rounds=1, iterations=1)
    accounted = (
        summary.cluster.completed
        + summary.cluster.timed_out
        + summary.cluster.dropped
        + summary.cluster.shed
    )
    assert accounted == summary.cluster.offered
    assert summary.cluster.completed == summary.cluster.offered
    # Per-region placements sum to the global offered load.
    assert sum(summary.router.placements.values()) == summary.cluster.offered
