"""Benchmark: sustained load across runtimes under identical arrival streams.

Not a paper figure — a new scenario axis (load level x arrival pattern x
runtime) the paper never swept.  The same seeded arrival stream is driven
against Roadrunner and the container/Wasm HTTP baselines with an identical
target-concurrency autoscaler; the comparison is therefore pure runtime
cost: data-plane latency per invocation, cold starts paid to grow the pool,
and the queueing those costs induce.
"""

from repro.traffic import (
    Autoscaler,
    BurstyArrivals,
    PoissonArrivals,
    TargetConcurrencyPolicy,
    TrafficConfig,
    run_comparison,
)


def _autoscaler() -> Autoscaler:
    return Autoscaler(
        TargetConcurrencyPolicy(1.0),
        min_replicas=1,
        max_replicas=64,
        keep_alive_s=10.0,
        control_interval_s=1.0,
    )


def test_traffic_roadrunner_sustains_runc_throughput(benchmark):
    requests = PoissonArrivals(rate_rps=50.0, duration_s=30.0, payload_mb=1.0, seed=3).generate()

    def run():
        return run_comparison(
            requests,
            modes=("roadrunner-user", "runc-http"),
            autoscaler_factory=_autoscaler,
            config=TrafficConfig(nodes=4),
            pattern="poisson",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    roadrunner = results["roadrunner-user"]
    runc = results["runc-http"]
    # Both saw the same offered load; Roadrunner must sustain at least the
    # baseline's goodput while spending less on the pool.
    assert roadrunner.offered == runc.offered == len(requests)
    assert roadrunner.goodput_rps >= runc.goodput_rps
    assert roadrunner.latency.p95_s < runc.latency.p95_s
    assert roadrunner.latency.p99_s < runc.latency.p99_s
    assert roadrunner.mean_replicas < runc.mean_replicas
    assert roadrunner.cold_start_seconds < runc.cold_start_seconds


def test_traffic_bursty_punishes_cold_starts(benchmark):
    requests = BurstyArrivals(
        on_rate_rps=60.0, duration_s=60.0, on_s=5.0, off_s=15.0, payload_mb=1.0, seed=9
    ).generate()

    def run():
        return run_comparison(
            requests,
            modes=("roadrunner-user", "runc-http", "wasmedge-http"),
            autoscaler_factory=_autoscaler,
            config=TrafficConfig(nodes=4),
            pattern="bursty",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    roadrunner = results["roadrunner-user"]
    # Every burst after a quiet period re-grows the baseline pools from the
    # keep-alive floor; Roadrunner's small pool barely churns.
    for baseline in ("runc-http", "wasmedge-http"):
        assert roadrunner.cold_starts < results[baseline].cold_starts
        assert roadrunner.cold_start_seconds < results[baseline].cold_start_seconds
        assert roadrunner.queueing.p95_s <= results[baseline].queueing.p95_s
    assert all(summary.dropped == 0 for summary in results.values())


def test_traffic_seeded_run_is_deterministic(benchmark):
    requests = PoissonArrivals(rate_rps=40.0, duration_s=20.0, payload_mb=1.0, seed=5).generate()

    def run():
        return [
            run_comparison(
                requests,
                modes=("roadrunner-user",),
                autoscaler_factory=_autoscaler,
                pattern="poisson",
            )["roadrunner-user"]
            for _ in range(2)
        ]

    first, second = benchmark.pedantic(run, rounds=1, iterations=1)
    assert first == second
