"""Benchmark: telemetry is a pure observer, cheap when on, free when off.

Three gates protect the observability layer's core promises:

1. **Off means off** — an uninstrumented run (``telemetry=None``, the
   default) produces byte-identical reports and figure exports to a fully
   instrumented run of the same seeded stream: attaching every sink
   (registry, trace log, event stream, progress) cannot perturb a single
   simulated event.
2. **On is bounded** — the fully instrumented run finishes within ``3x``
   the uninstrumented wall-clock (measured ~1.9x; the slack absorbs CI
   noise).  Per-request work is a few counter bumps, one trace record and
   one JSON line.
3. **Sketch mode is honest** — ``retain_records=False`` keeps no
   per-request records at all, yet its p50/p95/p99 stay within 1% of the
   exact order statistics on a 100k-request run whose latency distribution
   is deliberately nasty (a cold-start transient spike plus a no-wait atom
   plus a queueing tail).
"""

import io
import json
import time

from repro.metrics.export import figure_to_csv, traffic_to_figure
from repro.obs import JsonlEventWriter, ProgressReporter, Telemetry, TraceLog
from repro.traffic import (
    Autoscaler,
    PoissonArrivals,
    TargetConcurrencyPolicy,
    TrafficConfig,
    TrafficEngine,
)
from repro.traffic.report import render_traffic_report

#: The stated instrumentation-overhead bound (wall-clock on / wall-clock off).
OVERHEAD_BOUND = 3.0

#: The stated sketch-accuracy bound (relative error vs exact percentiles).
ACCURACY_BOUND = 0.01


def _autoscaler(max_replicas=16):
    return Autoscaler(
        TargetConcurrencyPolicy(1.0),
        min_replicas=1,
        max_replicas=max_replicas,
        keep_alive_s=10.0,
        control_interval_s=1.0,
    )


def _full_telemetry():
    return Telemetry(
        trace_log=TraceLog(),
        events=JsonlEventWriter(io.StringIO()),
        progress=ProgressReporter(interval_s=5.0, stream=io.StringIO()),
    )


def _run(requests, telemetry=None, config=None):
    engine = TrafficEngine(
        "roadrunner-user",
        autoscaler=_autoscaler(),
        config=config or TrafficConfig(),
        telemetry=telemetry,
    )
    summary = engine.run(requests, pattern="poisson")
    return engine, summary


def test_telemetry_off_output_is_byte_identical(benchmark):
    requests = PoissonArrivals(rate_rps=80.0, duration_s=20.0, payload_mb=1.0, seed=31).generate()

    def run_both():
        _, bare = _run(requests)
        _, instrumented = _run(requests, telemetry=_full_telemetry())
        return bare, instrumented

    bare, instrumented = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # Summaries compare equal field-by-field (dataclass equality), and the
    # rendered report and figure export — the seed outputs — are the same
    # bytes, so instrumentation provably observed without perturbing.
    assert instrumented == bare
    assert render_traffic_report({"roadrunner-user": instrumented}) == render_traffic_report(
        {"roadrunner-user": bare}
    )
    assert figure_to_csv(traffic_to_figure({"roadrunner-user": instrumented})) == figure_to_csv(
        traffic_to_figure({"roadrunner-user": bare})
    )


def test_instrumentation_overhead_under_bound(benchmark):
    requests = PoissonArrivals(rate_rps=100.0, duration_s=20.0, payload_mb=1.0, seed=5).generate()

    def timed(telemetry_factory):
        # Best-of-three absorbs scheduler jitter on shared CI runners.
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            _run(requests, telemetry=telemetry_factory())
            best = min(best, time.perf_counter() - started)
        return best

    def measure():
        return timed(lambda: None), timed(_full_telemetry)

    off_s, on_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    factor = on_s / off_s
    assert factor < OVERHEAD_BOUND, (
        "full telemetry stack cost %.2fx the uninstrumented run (bound %.1fx)"
        % (factor, OVERHEAD_BOUND)
    )


def test_sketch_mode_percentiles_within_one_percent_at_100k(benchmark):
    # ~100k requests through an autoscaling pool: the latency distribution
    # mixes a cold-start transient, a large no-queueing atom, and a smooth
    # queueing tail — the shape that breaks naive streaming estimators.
    requests = PoissonArrivals(rate_rps=2000.0, duration_s=50.0, payload_mb=1.0, seed=17).generate()
    assert len(requests) >= 100_000

    def run_both():
        exact_engine, exact = _run(
            requests, config=TrafficConfig(nodes=8)
        )
        sketch_engine, sketch = _run(
            requests, config=TrafficConfig(nodes=8, retain_records=False)
        )
        return exact_engine, exact, sketch_engine, sketch

    exact_engine, exact, sketch_engine, sketch = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert sketch_engine.records == []  # the whole point: nothing retained
    assert len(exact_engine.records) == len(requests)
    assert sketch.completed == exact.completed
    for distribution in ("latency", "queueing", "service"):
        exact_summary = getattr(exact, distribution)
        sketch_summary = getattr(sketch, distribution)
        for stat in ("p50_s", "p95_s", "p99_s"):
            exact_value = getattr(exact_summary, stat)
            sketch_value = getattr(sketch_summary, stat)
            error = abs(sketch_value - exact_value) / max(exact_value, 1e-12)
            assert error <= ACCURACY_BOUND, (
                "%s %s: sketch %.6f vs exact %.6f (rel %.4f > %.2f)"
                % (distribution, stat, sketch_value, exact_value, error, ACCURACY_BOUND)
            )
        assert sketch_summary.count == exact_summary.count
        assert sketch_summary.max_s == exact_summary.max_s


def test_event_stream_is_deterministic_across_runs(benchmark):
    requests = PoissonArrivals(rate_rps=60.0, duration_s=10.0, payload_mb=1.0, seed=2).generate()

    def stream_once():
        buffer = io.StringIO()
        _run(requests, telemetry=Telemetry(events=JsonlEventWriter(buffer)))
        return buffer.getvalue()

    first = benchmark.pedantic(stream_once, rounds=1, iterations=1)
    second = stream_once()
    assert first == second
    assert json.loads(first.splitlines()[0])["event"] == "run_start"
