"""Benchmark-suite fixtures.

Each benchmark regenerates one of the paper's figures (or an ablation) and
writes the rendered table to ``results/`` so the regenerated rows can be
inspected after a run; EXPERIMENTS.md is written against those outputs.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Persist a FigureResult's tables under results/<name>.txt."""

    def _save(name: str, result) -> None:
        path = os.path.join(results_dir, "%s.txt" % name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(result.to_text() + "\n")

    return _save
