"""Benchmark: regenerate Fig. 7 (intra-node payload-size sweep, 8 panels).

Chained functions a -> b on one node, 1-500 MB payloads, comparing
RoadRunner (User space), RoadRunner (Kernel space), RunC and Wasmedge.
"""

from repro.experiments.fig7 import run_fig7
from repro.experiments.panels import (
    PANEL_RAM,
    PANEL_SERIALIZATION_LATENCY,
    PANEL_TOTAL_CPU,
    PANEL_TOTAL_LATENCY,
    PANEL_TOTAL_THROUGHPUT,
)

RR_USER = "RoadRunner (User space)"
RR_KERNEL = "RoadRunner (Kernel space)"
RUNC = "RunC"
WASMEDGE = "Wasmedge"


def test_fig7_intranode_sweep(benchmark, save_result):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    save_result("fig7", result)

    latency = result.panel(PANEL_TOTAL_LATENCY)
    for i, _size in enumerate(result.x_values):
        # Latency ordering at every payload size (Fig. 7a).
        assert latency[RR_USER][i] < latency[RR_KERNEL][i] < latency[WASMEDGE][i]
        assert latency[RR_USER][i] < latency[RUNC][i]
        # Headline bands: 44-89 %+ vs Wasmedge, 10 %+ vs RunC (Sec. 6.3).
        assert 1 - latency[RR_USER][i] / latency[WASMEDGE][i] >= 0.44
        assert 1 - latency[RR_USER][i] / latency[RUNC][i] >= 0.10
        assert 1 - latency[RR_KERNEL][i] / latency[WASMEDGE][i] >= 0.70

    throughput = result.panel(PANEL_TOTAL_THROUGHPUT)
    serialization = result.panel(PANEL_SERIALIZATION_LATENCY)
    cpu = result.panel(PANEL_TOTAL_CPU)
    ram = result.panel(PANEL_RAM)
    largest = len(result.x_values) - 1
    # Throughput mirrors latency (Fig. 7b); serialization is negligible for
    # Roadrunner and dominant for Wasmedge (Fig. 7c); CPU and RAM drop
    # markedly vs Wasmedge (Figs. 7e-h).
    assert throughput[RR_USER][largest] > throughput[WASMEDGE][largest]
    assert serialization[RR_USER][largest] < 0.05 * serialization[WASMEDGE][largest]
    assert cpu[RR_USER][largest] < 0.2 * cpu[WASMEDGE][largest]
    assert ram[RR_USER][largest] < ram[WASMEDGE][largest]
