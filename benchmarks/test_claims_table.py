"""Benchmark: evaluate every headline claim and persist the comparison table.

This is the machine-checkable companion to EXPERIMENTS.md: it measures the
experiments behind each headline claim of the paper (at the 100 MB / fan-out
50 operating points), writes the paper-vs-measured table to
``results/claims.txt`` and fails if any claim's direction or conservative
bound stops holding.
"""

import os

from repro.experiments.claims import evaluate_claims, render_claims


def test_headline_claims_table(benchmark, results_dir):
    checks = benchmark.pedantic(
        evaluate_claims,
        kwargs={"payload_mb": 100, "fanout_degree": 50},
        rounds=1,
        iterations=1,
    )
    table = render_claims(checks)
    with open(os.path.join(results_dir, "claims.txt"), "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    unsatisfied = [check.claim_id for check in checks if not check.satisfied]
    assert unsatisfied == [], "claims no longer satisfied: %s" % ", ".join(unsatisfied)
