"""Benchmark: sharded cluster ledgers and parallel multi-node simulation.

Not a paper figure — the scale-out regression gate for the ledger-sharding
refactor.  The assertions pin the two properties the refactor must keep:

* **Determinism across execution strategies.**  A 4-node multi-tenant run
  with ``parallel_nodes`` (worker-process service measurements + concurrent
  per-node completion phases over the per-node ledger shards) produces
  per-tenant, per-class and per-node summaries — and the exported figure
  bytes — identical to the serial shared-timeline run under the same seeds.
  The same holds for a mode comparison where each mode's whole cluster
  simulation runs in its own worker process.

* **No wall-clock regression.**  Parallel execution must not cost more
  than a small constant overhead versus serial; on multi-core hosts the
  process-parallel comparison runs concurrently and comes in at or below
  the serial time (the assertion keeps a noise band so single-core CI,
  where the pool deliberately degrades to the serial path, stays green).
"""

import os
import time

import pytest

from repro.metrics.export import figure_to_csv, multi_tenant_to_figure, node_usage_to_figure
from repro.traffic.arrivals import BurstyArrivals, PoissonArrivals
from repro.traffic.engine import MultiTenantTrafficEngine, TrafficConfig, run_comparison
from repro.traffic.tenants import TenantSpec

DURATION_S = 20.0
NODES = 4

#: Parallel may not exceed serial by more than this factor.  On a
#: single-core host both paths execute the same serial code, so this is a
#: pure noise band; on multi-core hosts parallel should land at or below 1.
NO_REGRESSION_FACTOR = 1.25

#: Fixed parallel machinery cost (thread-phase handoffs, worker-pool IPC
#: for the service-time prefill) tolerated on top of the ratio band.  The
#: dispatch rework shrank this scenario's serial wall-clock severalfold,
#: so the ~25 ms constant overhead no longer fits inside 25% of serial;
#: a genuine O(events) regression still trips the combined bound.
PARALLEL_OVERHEAD_GRACE_S = 0.1


def _tenants():
    return [
        TenantSpec(
            name="steady",
            mode="roadrunner-user",
            weight=2,
            arrivals=PoissonArrivals(
                rate_rps=60.0, duration_s=DURATION_S, function="steady",
                payload_mb=1.0, seed=7,
            ),
        ),
        TenantSpec(
            name="noisy",
            mode="runc-http",
            weight=1,
            arrivals=BurstyArrivals(
                on_rate_rps=150.0, duration_s=DURATION_S, on_s=4.0, off_s=6.0,
                function="noisy", payload_mb=2.0, seed=8,
            ),
        ),
    ]


def _timed_multi_tenant_run(parallel: bool):
    engine = MultiTenantTrafficEngine(
        _tenants(),
        config=TrafficConfig(nodes=NODES, parallel_nodes=parallel),
    )
    start = time.perf_counter()
    summary = engine.run()
    return summary, time.perf_counter() - start


def test_parallel_four_node_run_matches_serial_bit_for_bit():
    serial, serial_wall = _timed_multi_tenant_run(parallel=False)
    parallel, parallel_wall = _timed_multi_tenant_run(parallel=True)

    # Summaries are value-identical, and the exported artefacts byte-equal.
    assert parallel == serial
    assert figure_to_csv(multi_tenant_to_figure(parallel)) == figure_to_csv(
        multi_tenant_to_figure(serial)
    )
    assert figure_to_csv(node_usage_to_figure(parallel)) == figure_to_csv(
        node_usage_to_figure(serial)
    )
    # Every node shard shows up in the rollup (plus the cluster shard).
    assert len(parallel.nodes) == NODES + 1

    assert (
        parallel_wall <= serial_wall * NO_REGRESSION_FACTOR + PARALLEL_OVERHEAD_GRACE_S
    ), (
        "parallel 4-node run regressed wall-clock: %.3fs vs serial %.3fs"
        % (parallel_wall, serial_wall)
    )


def test_process_parallel_mode_comparison_matches_serial():
    requests = PoissonArrivals(
        rate_rps=120.0, duration_s=DURATION_S, payload_mb=1.0, seed=11
    ).generate()
    modes = ("roadrunner-user", "runc-http")

    start = time.perf_counter()
    serial = run_comparison(requests, modes=modes)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_comparison(requests, modes=modes, parallel=True)
    parallel_wall = time.perf_counter() - start

    assert parallel == serial
    limit = NO_REGRESSION_FACTOR if (os.cpu_count() or 1) < 2 else 1.0
    assert parallel_wall <= serial_wall * limit + 0.5, (
        "parallel comparison regressed wall-clock: %.3fs vs serial %.3fs"
        % (parallel_wall, serial_wall)
    )
