"""Benchmark: regenerate Fig. 10 (inter-node fan-out scalability, 8 panels).

Function a on the edge node fans a 10 MB payload out to N replicas of
function b on the cloud node (N = 1..100), comparing RoadRunner (Network),
RunC and Wasmedge.
"""

from repro.experiments.fig10 import run_fig10
from repro.experiments.panels import (
    PANEL_RAM,
    PANEL_SERIALIZATION_LATENCY,
    PANEL_TOTAL_LATENCY,
    PANEL_TOTAL_THROUGHPUT,
    PANEL_USER_CPU,
)

RR_NET = "RoadRunner (Network)"
RUNC = "RunC"
WASMEDGE = "Wasmedge"


def test_fig10_internode_fanout(benchmark, save_result):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    save_result("fig10", result)

    latency = result.panel(PANEL_TOTAL_LATENCY)
    throughput = result.panel(PANEL_TOTAL_THROUGHPUT)
    serialization = result.panel(PANEL_SERIALIZATION_LATENCY)

    for i, _degree in enumerate(result.x_values):
        # Roadrunner stays close to RunC and clearly below Wasmedge (Fig. 10a).
        assert latency[RR_NET][i] < latency[WASMEDGE][i]
        assert serialization[RR_NET][i] < 0.05 * serialization[WASMEDGE][i]

    largest = len(result.x_values) - 1
    # Sec. 6.4: up to ~65 % lower latency and ~2.8x throughput vs Wasmedge.
    assert 1 - latency[RR_NET][largest] / latency[WASMEDGE][largest] >= 0.4
    assert throughput[RR_NET][largest] >= 2.0 * throughput[WASMEDGE][largest]
    # Under high load Roadrunner reports less user CPU than Wasmedge (Fig. 10f).
    user_cpu = result.panel(PANEL_USER_CPU)
    assert user_cpu[RR_NET][largest] < user_cpu[WASMEDGE][largest]
    # RAM grows with fan-out for every runtime (Fig. 10h).
    ram = result.panel(PANEL_RAM)
    for series in ram.values():
        assert series[largest] > series[0]
