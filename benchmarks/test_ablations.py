"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation disables one Roadrunner mechanism and re-runs the inter-node or
intra-node transfer, showing that the mechanism is responsible for a
measurable share of the reported gains:

* zero-copy pipe (vmsplice/splice) vs conventional copies on the network path;
* serialization-free pointer passing vs running a codec anyway;
* sizing the virtual data hose to the message vs default pipe size;
* the constrained 100 Mbps edge link from the paper's text vs the effective
  bandwidth implied by its figures.
"""

from repro.core.config import RoadrunnerConfig
from repro.experiments.environment import build_pair_setup
from repro.sim.costs import CostModel
from repro.workloads.generators import make_payload

PAYLOAD_MB = 100


def _run(mode, internode, config=None, cost_model=CostModel.paper_testbed()):
    setup = build_pair_setup(mode, internode=internode, config=config, cost_model=cost_model)
    payload = make_payload(PAYLOAD_MB)
    outcome = setup.channel.transfer(setup.source, setup.target, payload)
    return outcome.metrics


def test_ablation_zero_copy_network_path(benchmark):
    zero_copy = _run("roadrunner-network", internode=True)
    copying = benchmark.pedantic(
        _run,
        args=("roadrunner-network", True, RoadrunnerConfig.no_zero_copy()),
        rounds=3,
        iterations=1,
    )
    # Disabling vmsplice/splice reintroduces the user/kernel copies.
    assert copying.copied_bytes > zero_copy.copied_bytes
    assert copying.total_latency_s > zero_copy.total_latency_s


def test_ablation_serialization_free_user_space(benchmark):
    serialization_free = _run("roadrunner-user", internode=False)
    with_codec = benchmark.pedantic(
        _run,
        args=("roadrunner-user", False, RoadrunnerConfig.with_serialization()),
        rounds=3,
        iterations=1,
    )
    # Running a codec anyway erases most of the user-space advantage.
    assert with_codec.serialization_s > 20 * serialization_free.serialization_s
    assert with_codec.total_latency_s > 2 * serialization_free.total_latency_s


def test_ablation_hose_sized_to_message(benchmark):
    import pytest

    from repro.kernel.pipes import PipeError

    sized = benchmark.pedantic(
        _run, args=("roadrunner-network", True), rounds=3, iterations=1
    )
    assert sized.total_latency_s > 0
    # Without resizing, the kernel's default pipe cannot hold the message at
    # all: Roadrunner's F_SETPIPE_SZ sizing is a prerequisite for a single
    # splice pass, not a micro-optimisation.
    with pytest.raises(PipeError):
        _run("roadrunner-network", True, RoadrunnerConfig(size_hose_to_message=False))


def test_ablation_constrained_edge_link(benchmark):
    paper_figures = _run("roadrunner-network", internode=True)
    constrained = benchmark.pedantic(
        _run,
        args=("roadrunner-network", True, None, CostModel.constrained_edge()),
        rounds=3,
        iterations=1,
    )
    # On a true 100 Mbps link the wire dominates everything; Roadrunner's
    # relative gain over its own Wasm I/O penalty shrinks but latency grows.
    assert constrained.total_latency_s > 3 * paper_figures.total_latency_s


def test_ablation_wasm_io_penalty(benchmark):
    """The price Roadrunner pays to reach into the Wasm VM (Sec. 6.3)."""

    def measure():
        return _run("roadrunner-network", internode=True)

    metrics = benchmark.pedantic(measure, rounds=3, iterations=1)
    share = metrics.wasm_io_s / metrics.total_latency_s
    # The Wasm I/O share is visible but not dominant.
    assert 0.005 <= share <= 0.4
