"""Micro-benchmarks of the substrate primitives (real Python wall-clock).

Unlike the figure benchmarks (which measure *simulated* time), these time the
actual Python implementation of the hot primitives — linear-memory copies,
pipe operations, Unix-socket IPC and the codecs — so regressions in the
reproduction's own code are caught by pytest-benchmark.
"""

from repro.kernel.kernel import Kernel
from repro.kernel.pipes import Pipe
from repro.kernel.sockets import UnixSocketPair
from repro.payload import Payload
from repro.serialization.codec import BinaryFrameCodec, StringCodec
from repro.sim.ledger import CostLedger
from repro.wasm.linear_memory import LinearMemory

PAYLOAD = Payload.random(256 * 1024, seed=99)


def test_linear_memory_store_and_read(benchmark):
    memory = LinearMemory(initial_pages=8, max_pages=1024)

    def run():
        address = memory.store_payload(PAYLOAD)
        data = memory.read_payload(address, PAYLOAD.size)
        memory.deallocate(address)
        return data

    result = benchmark(run)
    PAYLOAD.require_match(result)


def test_pipe_vmsplice_and_drain(benchmark):
    kernel = Kernel(ledger=CostLedger())
    process = kernel.create_process("shim")
    pipe = Pipe(kernel, capacity=PAYLOAD.size)

    def run():
        pipe.vmsplice_in(process, PAYLOAD)
        return pipe.pop_buffer(process).payload

    result = benchmark(run)
    PAYLOAD.require_match(result)


def test_unix_socket_round_trip(benchmark):
    kernel = Kernel(ledger=CostLedger())
    sender = kernel.create_process("a")
    receiver = kernel.create_process("b")
    socket = UnixSocketPair(kernel)
    socket.connect(sender, receiver)

    def run():
        socket.send(sender, PAYLOAD)
        return socket.recv(receiver)

    result = benchmark(run)
    PAYLOAD.require_match(result)


def test_string_codec_round_trip(benchmark):
    codec = StringCodec()

    def run():
        return codec.decode(codec.encode(PAYLOAD))

    result = benchmark(run)
    PAYLOAD.require_match(result)


def test_binary_codec_round_trip(benchmark):
    codec = BinaryFrameCodec()

    def run():
        return codec.decode(codec.encode(PAYLOAD))

    result = benchmark(run)
    PAYLOAD.require_match(result)
