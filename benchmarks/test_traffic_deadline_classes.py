"""Benchmark: deadline-aware scheduling classes and the policy comparison.

Not a paper figure — the scheduler-study regime the ROADMAP's traffic
ideas point at: one tenant's traffic split into an interactive class with
a 200 ms soft deadline and a deadline-less batch class, served from a
fixed pool that bursts briefly outrun.  The assertions pin the scheduling
claims the gateway must keep: under byte-identical seeded arrivals with
identical class stamps, earliest-deadline-first intra-tenant dispatch
yields a *strictly* higher deadline-met ratio than FIFO, per-class
accounting conserves every request, and the scaling-policy comparison
figure round-trips through CSV and JSON with all per-class counters
intact.
"""

import pytest

from repro.metrics.export import (
    figure_from_csv,
    figure_from_json,
    figure_to_csv,
    figure_to_json,
    policies_to_figure,
    traffic_from_figure,
)
from repro.traffic import (
    Autoscaler,
    BurstyArrivals,
    FairnessPolicy,
    FixedReplicasPolicy,
    IntraTenantOrder,
    MultiTenantTrafficEngine,
    RequestClass,
    TenantSpec,
    TrafficConfig,
    autoscaler_factory,
    compare_scaling_policies,
    policy_cluster_summaries,
)

DURATION_S = 20.0
PAYLOAD_MB = 50.0
DEADLINE_S = 0.2

CLASSES = (
    RequestClass("interactive", share=0.5, priority=0, deadline_s=DEADLINE_S),
    RequestClass("batch", share=0.5, priority=1),
    # Declared but (statistically) never drawn: the zero-request class must
    # still round-trip through every export.
    RequestClass("audit", share=1e-12, priority=2, deadline_s=5.0),
)


def _tenant() -> TenantSpec:
    return TenantSpec(
        name="app",
        mode="roadrunner-user",
        weight=1,
        arrivals=BurstyArrivals(
            on_rate_rps=120.0, duration_s=DURATION_S, on_s=4.0, off_s=6.0,
            function="app", payload_mb=PAYLOAD_MB, seed=11,
        ),
        classes=CLASSES,
    )


def _run(intra: IntraTenantOrder):
    engine = MultiTenantTrafficEngine(
        [_tenant()],
        config=TrafficConfig(nodes=1, initial_replicas=2),
        fairness=FairnessPolicy.WFQ,
        intra=intra,
        autoscaler_factory=lambda: Autoscaler(
            FixedReplicasPolicy(4), min_replicas=2, max_replicas=4
        ),
    )
    return engine.run()


def test_edf_beats_fifo_on_deadline_met_ratio(benchmark):
    def run():
        return _run(IntraTenantOrder.EDF), _run(IntraTenantOrder.FIFO)

    edf, fifo = benchmark.pedantic(run, rounds=1, iterations=1)
    edf_app, fifo_app = edf.tenants["app"], fifo.tenants["app"]
    # Identical seeded arrivals and identical class stamps.
    assert edf_app.offered == fifo_app.offered > 0
    by_name_edf = {cls.name: cls for cls in edf_app.classes}
    by_name_fifo = {cls.name: cls for cls in fifo_app.classes}
    assert set(by_name_edf) == set(by_name_fifo) == {"interactive", "batch", "audit"}
    for name in ("interactive", "batch", "audit"):
        assert by_name_edf[name].offered == by_name_fifo[name].offered
    # The tentpole claim: EDF strictly beats FIFO on deadline attainment,
    # and misses nothing at all in this regime (the batch backlog it
    # displaces has no deadline to miss).
    assert fifo_app.deadline_met_ratio < 1.0
    assert edf_app.deadline_met_ratio > fifo_app.deadline_met_ratio
    assert by_name_edf["interactive"].deadline_met_ratio == 1.0
    # EDF must not *lose* requests to buy the ratio: per-class conservation.
    for summary in (edf_app, fifo_app):
        assert sum(cls.offered for cls in summary.classes) == summary.offered
        assert sum(cls.completed for cls in summary.classes) == summary.completed
    # The zero-request class stays a zero row in both runs.
    assert by_name_edf["audit"].offered == 0
    assert by_name_edf["audit"].deadline_total == 0


def test_policy_comparison_figure_round_trips(benchmark):
    def run():
        return compare_scaling_policies(
            [_tenant()],
            {
                name: autoscaler_factory(
                    name, min_replicas=2, max_replicas=4, fixed_replicas=4
                )
                for name in ("fixed", "step", "predictive")
            },
            config=TrafficConfig(nodes=1, initial_replicas=2),
            fairness=FairnessPolicy.WFQ,
            intra=IntraTenantOrder.EDF,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    clusters = policy_cluster_summaries(results)
    assert set(clusters) == {"fixed", "step", "predictive"}
    # Same seeded arrivals under every policy.
    offered = {summary.offered for summary in clusters.values()}
    assert len(offered) == 1 and offered.pop() > 0
    figure = policies_to_figure(clusters)
    assert figure.x_label == "policy"
    for restored in (
        figure_from_csv(figure_to_csv(figure)),
        figure_from_json(figure_to_json(figure)),
    ):
        back = traffic_from_figure(restored)
        for policy, original in clusters.items():
            # Every per-class counter — the zero-request class included —
            # survives both serialisations.
            assert back[policy].classes == original.classes, policy
            assert back[policy].deadline_met == original.deadline_met
            assert back[policy].cold_starts == original.cold_starts
            assert back[policy].replica_seconds == pytest.approx(original.replica_seconds)
            assert back[policy].latency.p99_s == pytest.approx(original.latency.p99_s)
