"""Benchmark: the gateway middleware pipeline earns its place on the ingress.

Two gates protect the pipeline's headline promises:

1. **Coalescing collapses a thundering herd** — ``N`` identical concurrent
   requests cost exactly **one** backend invocation; the other ``N - 1``
   fan out from the leader's response at its completion instant, and every
   one of the ``N`` counts as served.
2. **Caching absorbs repeated work** — a repeated-payload workload (a few
   hot response keys requested over and over) sees a cache hit-rate of at
   least ``90%``, and every hit is answered at the ingress with zero
   added latency.

Both gates run the real discrete-event engine end to end, not the stages
in isolation, so the admission / completion plumbing through the gateway
and the SLO accounting is covered too.
"""

import os

from repro.gateway.middleware import build_pipeline
from repro.traffic import TrafficEngine
from repro.traffic.arrivals import Request
from repro.traffic.report import render_middleware_table

MB = 1024 * 1024

#: The stated cache effectiveness bound on a repeated-payload workload.
CACHE_HIT_RATE_BOUND = 0.9

#: Thundering-herd width (identical concurrent requests).
HERD = 50


def test_coalescing_collapses_a_thundering_herd_to_one_invocation(results_dir):
    requests = [
        Request(request_id=i, arrival_s=0.0, function="hot", payload_bytes=4 * MB)
        for i in range(HERD)
    ]
    engine = TrafficEngine("roadrunner-user", middleware=build_pipeline(["coalesce"]))
    summary = engine.run(requests)

    # Exactly one backend invocation; every herd member served.
    assert summary.completed == 1
    assert summary.coalesced == HERD - 1
    assert summary.timed_out == 0 and summary.dropped == 0
    served = summary.goodput_rps * summary.duration_s
    assert abs(served - HERD) < 1e-6  # goodput counts the whole herd
    stats = engine.middleware_stats
    assert stats["coalesce"]["leaders"] == 1
    assert stats["coalesce"]["parked"] == HERD - 1
    assert stats["coalesce"]["fanned_out"] == HERD - 1

    with open(
        os.path.join(results_dir, "middleware_coalesce.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(
            "Thundering herd: %d identical concurrent requests\n"
            "Backend invocations: %d   coalesced responses: %d\n\n%s\n"
            % (HERD, summary.completed, summary.coalesced, render_middleware_table(stats))
        )


def test_cache_hit_rate_exceeds_ninety_percent_on_repeated_payloads(results_dir):
    # Five hot response keys cycled 40 times each, spaced so every response
    # lands in the cache before the key repeats.
    hot_keys = 5
    rounds = 40
    requests = [
        Request(
            request_id=index,
            arrival_s=0.5 * index,
            function="lookup",
            payload_bytes=(index % hot_keys + 1) * MB,
        )
        for index in range(hot_keys * rounds)
    ]
    engine = TrafficEngine(
        "roadrunner-user",
        middleware=build_pipeline(["cache"], cache_ttl_s=10_000.0),
    )
    summary = engine.run(requests)

    stats = engine.middleware_stats["cache"]
    hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])
    assert hit_rate >= CACHE_HIT_RATE_BOUND
    # Only the first round misses; everything after is served at the ingress.
    assert stats["misses"] == hot_keys
    assert summary.completed == hot_keys
    assert summary.cached == hot_keys * (rounds - 1)

    with open(
        os.path.join(results_dir, "middleware_cache.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(
            "Repeated-payload workload: %d requests over %d hot keys\n"
            "Cache hit rate: %.1f%% (bound: %.0f%%)\n\n%s\n"
            % (
                len(requests),
                hot_keys,
                100.0 * hit_rate,
                100.0 * CACHE_HIT_RATE_BOUND,
                render_middleware_table({"cache": stats}),
            )
        )
