"""Benchmark: regenerate Fig. 6 (inter-node 100 MB latency breakdown).

Panels: (a) transfer / serialization / Wasm VM I/O components, (b)
serialization overhead alone, (c) normalized shares — for Roadrunner (RR),
RunC (RC) and WasmEdge (W).
"""

from repro.experiments.fig6 import run_fig6


def test_fig6_breakdown_100mb(benchmark, save_result):
    result = benchmark.pedantic(run_fig6, rounds=3, iterations=1)
    save_result("fig6", result)

    totals = dict(zip(result.x_values, result.panel("a_latency_breakdown_s")["Total"]))
    serialization = dict(zip(result.x_values, result.panel("b_serialization_latency_s")["Serialization"]))

    # Ordering: Roadrunner < RunC < WasmEdge on total latency.
    assert totals["RR"] < totals["RC"] < totals["W"]
    # Headline ratios (shape): ~62 % total reduction vs WasmEdge, single-digit
    # percent vs RunC, >=97 % serialization reduction vs WasmEdge.
    assert 0.45 <= 1 - totals["RR"] / totals["W"] <= 0.75
    assert 0.0 < 1 - totals["RR"] / totals["RC"] <= 0.25
    assert serialization["RR"] <= 0.03 * serialization["W"]
    # Roadrunner pays a visible Wasm VM I/O share that RunC does not.
    wasm_io = dict(zip(result.x_values, result.panel("c_normalized_share_pct")["Wasm VM I/O"]))
    assert wasm_io["RR"] > wasm_io["RC"]
