"""Benchmarks for the implemented future-work extensions and sensitivity sweeps.

These are not paper figures; they cover the extensions the paper lists as
future work (syscall batching, dynamic runtime selection, function state) and
the sensitivity analysis DESIGN.md calls out, so their cost is tracked the
same way as the reproduced figures.
"""

from repro.core.config import RoadrunnerConfig
from repro.experiments.environment import build_pair_setup
from repro.experiments.sensitivity import sweep_parameter
from repro.platform.runtime_selector import RuntimeSelector, WorkflowProfile
from repro.sim.costs import DEFAULT_COST_MODEL
from repro.workloads.generators import make_payload

MB = 1024 * 1024


def test_extension_syscall_batching(benchmark):
    def run():
        setup = build_pair_setup(
            "roadrunner-kernel", config=RoadrunnerConfig.with_syscall_batching(factor=16)
        )
        payload = make_payload(100)
        return setup.channel.transfer(setup.source, setup.target, payload).metrics

    batched = benchmark.pedantic(run, rounds=3, iterations=1)

    plain_setup = build_pair_setup("roadrunner-kernel")
    plain = plain_setup.channel.transfer(
        plain_setup.source, plain_setup.target, make_payload(100)
    ).metrics
    assert batched.syscalls < plain.syscalls
    assert batched.total_latency_s <= plain.total_latency_s


def test_extension_runtime_selector(benchmark):
    selector = RuntimeSelector()
    profiles = [
        WorkflowProfile(payload_bytes=size * MB, colocatable=colocatable, cold_start_fraction=cold)
        for size in (1, 10, 100)
        for colocatable in (True, False)
        for cold in (0.0, 0.5)
    ]

    def run():
        return [selector.recommend(profile) for profile in profiles]

    recommendations = benchmark(run)
    assert len(recommendations) == len(profiles)
    # Roadrunner-based configurations dominate whenever colocation is possible.
    for profile, recommendation in zip(profiles, recommendations):
        if profile.colocatable and profile.payload_bytes >= 10 * MB:
            assert recommendation.data_passing.value.startswith("roadrunner")


def test_sensitivity_network_bandwidth(benchmark):
    base = DEFAULT_COST_MODEL.network_bandwidth

    def run():
        return sweep_parameter(
            "network_bandwidth",
            [base * 0.25, base, base * 4],
            payload_mb=50,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(point.improvement_pct > 0 for point in result.points)
