"""Benchmark: regenerate Fig. 2 (motivation).

Fig. 2a — cold start, execution latency and image size for a container vs a
Wasm binary; Fig. 2b — normalized transfer vs serialization share at 1, 60
and 100 MB for the container and Wasm runtimes.
"""

from repro.experiments.fig2 import FIG2B_SIZES_MB, run_fig2a, run_fig2b


def test_fig2a_cold_start_and_execution(benchmark, save_result):
    result = benchmark.pedantic(run_fig2a, rounds=3, iterations=1)
    save_result("fig2a", result)
    # Wasm binaries are far smaller and cold start far faster than containers.
    for function in result.x_values:
        assert result.value("cold_start_s", "Wasm", function) < result.value(
            "cold_start_s", "Cont", function
        )
        assert result.value("image_size_mb", "Wasm", function) < result.value(
            "image_size_mb", "Cont", function
        )


def test_fig2b_normalized_io_breakdown(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig2b, kwargs={"sizes_mb": FIG2B_SIZES_MB}, rounds=3, iterations=1
    )
    save_result("fig2b", result)
    # Serialization weighs far more on the Wasm runtime than on containers.
    for size in result.x_values:
        assert result.value("normalized_breakdown_pct", "Wasm Serialization", size) > result.value(
            "normalized_breakdown_pct", "Cont Serialization", size
        )
