"""Benchmark: the memory-pressure model prices keep-alive without breaking runs.

Two gates protect the model's headline promises:

1. **Over-budget clusters evict and survive** — under a node RSS budget the
   OOM evictor fires, every eviction forces a later cold start, the run
   still serves its full offered load, and the density headline
   (RSS-MB-seconds per 1000 served requests) is positive and round-trips
   through the figure exporter.
2. **Disabled means invisible** — with ``node_memory_mb == 0`` the rendered
   report and the exported figure are byte-identical to what a memory-free
   build produced: no eviction column, no memory panel, no drift in any
   number.

Both gates run the real multi-tenant discrete-event engine end to end, so
replica accounting, autoscaler keep-alive economics and the SLO rollup are
covered too.
"""

import os

from repro.metrics.export import (
    figure_from_csv,
    figure_to_csv,
    traffic_from_figure,
    traffic_to_figure,
)
from repro.traffic.arrivals import BurstyArrivals, PoissonArrivals
from repro.traffic.engine import MultiTenantTrafficEngine, TrafficConfig
from repro.traffic.report import render_summary_table
from repro.traffic.tenants import TenantSpec

#: Per-node RSS budget tight enough that parked container replicas overflow.
NODE_BUDGET_MB = 60.0


def _tenants():
    return [
        TenantSpec(
            name="containers",
            mode="runc-http",
            weight=1,
            arrivals=BurstyArrivals(
                on_rate_rps=40, duration_s=12, function="containers",
                payload_mb=0.5, seed=7,
            ),
        ),
        TenantSpec(
            name="wasm",
            mode="roadrunner-user",
            weight=1,
            arrivals=PoissonArrivals(
                rate_rps=20, duration_s=12, function="wasm",
                payload_mb=0.5, seed=11,
            ),
        ),
    ]


def _run(node_memory_mb):
    engine = MultiTenantTrafficEngine(
        _tenants(),
        config=TrafficConfig(nodes=2, node_memory_mb=node_memory_mb),
    )
    return engine, engine.run()


def test_over_budget_cluster_evicts_and_survives(results_dir):
    _, free = _run(node_memory_mb=0.0)
    engine, budgeted = _run(node_memory_mb=NODE_BUDGET_MB)

    # The evictor fired, and every kill is visible in the summary rollup.
    assert budgeted.cluster.oom_evictions > 0
    assert len(engine.evictions) == budgeted.cluster.oom_evictions
    # Evicted replicas restart later: strictly more cold starts than the
    # memory-free twin of the same workload.
    assert budgeted.cluster.cold_starts > free.cluster.cold_starts
    # Pressure never costs goodput in this scenario — it only reprices it.
    assert budgeted.cluster.offered == free.cluster.offered
    assert budgeted.cluster.completed == free.cluster.completed
    assert budgeted.cluster.timed_out == 0 and budgeted.cluster.dropped == 0

    # The density headline exists and round-trips through the exporter.
    assert budgeted.cluster.rss_mb_per_1k > 0.0
    assert budgeted.cluster.cpu_seconds_per_1k > 0.0
    results = dict(budgeted.tenants, cluster=budgeted.cluster)
    figure = traffic_to_figure(results)
    assert "memory" in figure.panels
    restored = traffic_from_figure(figure_from_csv(figure_to_csv(figure)))
    assert restored["cluster"].oom_evictions == budgeted.cluster.oom_evictions
    assert restored["cluster"].rss_mb_per_1k == budgeted.cluster.rss_mb_per_1k

    with open(
        os.path.join(results_dir, "memory_pressure.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(
            "Node budget: %.0f MB   evictions: %d   cold starts: %d -> %d\n\n%s\n"
            % (
                NODE_BUDGET_MB,
                budgeted.cluster.oom_evictions,
                free.cluster.cold_starts,
                budgeted.cluster.cold_starts,
                render_summary_table(results),
            )
        )


def test_disabled_model_is_invisible_in_every_output(results_dir):
    _, free = _run(node_memory_mb=0.0)
    results = dict(free.tenants, cluster=free.cluster)

    assert free.cluster.oom_evictions == 0
    assert free.cluster.rss_mb_seconds == 0.0
    assert free.cluster.cpu_seconds == 0.0
    table = render_summary_table(results)
    assert "evicted" not in table and "RSS-MB/1k" not in table
    figure = traffic_to_figure(results)
    assert "memory" not in figure.panels
    assert "oom_evictions" not in figure_to_csv(figure)
