"""Benchmark: regenerate Fig. 8 (inter-node payload-size sweep, 8 panels).

Chained functions a -> b across the edge-cloud link, 1-500 MB payloads,
comparing RoadRunner (Network), RunC and Wasmedge.
"""

from repro.experiments.fig8 import run_fig8
from repro.experiments.panels import (
    PANEL_SERIALIZATION_LATENCY,
    PANEL_TOTAL_CPU,
    PANEL_TOTAL_LATENCY,
    PANEL_TOTAL_THROUGHPUT,
)

RR_NET = "RoadRunner (Network)"
RUNC = "RunC"
WASMEDGE = "Wasmedge"


def test_fig8_internode_sweep(benchmark, save_result):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    save_result("fig8", result)

    latency = result.panel(PANEL_TOTAL_LATENCY)
    serialization = result.panel(PANEL_SERIALIZATION_LATENCY)
    for i, _size in enumerate(result.x_values):
        # Roadrunner tracks RunC closely and clearly beats Wasmedge (Fig. 8a).
        assert latency[RR_NET][i] <= latency[RUNC][i]
        assert latency[RR_NET][i] < latency[WASMEDGE][i]
        # Serialization stays negligible for Roadrunner (Fig. 8c).
        assert serialization[RR_NET][i] < 0.05 * serialization[WASMEDGE][i]

    largest = len(result.x_values) - 1
    throughput = result.panel(PANEL_TOTAL_THROUGHPUT)
    cpu = result.panel(PANEL_TOTAL_CPU)
    assert throughput[RR_NET][largest] >= throughput[RUNC][largest]
    assert cpu[RR_NET][largest] < cpu[WASMEDGE][largest]
    # The margin over Wasmedge narrows inter-node because the wire dominates
    # (Sec. 6.3), but remains substantial.
    reduction = 1 - latency[RR_NET][largest] / latency[WASMEDGE][largest]
    assert 0.3 <= reduction <= 0.8
