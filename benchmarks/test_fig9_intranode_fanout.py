"""Benchmark: regenerate Fig. 9 (intra-node fan-out scalability, 8 panels).

Function a fans a 10 MB payload out to N replicas of function b on the same
node (N = 1..100), comparing RoadRunner (User space), RoadRunner (Kernel
space), RunC and Wasmedge.
"""

from repro.experiments.fig9 import run_fig9
from repro.experiments.panels import (
    PANEL_SERIALIZATION_LATENCY,
    PANEL_TOTAL_CPU,
    PANEL_TOTAL_LATENCY,
    PANEL_TOTAL_THROUGHPUT,
)

RR_USER = "RoadRunner (User space)"
RR_KERNEL = "RoadRunner (Kernel space)"
RUNC = "RunC"
WASMEDGE = "Wasmedge"


def test_fig9_intranode_fanout(benchmark, save_result):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    save_result("fig9", result)

    latency = result.panel(PANEL_TOTAL_LATENCY)
    throughput = result.panel(PANEL_TOTAL_THROUGHPUT)
    serialization = result.panel(PANEL_SERIALIZATION_LATENCY)
    cpu = result.panel(PANEL_TOTAL_CPU)

    for i, _degree in enumerate(result.x_values):
        # Roadrunner (User space) keeps the lowest latency; Wasmedge the
        # highest (Fig. 9a), and the throughput ordering mirrors it (Fig. 9b).
        assert latency[RR_USER][i] < latency[WASMEDGE][i]
        assert latency[RR_KERNEL][i] < latency[WASMEDGE][i]
        assert latency[RR_USER][i] < latency[RUNC][i]
        assert throughput[RR_USER][i] > throughput[WASMEDGE][i]
        # Serialization stays negligible for both Roadrunner modes (Fig. 9c).
        assert serialization[RR_USER][i] < 0.05 * serialization[WASMEDGE][i]
        assert serialization[RR_KERNEL][i] < 0.05 * serialization[WASMEDGE][i]

    largest = len(result.x_values) - 1
    # Throughput gains at high fan-out (Sec. 6.4): several-fold over Wasmedge,
    # above RunC for the user-space mode.
    assert throughput[RR_USER][largest] >= 4.0 * throughput[WASMEDGE][largest]
    assert throughput[RR_USER][largest] > throughput[RUNC][largest]
    assert throughput[RR_KERNEL][largest] >= 2.0 * throughput[WASMEDGE][largest]
    # CPU stays far below Wasmedge even at fan-out 100 (Fig. 9e).
    assert cpu[RR_USER][largest] < 0.25 * cpu[WASMEDGE][largest]
