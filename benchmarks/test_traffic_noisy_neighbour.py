"""Benchmark: multi-tenant contention on one shared cluster.

Not a paper figure — the shared-infrastructure regime middleware surveys
treat as the defining concern: several tenants' replica pools contending
for the same node cores, with the gateway deciding whose queued request
gets each freed core.  The assertions pin the fairness properties the
gateway must keep: under byte-identical seeded arrivals, weighted fair
queueing strictly protects the steady tenant's tail latency from a bursty
noisy neighbour, dispatch shares track weights under saturation, and the
cluster-wide rollup conserves every request.
"""

import pytest

from repro.traffic import (
    Autoscaler,
    BurstyArrivals,
    FairnessPolicy,
    MultiTenantTrafficEngine,
    PoissonArrivals,
    TargetConcurrencyPolicy,
    TenantSpec,
    TrafficConfig,
)

DURATION_S = 20.0
PAYLOAD_MB = 50.0


def _tenants(steady_weight=1, noisy_weight=1):
    return [
        TenantSpec(
            name="steady",
            mode="roadrunner-user",
            weight=steady_weight,
            arrivals=PoissonArrivals(
                rate_rps=20.0, duration_s=DURATION_S, function="steady",
                payload_mb=PAYLOAD_MB, seed=7,
            ),
        ),
        TenantSpec(
            name="noisy",
            mode="roadrunner-user",
            weight=noisy_weight,
            arrivals=BurstyArrivals(
                on_rate_rps=300.0, duration_s=DURATION_S, on_s=3.0, off_s=5.0,
                function="noisy", payload_mb=PAYLOAD_MB, seed=8,
            ),
        ),
    ]


def _run(fairness, tenants=None):
    engine = MultiTenantTrafficEngine(
        tenants if tenants is not None else _tenants(),
        config=TrafficConfig(nodes=1, initial_replicas=2),
        fairness=fairness,
        autoscaler_factory=lambda: Autoscaler(
            TargetConcurrencyPolicy(1.0), min_replicas=1, max_replicas=8, keep_alive_s=5.0
        ),
    )
    return engine.run()


def test_wfq_protects_steady_tenant_p99_from_noisy_neighbour(benchmark):
    def run():
        return _run(FairnessPolicy.WFQ), _run(FairnessPolicy.FIFO)

    wfq, fifo = benchmark.pedantic(run, rounds=1, iterations=1)
    # Identical seeded arrivals: both runs offered exactly the same streams.
    for name in ("steady", "noisy"):
        assert wfq.tenants[name].offered == fifo.tenants[name].offered > 0
    steady_wfq = wfq.tenants["steady"]
    steady_fifo = fifo.tenants["steady"]
    # The tentpole claim: fair queueing strictly beats FIFO sharing for the
    # well-behaved tenant's tail, and by a wide margin (the burst's whole
    # drain time vs a couple of service times).
    assert steady_wfq.latency.p99_s < steady_fifo.latency.p99_s
    assert steady_wfq.latency.p99_s < steady_fifo.latency.p99_s / 5
    assert steady_wfq.queueing.p99_s < steady_fifo.queueing.p99_s
    # The noisy tenant queues against itself either way: its burst backlog
    # dominates its own tail, so fairness costs it comparatively little.
    noisy_wfq = wfq.tenants["noisy"]
    noisy_fifo = fifo.tenants["noisy"]
    assert noisy_wfq.latency.p99_s < 2 * noisy_fifo.latency.p99_s
    # Rollup conserves requests across tenants.
    for result in (wfq, fifo):
        assert result.cluster.offered == sum(t.offered for t in result.tenants.values())
        assert result.cluster.completed == sum(t.completed for t in result.tenants.values())


def test_weights_shift_capacity_toward_heavier_tenant(benchmark):
    def run():
        return (
            _run(FairnessPolicy.WFQ, _tenants(steady_weight=1, noisy_weight=1)),
            _run(FairnessPolicy.WFQ, _tenants(steady_weight=4, noisy_weight=1)),
        )

    equal, weighted = benchmark.pedantic(run, rounds=1, iterations=1)
    # A 4x weight cannot hurt the steady tenant's tail, and the noisy
    # tenant's backlog drains no faster than under equal weights.
    assert weighted.tenants["steady"].latency.p99_s <= equal.tenants["steady"].latency.p99_s
    assert weighted.tenants["noisy"].latency.p99_s >= equal.tenants["noisy"].latency.p99_s
    assert weighted.weights == {"steady": 4, "noisy": 1}


def test_multi_tenant_run_is_deterministic(benchmark):
    def run():
        return [_run(FairnessPolicy.WFQ) for _ in range(2)]

    first, second = benchmark.pedantic(run, rounds=1, iterations=1)
    assert first.tenants == second.tenants
    assert first.cluster == second.cluster
