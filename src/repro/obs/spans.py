"""Request-lifecycle spans: where each request's latency actually went.

A :class:`RequestTrace` is the telemetry view of one request's trip through
the platform: admitted at the gateway, waiting in the fair queue, (maybe)
watching its replica cold-start, executing, and ending in one of the four
outcomes.  It decomposes the client-observed latency into the stage
durations operators reason about::

    queue_s       time waiting for a free replica (cold-start wait excluded)
    cold_start_s  the part of the wait spent watching the replica warm up
    service_s     time executing the workflow on the replica

which sum (for completed requests) to the end-to-end latency.  Traces render
as nested slices in the Perfetto timeline export
(:func:`repro.metrics.timeline.request_trace_events`) and roll up into the
per-tenant/per-class latency-waterfall table
(:func:`repro.traffic.report.render_waterfall_table`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.metrics.stats import mean, percentile
from repro.traffic.slo import RequestOutcome, RequestRecord


class SpanError(ValueError):
    """Raised for malformed traces."""


#: Stage names in lifecycle order (the nested-slice rendering order).
STAGES = ("queue", "cold_start", "service")


@dataclass(frozen=True)
class RequestTrace:
    """One request's lifecycle, decomposed into stages."""

    tenant: str
    request_id: int
    request_class: str
    outcome: str  # a RequestOutcome value
    arrival_s: float
    end_s: float  # completion, timeout expiry, or arrival for drops/sheds
    dispatch_s: Optional[float] = None
    cold_start_s: float = 0.0
    node: str = ""
    replica: str = ""

    def __post_init__(self) -> None:
        if self.end_s < self.arrival_s:
            raise SpanError(
                "request %d ends (%r) before it arrives (%r)"
                % (self.request_id, self.end_s, self.arrival_s)
            )

    @property
    def completed(self) -> bool:
        return self.outcome == RequestOutcome.COMPLETED.value

    @property
    def queue_s(self) -> float:
        """Pure queueing: the wait minus any overlapped cold start."""
        if self.dispatch_s is None:
            return self.end_s - self.arrival_s
        return max(0.0, self.dispatch_s - self.arrival_s - self.cold_start_s)

    @property
    def service_s(self) -> float:
        if self.dispatch_s is None:
            return 0.0
        return self.end_s - self.dispatch_s

    @property
    def total_s(self) -> float:
        return self.end_s - self.arrival_s

    def stages(self) -> List[Tuple[str, float, float]]:
        """(stage, start, duration) slices in lifecycle order.

        Never-dispatched requests carry a single ``queue`` slice covering
        their whole (fruitless) wait; zero-duration stages are kept, so a
        request dispatched on arrival still shows its empty queue slice.
        """
        if self.dispatch_s is None:
            return [("queue", self.arrival_s, self.end_s - self.arrival_s)]
        return [
            ("queue", self.arrival_s, self.queue_s),
            ("cold_start", self.dispatch_s - self.cold_start_s, self.cold_start_s),
            ("service", self.dispatch_s, self.service_s),
        ]

    @classmethod
    def from_record(
        cls, tenant: str, record: RequestRecord, node: str = ""
    ) -> "RequestTrace":
        """Derive the trace from an SLO record (the engine's completion view)."""
        if record.served:
            end = record.completion_s  # cached/coalesced complete without dispatch
        elif record.outcome is RequestOutcome.TIMED_OUT and record.dispatch_s is None:
            end = record.arrival_s  # expiry offset is the engine's, not the record's
        else:
            end = record.arrival_s
        return cls(
            tenant=tenant,
            request_id=record.request_id,
            request_class=record.request_class,
            outcome=record.outcome.value,
            arrival_s=record.arrival_s,
            end_s=end if end is not None else record.arrival_s,
            dispatch_s=record.dispatch_s,
            cold_start_s=record.cold_start_wait_s,
            node=node,
            replica=record.replica,
        )


class TraceLog:
    """A bounded collector of request traces (opt-in: only built for export).

    ``capacity`` caps memory on very long runs: once full, later traces are
    counted but not retained, and the exporters surface the dropped count so
    a truncated trace never reads as a complete one.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SpanError("trace-log capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._traces: List[RequestTrace] = []

    def record(self, trace: RequestTrace) -> None:
        if self.capacity is not None and len(self._traces) >= self.capacity:
            self.dropped += 1
            return
        self._traces.append(trace)

    @property
    def traces(self) -> Tuple[RequestTrace, ...]:
        return tuple(self._traces)

    def __iter__(self) -> Iterator[RequestTrace]:
        return iter(self._traces)

    def __len__(self) -> int:
        return len(self._traces)


# -- the latency waterfall -----------------------------------------------------------


@dataclass(frozen=True)
class WaterfallRow:
    """Stage-duration rollup for one (tenant, class) slice of a run."""

    label: str
    request_class: str
    completed: int
    queue_mean_s: float
    queue_p95_s: float
    cold_mean_s: float
    cold_p95_s: float
    service_mean_s: float
    service_p95_s: float
    total_mean_s: float
    total_p95_s: float


def waterfall_from_records(
    label: str, records: Sequence[RequestRecord]
) -> List[WaterfallRow]:
    """Exact waterfall rows from retained records, one per class (+ rollup).

    Only completed requests contribute stage durations — a dropped request
    has no meaningful waterfall.  With more than one class in play an
    ``(all)`` rollup row closes the group.
    """
    completed = [r for r in records if r.outcome is RequestOutcome.COMPLETED]
    by_class: Dict[str, List[RequestRecord]] = {}
    for record in completed:
        by_class.setdefault(record.request_class, []).append(record)
    rows = [
        _row_from_records(label, name, mine) for name, mine in sorted(by_class.items())
    ]
    if len(rows) > 1:
        rows.append(_row_from_records(label, "(all)", completed))
    return rows


def _row_from_records(
    label: str, request_class: str, records: Sequence[RequestRecord]
) -> WaterfallRow:
    queues = [max(0.0, r.queueing_delay_s - r.cold_start_wait_s) for r in records]
    colds = [r.cold_start_wait_s for r in records]
    services = [r.service_s for r in records]
    totals = [r.latency_s for r in records]
    return WaterfallRow(
        label=label,
        request_class=request_class,
        completed=len(records),
        queue_mean_s=mean(queues),
        queue_p95_s=percentile(queues, 95.0),
        cold_mean_s=mean(colds),
        cold_p95_s=percentile(colds, 95.0),
        service_mean_s=mean(services),
        service_p95_s=percentile(services, 95.0),
        total_mean_s=mean(totals),
        total_p95_s=percentile(totals, 95.0),
    )
