"""Streaming SLO accounting: summaries without retaining per-request records.

The default engine keeps one :class:`~repro.traffic.slo.RequestRecord` per
admitted request and rolls them up at the end — exact, but O(requests)
memory.  :class:`StreamingTrafficStats` is the constant-memory replacement
behind ``TrafficConfig(retain_records=False)``: every would-be record is
folded into counters and :class:`~repro.obs.sketch.QuantileSketch` instances
(overall and per scheduling class) at completion time and then forgotten.
``summary()`` produces the same :class:`~repro.traffic.slo.TrafficSummary`
shape the exact path does, with sketch-estimated percentiles, and
``waterfall()`` produces the same per-class stage rows the waterfall table
renders — so reports, exporters and figures are agnostic to which mode fed
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.stats import LatencySummary
from repro.obs.sketch import QuantileSketch
from repro.obs.spans import WaterfallRow
from repro.traffic.slo import (
    SERVED_OUTCOMES,
    ClassSummary,
    RequestOutcome,
    RequestRecord,
    TrafficSummary,
)


@dataclass
class StageSketches:
    """The four stage distributions one scope (tenant or class) tracks."""

    latency: QuantileSketch = field(default_factory=QuantileSketch)
    queueing: QuantileSketch = field(default_factory=QuantileSketch)
    service: QuantileSketch = field(default_factory=QuantileSketch)
    cold_wait: QuantileSketch = field(default_factory=QuantileSketch)

    def observe(self, record: RequestRecord) -> None:
        self.observe_values(
            record.latency_s,
            record.queueing_delay_s,
            record.service_s,
            record.cold_start_wait_s,
        )

    def observe_values(
        self, latency: float, queueing: float, service: float, cold_wait: float
    ) -> None:
        """Fold pre-computed stage durations in (the engine's hot path)."""
        self.latency.observe(latency)
        self.queueing.observe(queueing)
        self.service.observe(service)
        self.cold_wait.observe(cold_wait)

    def clone(self) -> "StageSketches":
        return StageSketches(
            latency=self.latency.clone(),
            queueing=self.queueing.clone(),
            service=self.service.clone(),
            cold_wait=self.cold_wait.clone(),
        )


@dataclass
class _ClassStats:
    """Streaming counterpart of one :class:`ClassSummary`."""

    offered: int = 0
    completed: int = 0
    timed_out: int = 0
    dropped: int = 0
    shed: int = 0
    cached: int = 0
    coalesced: int = 0
    rate_limited: int = 0
    rejected: int = 0
    deadline_total: int = 0
    deadline_met: int = 0
    stages: StageSketches = field(default_factory=StageSketches)
    #: Served latency (completed + cached + coalesced) — the stage sketches
    #: stay completed-only so waterfalls keep their backend-stage meaning.
    latency_served: QuantileSketch = field(default_factory=QuantileSketch)

    def observe(self, record: RequestRecord) -> None:
        self.observe_values(
            record.outcome,
            record.served,
            record.latency_s,
            record.queueing_delay_s,
            record.service_s,
            record.cold_start_wait_s,
            record.deadline_s,
            record.deadline_met,
        )

    def observe_values(
        self,
        outcome: RequestOutcome,
        served: bool,
        latency: float,
        queueing: float,
        service: float,
        cold_wait: float,
        deadline_s: "Optional[float]",
        deadline_met: "Optional[bool]",
        track_stages: bool = True,
        track_served: bool = True,
    ) -> None:
        """Fold one outcome with its pre-computed stage durations.

        ``track_stages=False`` / ``track_served=False`` skip sketch updates
        for scopes whose sketches are shared with (or never read instead
        of) the owning :class:`StreamingTrafficStats` — the caller promises
        the shared object is updated exactly once elsewhere.
        """
        self.offered += 1
        if outcome is RequestOutcome.COMPLETED:
            self.completed += 1
            if track_stages:
                self.stages.observe_values(latency, queueing, service, cold_wait)
        elif outcome is RequestOutcome.TIMED_OUT:
            self.timed_out += 1
        elif outcome is RequestOutcome.DROPPED:
            self.dropped += 1
        elif outcome is RequestOutcome.SHED:
            self.shed += 1
        elif outcome is RequestOutcome.CACHED:
            self.cached += 1
        elif outcome is RequestOutcome.COALESCED:
            self.coalesced += 1
        elif outcome is RequestOutcome.RATE_LIMITED:
            self.rate_limited += 1
        elif outcome is RequestOutcome.REJECTED:
            self.rejected += 1
        if served and track_served:
            self.latency_served.observe(latency)
        if deadline_s is not None:
            self.deadline_total += 1
            if deadline_met:
                self.deadline_met += 1

    def summary(self, name: str) -> ClassSummary:
        return ClassSummary(
            name=name,
            offered=self.offered,
            completed=self.completed,
            timed_out=self.timed_out,
            dropped=self.dropped,
            shed=self.shed,
            cached=self.cached,
            coalesced=self.coalesced,
            rate_limited=self.rate_limited,
            rejected=self.rejected,
            deadline_total=self.deadline_total,
            deadline_met=self.deadline_met,
            latency=self.latency_served.summary(),
        )


class StreamingTrafficStats:
    """Constant-memory rollup of one request stream (a tenant or the cluster)."""

    def __init__(self, declared_classes: Sequence[str] = ()) -> None:
        self.offered = 0
        self.stages = StageSketches()
        self._classes: Dict[str, _ClassStats] = {}
        self._totals = _ClassStats()  # outcome/deadline counters across classes
        for name in declared_classes:
            self._class_stats(name)

    def _class_stats(self, name: str) -> _ClassStats:
        """The per-class accumulator, creating it on first sight.

        While exactly one class exists its sketches would hold exactly the
        scope-wide contents, so the sole class *shares* the scope's sketch
        objects (and ``observe`` skips the duplicate updates).  The moment a
        second class appears, the sole class's sketches are forked into
        independent copies — identical content, tracked separately from
        then on.
        """
        per_class = self._classes.get(name)
        if per_class is not None:
            return per_class
        if not self._classes:
            per_class = _ClassStats(
                stages=self.stages, latency_served=self._totals.latency_served
            )
        else:
            if len(self._classes) == 1:
                (sole,) = self._classes.values()
                if sole.stages is self.stages:
                    sole.stages = self.stages.clone()
                if sole.latency_served is self._totals.latency_served:
                    sole.latency_served = self._totals.latency_served.clone()
            per_class = _ClassStats()
        self._classes[name] = per_class
        return per_class

    def observe(self, record: RequestRecord) -> None:
        """Fold one finished request in; the record is not retained.

        The stage durations are computed once here (mirroring the
        :class:`~repro.traffic.slo.RequestRecord` property definitions) and
        fanned out as plain floats — the record's derived properties are
        never re-evaluated per scope, and the cross-class totals skip the
        stage sketches nobody reads off them.
        """
        arrival = record.arrival_s
        dispatch = record.dispatch_s
        completion = record.completion_s
        latency = 0.0 if completion is None else completion - arrival
        queueing = 0.0 if dispatch is None else dispatch - arrival
        service = (
            0.0
            if dispatch is None or completion is None
            else completion - dispatch
        )
        cold_wait = record.cold_start_wait_s
        outcome = record.outcome
        served = outcome in SERVED_OUTCOMES
        deadline_s = record.deadline_s
        deadline_met = (
            None if deadline_s is None else (served and completion <= deadline_s)
        )
        self.offered += 1
        self._totals.observe_values(
            outcome,
            served,
            latency,
            queueing,
            service,
            cold_wait,
            deadline_s,
            deadline_met,
            track_stages=False,
        )
        if outcome is RequestOutcome.COMPLETED:
            self.stages.observe_values(latency, queueing, service, cold_wait)
        per_class = self._classes.get(record.request_class)
        if per_class is None:
            per_class = self._class_stats(record.request_class)
        per_class.observe_values(
            outcome,
            served,
            latency,
            queueing,
            service,
            cold_wait,
            deadline_s,
            deadline_met,
            track_stages=per_class.stages is not self.stages,
            track_served=per_class.latency_served is not self._totals.latency_served,
        )

    @property
    def completed(self) -> int:
        return self._totals.completed

    def class_summaries(self) -> Tuple[ClassSummary, ...]:
        return tuple(
            self._classes[name].summary(name) for name in sorted(self._classes)
        )

    def summary(
        self,
        mode: str,
        pattern: str,
        duration_s: float,
        cold_starts: int = 0,
        cold_start_seconds: float = 0.0,
        replica_timeline: Sequence[Tuple[float, int]] = (),
        declared_classes: Sequence[str] = (),
        oom_evictions: int = 0,
        rss_mb_seconds: float = 0.0,
        cpu_seconds: float = 0.0,
    ) -> TrafficSummary:
        """The streaming analogue of :func:`repro.traffic.slo.summarize`."""
        from repro.traffic.slo import _replica_seconds  # shared step integration

        for name in declared_classes:  # zero-request classes still export rows
            self._class_stats(name)
        totals = self._totals
        return TrafficSummary(
            mode=mode,
            pattern=pattern,
            duration_s=duration_s,
            offered=self.offered,
            completed=totals.completed,
            timed_out=totals.timed_out,
            dropped=totals.dropped,
            shed=totals.shed,
            cached=totals.cached,
            coalesced=totals.coalesced,
            rate_limited=totals.rate_limited,
            rejected=totals.rejected,
            latency=totals.latency_served.summary(),
            queueing=self.stages.queueing.summary(),
            service=self.stages.service.summary(),
            cold_starts=cold_starts,
            cold_start_seconds=cold_start_seconds,
            replica_seconds=_replica_seconds(replica_timeline, duration_s),
            max_replicas=max((count for _, count in replica_timeline), default=0),
            replica_timeline=tuple(replica_timeline),
            classes=self.class_summaries(),
            oom_evictions=oom_evictions,
            rss_mb_seconds=rss_mb_seconds,
            cpu_seconds=cpu_seconds,
        )

    def waterfall(self, label: str) -> List[WaterfallRow]:
        """Sketch-estimated waterfall rows, matching the record-based shape."""
        rows = [
            _row_from_stages(label, name, stats.completed, stats.stages)
            for name, stats in sorted(self._classes.items())
            if stats.completed
        ]
        if len(rows) > 1:
            rows.append(
                _row_from_stages(label, "(all)", self._totals.completed, self.stages)
            )
        return rows


def _queue_only(stages: StageSketches) -> Tuple[float, float]:
    """Mean/p95 of the pure-queue wait, approximated from the two sketches.

    The record path subtracts cold wait per request; streaming can only
    subtract the aggregates, which is exact for the mean and a serviceable
    estimate for the tail (cold waits are near-constant per runtime).
    """
    mean_q = max(0.0, stages.queueing.mean - stages.cold_wait.mean)
    p95_q = max(0.0, stages.queueing.quantile(0.95) - stages.cold_wait.quantile(0.95))
    return mean_q, p95_q


def _row_from_stages(
    label: str, request_class: str, completed: int, stages: StageSketches
) -> WaterfallRow:
    queue_mean, queue_p95 = _queue_only(stages)
    return WaterfallRow(
        label=label,
        request_class=request_class,
        completed=completed,
        queue_mean_s=queue_mean,
        queue_p95_s=queue_p95,
        cold_mean_s=stages.cold_wait.mean,
        cold_p95_s=stages.cold_wait.quantile(0.95),
        service_mean_s=stages.service.mean,
        service_p95_s=stages.service.quantile(0.95),
        total_mean_s=stages.latency.mean,
        total_p95_s=stages.latency.quantile(0.95),
    )


def latency_summary_or_empty(values: Sequence[float]) -> LatencySummary:
    """``LatencySummary.from_samples`` that tolerates zero samples."""
    return LatencySummary.from_samples(values) if values else LatencySummary.empty()
