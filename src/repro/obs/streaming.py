"""Streaming SLO accounting: summaries without retaining per-request records.

The default engine keeps one :class:`~repro.traffic.slo.RequestRecord` per
admitted request and rolls them up at the end — exact, but O(requests)
memory.  :class:`StreamingTrafficStats` is the constant-memory replacement
behind ``TrafficConfig(retain_records=False)``: every would-be record is
folded into counters and :class:`~repro.obs.sketch.QuantileSketch` instances
(overall and per scheduling class) at completion time and then forgotten.
``summary()`` produces the same :class:`~repro.traffic.slo.TrafficSummary`
shape the exact path does, with sketch-estimated percentiles, and
``waterfall()`` produces the same per-class stage rows the waterfall table
renders — so reports, exporters and figures are agnostic to which mode fed
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.metrics.stats import LatencySummary
from repro.obs.sketch import QuantileSketch
from repro.obs.spans import WaterfallRow
from repro.traffic.slo import ClassSummary, RequestOutcome, RequestRecord, TrafficSummary


@dataclass
class StageSketches:
    """The four stage distributions one scope (tenant or class) tracks."""

    latency: QuantileSketch = field(default_factory=QuantileSketch)
    queueing: QuantileSketch = field(default_factory=QuantileSketch)
    service: QuantileSketch = field(default_factory=QuantileSketch)
    cold_wait: QuantileSketch = field(default_factory=QuantileSketch)

    def observe(self, record: RequestRecord) -> None:
        self.latency.observe(record.latency_s)
        self.queueing.observe(record.queueing_delay_s)
        self.service.observe(record.service_s)
        self.cold_wait.observe(record.cold_start_wait_s)


@dataclass
class _ClassStats:
    """Streaming counterpart of one :class:`ClassSummary`."""

    offered: int = 0
    completed: int = 0
    timed_out: int = 0
    dropped: int = 0
    shed: int = 0
    cached: int = 0
    coalesced: int = 0
    rate_limited: int = 0
    rejected: int = 0
    deadline_total: int = 0
    deadline_met: int = 0
    stages: StageSketches = field(default_factory=StageSketches)
    #: Served latency (completed + cached + coalesced) — the stage sketches
    #: stay completed-only so waterfalls keep their backend-stage meaning.
    latency_served: QuantileSketch = field(default_factory=QuantileSketch)

    def observe(self, record: RequestRecord) -> None:
        self.offered += 1
        if record.outcome is RequestOutcome.COMPLETED:
            self.completed += 1
            self.stages.observe(record)
        elif record.outcome is RequestOutcome.TIMED_OUT:
            self.timed_out += 1
        elif record.outcome is RequestOutcome.DROPPED:
            self.dropped += 1
        elif record.outcome is RequestOutcome.SHED:
            self.shed += 1
        elif record.outcome is RequestOutcome.CACHED:
            self.cached += 1
        elif record.outcome is RequestOutcome.COALESCED:
            self.coalesced += 1
        elif record.outcome is RequestOutcome.RATE_LIMITED:
            self.rate_limited += 1
        elif record.outcome is RequestOutcome.REJECTED:
            self.rejected += 1
        if record.served:
            self.latency_served.observe(record.latency_s)
        if record.deadline_s is not None:
            self.deadline_total += 1
            if record.deadline_met:
                self.deadline_met += 1

    def summary(self, name: str) -> ClassSummary:
        return ClassSummary(
            name=name,
            offered=self.offered,
            completed=self.completed,
            timed_out=self.timed_out,
            dropped=self.dropped,
            shed=self.shed,
            cached=self.cached,
            coalesced=self.coalesced,
            rate_limited=self.rate_limited,
            rejected=self.rejected,
            deadline_total=self.deadline_total,
            deadline_met=self.deadline_met,
            latency=self.latency_served.summary(),
        )


class StreamingTrafficStats:
    """Constant-memory rollup of one request stream (a tenant or the cluster)."""

    def __init__(self, declared_classes: Sequence[str] = ()) -> None:
        self.offered = 0
        self.stages = StageSketches()
        self._classes: Dict[str, _ClassStats] = {
            name: _ClassStats() for name in declared_classes
        }
        self._totals = _ClassStats()  # outcome/deadline counters across classes

    def observe(self, record: RequestRecord) -> None:
        """Fold one finished request in; the record is not retained."""
        self.offered += 1
        self._totals.observe(record)
        if record.outcome is RequestOutcome.COMPLETED:
            self.stages.observe(record)
        per_class = self._classes.get(record.request_class)
        if per_class is None:
            per_class = self._classes[record.request_class] = _ClassStats()
        per_class.observe(record)

    @property
    def completed(self) -> int:
        return self._totals.completed

    def class_summaries(self) -> Tuple[ClassSummary, ...]:
        return tuple(
            self._classes[name].summary(name) for name in sorted(self._classes)
        )

    def summary(
        self,
        mode: str,
        pattern: str,
        duration_s: float,
        cold_starts: int = 0,
        cold_start_seconds: float = 0.0,
        replica_timeline: Sequence[Tuple[float, int]] = (),
        declared_classes: Sequence[str] = (),
        oom_evictions: int = 0,
        rss_mb_seconds: float = 0.0,
        cpu_seconds: float = 0.0,
    ) -> TrafficSummary:
        """The streaming analogue of :func:`repro.traffic.slo.summarize`."""
        from repro.traffic.slo import _replica_seconds  # shared step integration

        for name in declared_classes:  # zero-request classes still export rows
            if name not in self._classes:
                self._classes[name] = _ClassStats()
        totals = self._totals
        return TrafficSummary(
            mode=mode,
            pattern=pattern,
            duration_s=duration_s,
            offered=self.offered,
            completed=totals.completed,
            timed_out=totals.timed_out,
            dropped=totals.dropped,
            shed=totals.shed,
            cached=totals.cached,
            coalesced=totals.coalesced,
            rate_limited=totals.rate_limited,
            rejected=totals.rejected,
            latency=totals.latency_served.summary(),
            queueing=self.stages.queueing.summary(),
            service=self.stages.service.summary(),
            cold_starts=cold_starts,
            cold_start_seconds=cold_start_seconds,
            replica_seconds=_replica_seconds(replica_timeline, duration_s),
            max_replicas=max((count for _, count in replica_timeline), default=0),
            replica_timeline=tuple(replica_timeline),
            classes=self.class_summaries(),
            oom_evictions=oom_evictions,
            rss_mb_seconds=rss_mb_seconds,
            cpu_seconds=cpu_seconds,
        )

    def waterfall(self, label: str) -> List[WaterfallRow]:
        """Sketch-estimated waterfall rows, matching the record-based shape."""
        rows = [
            _row_from_stages(label, name, stats.completed, stats.stages)
            for name, stats in sorted(self._classes.items())
            if stats.completed
        ]
        if len(rows) > 1:
            rows.append(
                _row_from_stages(label, "(all)", self._totals.completed, self.stages)
            )
        return rows


def _queue_only(stages: StageSketches) -> Tuple[float, float]:
    """Mean/p95 of the pure-queue wait, approximated from the two sketches.

    The record path subtracts cold wait per request; streaming can only
    subtract the aggregates, which is exact for the mean and a serviceable
    estimate for the tail (cold waits are near-constant per runtime).
    """
    mean_q = max(0.0, stages.queueing.mean - stages.cold_wait.mean)
    p95_q = max(0.0, stages.queueing.quantile(0.95) - stages.cold_wait.quantile(0.95))
    return mean_q, p95_q


def _row_from_stages(
    label: str, request_class: str, completed: int, stages: StageSketches
) -> WaterfallRow:
    queue_mean, queue_p95 = _queue_only(stages)
    return WaterfallRow(
        label=label,
        request_class=request_class,
        completed=completed,
        queue_mean_s=queue_mean,
        queue_p95_s=queue_p95,
        cold_mean_s=stages.cold_wait.mean,
        cold_p95_s=stages.cold_wait.quantile(0.95),
        service_mean_s=stages.service.mean,
        service_p95_s=stages.service.quantile(0.95),
        total_mean_s=stages.latency.mean,
        total_p95_s=stages.latency.quantile(0.95),
    )


def latency_summary_or_empty(values: Sequence[float]) -> LatencySummary:
    """``LatencySummary.from_samples`` that tolerates zero samples."""
    return LatencySummary.from_samples(values) if values else LatencySummary.empty()
