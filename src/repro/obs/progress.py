"""A live heartbeat for long simulations: how far along, how fast, how big.

Long sustained-load runs are silent until the final report; the progress
reporter prints a periodic one-line heartbeat instead::

    [progress] sim 120.0s/600.0s (20%) | 24031/120000 requests | 8012 req/s | replicas 14 | wall 3.1s

Throttling is keyed to **simulated** time (one line per ``interval_s`` of sim
time), so output is deterministic for a seeded run regardless of host speed;
only the wall-clock column varies.  The reporter is purely an observer — it
is invoked from existing engine hooks and never schedules events, so enabling
it cannot perturb results.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, IO, Optional


class ProgressError(ValueError):
    """Raised for invalid reporter parameters."""


class ProgressReporter:
    """Emits a heartbeat line at most once per ``interval_s`` of sim time."""

    def __init__(
        self,
        total_requests: int = 0,
        duration_s: float = 0.0,
        interval_s: float = 10.0,
        stream: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ProgressError("progress interval must be positive, got %r" % interval_s)
        self.total_requests = total_requests
        self.duration_s = duration_s
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._started_wall: Optional[float] = None
        self._next_due_s = 0.0
        self.lines_emitted = 0

    def start(self) -> None:
        self._started_wall = self._clock()
        self._next_due_s = self.interval_s

    def update(self, sim_now_s: float, finished: int, replicas: int) -> None:
        """Maybe emit a heartbeat; called from engine hooks, never scheduled."""
        if self._started_wall is None:
            self.start()
        if sim_now_s < self._next_due_s:
            return
        # Skip ahead past any quiet stretch so a burst doesn't flush a backlog.
        while self._next_due_s <= sim_now_s:
            self._next_due_s += self.interval_s
        self._emit(sim_now_s, finished, replicas)

    def finish(self, sim_now_s: float, finished: int, replicas: int) -> None:
        """The closing heartbeat (always emitted, even on short runs)."""
        if self._started_wall is None:
            self.start()
        self._emit(sim_now_s, finished, replicas, closing=True)

    def _emit(
        self, sim_now_s: float, finished: int, replicas: int, closing: bool = False
    ) -> None:
        wall_s = self._clock() - (self._started_wall or 0.0)
        parts = ["[progress]" if not closing else "[progress] done:"]
        if self.duration_s > 0:
            pct = min(100.0, 100.0 * sim_now_s / self.duration_s)
            parts.append("sim %.1fs/%.1fs (%d%%)" % (sim_now_s, self.duration_s, pct))
        else:
            parts.append("sim %.1fs" % sim_now_s)
        if self.total_requests > 0:
            parts.append("| %d/%d requests" % (finished, self.total_requests))
        else:
            parts.append("| %d requests" % finished)
        if sim_now_s > 0:
            parts.append("| %.0f req/s" % (finished / sim_now_s))
        parts.append("| replicas %d" % replicas)
        parts.append("| wall %.1fs" % wall_s)
        self.stream.write(" ".join(parts) + "\n")
        self.stream.flush()
        self.lines_emitted += 1
