"""The telemetry facade the traffic engine talks to.

One :class:`Telemetry` object bundles the run's observability surfaces — a
:class:`~repro.obs.registry.MetricsRegistry`, an optional
:class:`~repro.obs.spans.TraceLog`, an optional
:class:`~repro.obs.exporters.JsonlEventWriter` and an optional
:class:`~repro.obs.progress.ProgressReporter` — behind a handful of hooks
the engine calls at its natural state transitions (request finished, pool
scaled, control tick, run boundaries).  The engine never branches on which
sinks exist; the facade fans each hook out to whichever are attached.

Everything here is an observer: hooks never schedule events, mutate engine
state, or raise on a quiet run, so attaching a full telemetry stack to a
seeded simulation cannot change its results.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.obs.exporters import JsonlEventWriter
from repro.obs.progress import ProgressReporter
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import RequestTrace, TraceLog
from repro.traffic.autoscaler import LoadSample
from repro.traffic.slo import RequestOutcome, RequestRecord


class Telemetry:
    """Fan-out from engine lifecycle hooks to the attached telemetry sinks."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        trace_log: Optional[TraceLog] = None,
        events: Optional[JsonlEventWriter] = None,
        progress: Optional[ProgressReporter] = None,
        region: str = "",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace_log = trace_log
        self.events = events
        self.progress = progress
        #: Region this telemetry stack observes (federated runs attach one
        #: stack per region).  Empty keeps every metric family's label set —
        #: and every JSONL event's shape — byte-identical to the
        #: pre-federation exposition.
        self.region = region
        self._region_labels = ("region",) if region else ()
        reg = self.registry
        self._requests = reg.counter(
            "repro_requests_total",
            help="Requests finished, by tenant and outcome.",
            labels=self._region_labels + ("tenant", "outcome"),
        )
        self._latency = reg.summary(
            "repro_request_latency_seconds",
            help="End-to-end latency of completed requests.",
            labels=self._region_labels + ("tenant",),
        )
        self._stages = reg.summary(
            "repro_request_stage_seconds",
            help="Per-stage durations (queue, cold_start, service) of completed requests.",
            labels=self._region_labels + ("tenant", "stage"),
        )
        self._replicas = reg.gauge(
            "repro_replicas",
            help="Current replica pool size.",
            labels=self._region_labels + ("tenant",),
        )
        self._queue_depth = reg.gauge(
            "repro_queue_depth",
            help="Queued requests at the last control tick.",
            labels=self._region_labels + ("tenant",),
        )
        self._arrival_rate = reg.gauge(
            "repro_arrival_rate_rps",
            help="Arrival rate observed over the last control interval.",
            labels=self._region_labels + ("tenant",),
        )
        self._forecast = reg.gauge(
            "repro_forecast_rps",
            help="Predictive policy's arrival-rate forecast (predictive policies only).",
            labels=self._region_labels + ("tenant",),
        )
        self._forecast_error = reg.summary(
            "repro_forecast_error_rps",
            help="Absolute error between the forecast and the observed rate.",
            labels=self._region_labels + ("tenant",),
        )
        self._cold_starts = reg.counter(
            "repro_cold_starts_total",
            help="Replica cold starts paid.",
            labels=self._region_labels + ("tenant",),
        )
        self._cold_seconds = reg.counter(
            "repro_cold_start_seconds_total",
            help="Simulated seconds spent cold-starting replicas.",
            labels=self._region_labels + ("tenant",),
        )
        self._scaling = reg.counter(
            "repro_scaling_actions_total",
            help="Autoscaler pool changes, by direction.",
            labels=self._region_labels + ("tenant", "direction"),
        )

    def _labelled(self, family, **labels):
        """The family's child for ``labels``, region-qualified when set."""
        if self.region:
            labels["region"] = self.region
        return family.labels(**labels)

    def _emit(self, payload: Dict[str, object]) -> None:
        """Write one JSONL event, region-stamped when a region is set."""
        if self.region:
            payload = dict(payload)
            payload["region"] = self.region
        self.events.emit(payload)

    # -- run boundaries ---------------------------------------------------------------

    def on_run_start(self, total_requests: int, duration_hint_s: float = 0.0) -> None:
        if self.progress is not None:
            self.progress.total_requests = total_requests
            if duration_hint_s > 0:
                self.progress.duration_s = duration_hint_s
            self.progress.start()
        if self.events is not None:
            self._emit({"event": "run_start", "total_requests": total_requests})

    def on_run_end(self, sim_now_s: float, finished: int, replicas: int) -> None:
        if self.progress is not None:
            self.progress.finish(sim_now_s, finished, replicas)
        if self.events is not None:
            payload: Dict[str, object] = {
                "event": "run_end",
                "sim_s": round(sim_now_s, 9),
                "finished": finished,
                "replicas": replicas,
            }
            if self.trace_log is not None and self.trace_log.dropped:
                payload["traces_dropped"] = self.trace_log.dropped
            self._emit(payload)

    # -- per-request ------------------------------------------------------------------

    def on_request(self, tenant: str, record: RequestRecord, node: str = "") -> None:
        """One request reached a terminal outcome; fan it out everywhere."""
        self._labelled(self._requests, tenant=tenant, outcome=record.outcome.value).inc()
        trace = RequestTrace.from_record(tenant, record, node=node)
        if record.served:
            # Cached/coalesced responses count toward client-observed latency
            # even though they never produced backend stage durations.
            self._labelled(self._latency, tenant=tenant).observe(record.latency_s)
        if record.outcome is RequestOutcome.COMPLETED:
            for stage, _, duration in trace.stages():
                self._labelled(self._stages, tenant=tenant, stage=stage).observe(
                    duration
                )
        if self.trace_log is not None:
            self.trace_log.record(trace)
        if self.events is not None:
            event: Dict[str, object] = {
                "event": "request",
                "tenant": tenant,
                "id": record.request_id,
                "class": record.request_class,
                "outcome": record.outcome.value,
                "arrival_s": round(record.arrival_s, 9),
            }
            if record.served:
                event["latency_s"] = round(record.latency_s, 9)
            if record.outcome is RequestOutcome.COMPLETED:
                event["queue_s"] = round(trace.queue_s, 9)
                event["cold_start_s"] = round(trace.cold_start_s, 9)
                event["service_s"] = round(trace.service_s, 9)
                event["replica"] = record.replica
                if node:
                    event["node"] = node
            self._emit(event)

    def on_progress(self, sim_now_s: float, finished: int, replicas: int) -> None:
        if self.progress is not None:
            self.progress.update(sim_now_s, finished, replicas)

    # -- control loop -----------------------------------------------------------------

    def on_scale(
        self,
        tenant: str,
        delta: int,
        replicas: int,
        now_s: float,
        cold_starts: int = 0,
        cold_seconds: float = 0.0,
    ) -> None:
        """The pool changed size by ``delta`` (positive = scale-up)."""
        if delta == 0:
            return
        direction = "up" if delta > 0 else "down"
        self._labelled(self._scaling, tenant=tenant, direction=direction).inc(
            abs(delta)
        )
        self._labelled(self._replicas, tenant=tenant).set(replicas)
        if cold_starts:
            self._labelled(self._cold_starts, tenant=tenant).inc(cold_starts)
            self._labelled(self._cold_seconds, tenant=tenant).inc(cold_seconds)
        if self.events is not None:
            self._emit(
                {
                    "event": "scale",
                    "tenant": tenant,
                    "sim_s": round(now_s, 9),
                    "delta": delta,
                    "replicas": replicas,
                    "cold_seconds": round(cold_seconds, 9),
                }
            )

    def on_oom_evict(self, tenant: str, node: str, replica: str, now_s: float) -> None:
        """The OOM evictor killed one idle replica on an over-budget node.

        The counter family is created on first eviction (like the
        middleware counters), so runs without a memory model keep their
        exposition byte-identical.
        """
        family = self.registry.counter(
            "repro_oom_evictions_total",
            help="Replicas killed by the OOM evictor, by tenant and node.",
            labels=self._region_labels + ("tenant", "node"),
        )
        self._labelled(family, tenant=tenant, node=node).inc()
        if self.events is not None:
            self._emit(
                {
                    "event": "oom_evict",
                    "tenant": tenant,
                    "node": node,
                    "replica": replica,
                    "sim_s": round(now_s, 9),
                }
            )

    def on_tick(
        self, tenant: str, sample: LoadSample, forecast_rps: Optional[float] = None
    ) -> None:
        """One autoscaler control tick's load view."""
        self._labelled(self._replicas, tenant=tenant).set(sample.replicas)
        self._labelled(self._queue_depth, tenant=tenant).set(sample.queued)
        self._labelled(self._arrival_rate, tenant=tenant).set(sample.arrival_rate_rps)
        if forecast_rps is not None:
            self._labelled(self._forecast, tenant=tenant).set(forecast_rps)
            self._labelled(self._forecast_error, tenant=tenant).observe(
                abs(forecast_rps - sample.arrival_rate_rps)
            )

    # -- end-of-run rollups -----------------------------------------------------------

    def observe_queue_stats(self, stats: Mapping[str, object]) -> None:
        """Fold the gateway's per-tenant queue counters in (run end, once)."""
        enq = self.registry.counter(
            "repro_queue_enqueued_total",
            help="Requests admitted to the fair queue.",
            labels=self._region_labels + ("tenant",),
        )
        disp = self.registry.counter(
            "repro_queue_dispatched_total",
            help="Requests dispatched from the fair queue to a replica.",
            labels=self._region_labels + ("tenant",),
        )
        dropped = self.registry.counter(
            "repro_queue_dropped_total",
            help="Arrivals refused at the admission bound.",
            labels=self._region_labels + ("tenant",),
        )
        timed_out = self.registry.counter(
            "repro_queue_timed_out_total",
            help="Queued requests that outlived the queue timeout.",
            labels=self._region_labels + ("tenant",),
        )
        shed = self.registry.counter(
            "repro_queue_shed_total",
            help="Hard-deadline requests shed by admission control.",
            labels=self._region_labels + ("tenant",),
        )
        for tenant, tenant_stats in stats.items():
            self._labelled(enq, tenant=tenant).inc(tenant_stats.enqueued)
            self._labelled(disp, tenant=tenant).inc(tenant_stats.dispatched)
            self._labelled(dropped, tenant=tenant).inc(tenant_stats.dropped)
            self._labelled(timed_out, tenant=tenant).inc(tenant_stats.timed_out)
            self._labelled(shed, tenant=tenant).inc(tenant_stats.shed)

    def observe_middleware(self, stats: Mapping[str, Mapping[str, int]]) -> None:
        """Fold the gateway pipeline's per-stage counters in (run end, once).

        ``stats`` is :meth:`repro.gateway.MiddlewarePipeline.stats` — stage
        name to its event counters (hits/misses, parked/fanned_out, fired/
        won, rejected...).  Each becomes one labelled child of a single
        counter family, so Prometheus scrapes and JSONL consumers see every
        stage the same way.
        """
        if not stats:
            return
        events = self.registry.counter(
            "repro_middleware_events_total",
            help="Gateway middleware events, by stage and event type.",
            labels=self._region_labels + ("stage", "event"),
        )
        for stage, counters in stats.items():
            for event, count in counters.items():
                self._labelled(events, stage=stage, event=event).inc(count)
            if self.events is not None:
                payload: Dict[str, object] = {"event": "middleware", "stage": stage}
                payload.update(counters)
                self._emit(payload)

    def observe_memory(
        self, tenants: Mapping[str, "tuple[int, float, float]"]
    ) -> None:
        """Fold per-tenant memory economics in (run end, memory runs only).

        ``tenants`` maps tenant name to ``(oom_evictions, rss_mb_seconds,
        cpu_seconds)``.  Only called when the memory model ran, and the
        gauge families are created here, so memory-free runs never grow
        their exposition.
        """
        if not tenants:
            return
        rss = self.registry.gauge(
            "repro_tenant_rss_mb_seconds",
            help="Integral of replica RSS over residency (MB x seconds).",
            labels=self._region_labels + ("tenant",),
        )
        cpu = self.registry.gauge(
            "repro_tenant_cpu_seconds",
            help="Replica-busy CPU seconds (hedged losers included).",
            labels=self._region_labels + ("tenant",),
        )
        for tenant, (evictions, rss_mb_seconds, cpu_seconds) in tenants.items():
            self._labelled(rss, tenant=tenant).set(rss_mb_seconds)
            self._labelled(cpu, tenant=tenant).set(cpu_seconds)
            if self.events is not None:
                self._emit(
                    {
                        "event": "memory",
                        "tenant": tenant,
                        "oom_evictions": evictions,
                        "rss_mb_seconds": round(rss_mb_seconds, 9),
                        "cpu_seconds": round(cpu_seconds, 9),
                    }
                )

    def observe_node_usage(self, nodes: Mapping[str, object]) -> None:
        """Fold per-node ledger rollups into node gauges (run end, once)."""
        charges = self.registry.gauge(
            "repro_node_charges",
            help="Cost-ledger entries charged on the node.",
            labels=self._region_labels + ("node",),
        )
        seconds = self.registry.gauge(
            "repro_node_charged_seconds",
            help="Total simulated seconds charged on the node's ledger shard.",
            labels=self._region_labels + ("node",),
        )
        cpu = self.registry.gauge(
            "repro_node_cpu_seconds",
            help="CPU seconds charged on the node.",
            labels=self._region_labels + ("node",),
        )
        memory = self.registry.gauge(
            "repro_node_peak_memory_mb",
            help="Peak memory charged on the node, in MiB.",
            labels=self._region_labels + ("node",),
        )
        for name, usage in nodes.items():
            self._labelled(charges, node=name).set(usage.charges)
            self._labelled(seconds, node=name).set(usage.total_seconds)
            self._labelled(cpu, node=name).set(usage.cpu_seconds)
            self._labelled(memory, node=name).set(usage.peak_memory_mb)
