"""A streaming metrics registry: counters, gauges and sketch-backed summaries.

The registry is the engine-owned (never process-global) home for everything
an operator would scrape during a run: request counters by outcome, replica
and queue-depth gauges, and latency summaries whose percentiles come from
:class:`~repro.obs.sketch.QuantileSketch` — so a million-request run costs
the same registry memory as a hundred-request one.

The model follows the Prometheus client conventions without importing
anything: a *family* owns a metric name, help text and label names; each
distinct label-value combination materialises one *child* holding the actual
state.  ``registry.counter("repro_requests_total", labels=("tenant",
"outcome")).labels(tenant="a", outcome="completed").inc()`` is the whole
API.  Children are created lazily and iterate in creation order, so a seeded
run always renders byte-identical exposition text.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.obs.sketch import QuantileSketch


class MetricsError(ValueError):
    """Raised for malformed metric names, labels or kind mismatches."""


class Counter:
    """A monotonically increasing count (requests served, cold starts paid)."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters only go up; use a gauge for %r" % amount)
        self.value += amount


class Gauge:
    """A value that goes both ways (replica count, queue depth)."""

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Summary:
    """A streaming distribution (Prometheus summary type, P² quantiles)."""

    def __init__(self) -> None:
        self.sketch = QuantileSketch()

    def observe(self, value: float) -> None:
        self.sketch.observe(value)

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def sum(self) -> float:
        return self.sketch.sum


_KINDS = {"counter": Counter, "gauge": Gauge, "summary": Summary}


class MetricFamily:
    """One metric name with its labelled children."""

    def __init__(self, name: str, kind: str, help: str = "", labels: Sequence[str] = ()) -> None:
        if kind not in _KINDS:
            raise MetricsError("unknown metric kind %r" % kind)
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise MetricsError("invalid metric name %r" % name)
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(labels)
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **label_values: str):
        """The child for one label-value combination (created on first use)."""
        if set(label_values) != set(self.label_names):
            raise MetricsError(
                "metric %r takes labels %s, got %s"
                % (self.name, list(self.label_names), sorted(label_values))
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = _KINDS[self.kind]()
            self._children[key] = child
        return child

    def child(self):
        """The single unlabelled child (for families declared without labels)."""
        if self.label_names:
            raise MetricsError("metric %r requires labels %s" % (self.name, list(self.label_names)))
        return self.labels()

    def children(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs in creation order."""
        return iter(self._children.items())

    def __len__(self) -> int:
        return len(self._children)


class MetricsRegistry:
    """A collection of metric families, rendered by the exporters.

    Families register on first request and are returned on every later one
    (kind and label names must agree — the same name cannot silently be a
    counter in one module and a gauge in another).
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, name: str, kind: str, help: str, labels: Sequence[str]) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise MetricsError(
                    "metric %r is a %s, requested as %s" % (name, existing.kind, kind)
                )
            if existing.label_names != tuple(labels):
                raise MetricsError(
                    "metric %r has labels %s, requested with %s"
                    % (name, list(existing.label_names), list(labels))
                )
            return existing
        family = MetricFamily(name, kind, help=help, labels=labels)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def summary(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "summary", help, labels)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        """Every family in registration order (exposition order)."""
        return list(self._families.values())

    def value(self, name: str, **label_values: str) -> float:
        """Convenience read of one counter/gauge child's current value."""
        family = self._families.get(name)
        if family is None:
            raise MetricsError("no metric named %r" % name)
        child = family.labels(**label_values)
        if isinstance(child, Summary):
            raise MetricsError("metric %r is a summary; read its sketch instead" % name)
        return child.value

    def as_dict(self) -> Dict[str, Dict[Tuple[str, ...], float]]:
        """A plain snapshot {name: {label values: value}} for tests/tools.

        Summaries snapshot their count (the scalar that is always exact).
        """
        out: Dict[str, Dict[Tuple[str, ...], float]] = {}
        for family in self._families.values():
            series: Dict[Tuple[str, ...], float] = {}
            for key, child in family.children():
                series[key] = float(child.count if isinstance(child, Summary) else child.value)
            out[family.name] = series
        return out
