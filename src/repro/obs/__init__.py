"""Observability for the reproduction: spans, streaming metrics, exporters.

The package threads one telemetry layer through the whole request path:

* :mod:`repro.obs.sketch` — streaming quantile sketches (percentiles
  without retained samples): a log-bucketed histogram with bounded relative
  error, plus a P² estimator for single quantiles.
* :mod:`repro.obs.registry` — an engine-owned metrics registry of counters,
  gauges and sketch-backed summaries.
* :mod:`repro.obs.spans` — request-lifecycle traces (queue / cold-start /
  service stage decomposition) and the latency-waterfall rollup.
* :mod:`repro.obs.streaming` — constant-memory traffic summaries for the
  engine's ``retain_records=False`` mode.
* :mod:`repro.obs.exporters` — Prometheus text exposition and JSONL events.
* :mod:`repro.obs.progress` — the periodic heartbeat reporter.
* :mod:`repro.obs.telemetry` — the facade the traffic engine calls.
"""

from repro.obs.exporters import (
    JsonlEventWriter,
    parse_prometheus,
    read_jsonl,
    render_prometheus,
    write_prometheus,
)
from repro.obs.progress import ProgressReporter
from repro.obs.registry import MetricsError, MetricsRegistry
from repro.obs.sketch import LogHistogram, P2Quantile, QuantileSketch, SketchError
from repro.obs.spans import (
    STAGES,
    RequestTrace,
    SpanError,
    TraceLog,
    WaterfallRow,
    waterfall_from_records,
)
from repro.obs.streaming import StreamingTrafficStats
from repro.obs.telemetry import Telemetry

__all__ = [
    "JsonlEventWriter",
    "LogHistogram",
    "MetricsError",
    "MetricsRegistry",
    "P2Quantile",
    "ProgressReporter",
    "QuantileSketch",
    "RequestTrace",
    "STAGES",
    "SketchError",
    "SpanError",
    "StreamingTrafficStats",
    "Telemetry",
    "TraceLog",
    "WaterfallRow",
    "parse_prometheus",
    "read_jsonl",
    "render_prometheus",
    "waterfall_from_records",
    "write_prometheus",
]
