"""Telemetry exposition: Prometheus text snapshots and JSONL event streams.

Two standard formats turn an engine-owned registry into something external
tooling understands:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4).  Counters and gauges render one sample per labelled
  child; sketch-backed summaries render as the Prometheus ``summary`` type
  (``{quantile="0.5"}`` samples plus ``_sum``/``_count``), which is exactly
  what a quantile sketch is.  Output order is registration order, so a
  seeded run snapshots byte-identically.
* :class:`JsonlEventWriter` — one JSON object per line, written as events
  happen (run start, every request's outcome with its stage durations,
  every scaling action, run end).  Keys are sorted and timestamps are
  simulated, so the stream is deterministic and diffable across runs.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.registry import Counter, Gauge, MetricFamily, MetricsRegistry, Summary


class ExporterError(ValueError):
    """Raised for invalid exposition requests."""


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _label_block(names: Tuple[str, ...], values: Tuple[str, ...], extra: str = "") -> str:
    pairs = [
        '%s="%s"' % (name, _escape_label_value(value))
        for name, value in zip(names, values)
    ]
    if extra:
        pairs.append(extra)
    return "{%s}" % ",".join(pairs) if pairs else ""


def _format_value(value: float) -> str:
    # Integral values print as integers (the conventional exposition style).
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (one scrape's worth)."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append("# HELP %s %s" % (family.name, family.help))
        lines.append("# TYPE %s %s" % (family.name, family.kind))
        for values, child in family.children():
            block = _label_block(family.label_names, values)
            if isinstance(child, (Counter, Gauge)):
                lines.append("%s%s %s" % (family.name, block, _format_value(child.value)))
            elif isinstance(child, Summary):
                for q, estimate in child.sketch.quantiles().items():
                    lines.append(
                        "%s%s %s"
                        % (
                            family.name,
                            _label_block(
                                family.label_names, values, 'quantile="%g"' % q
                            ),
                            _format_value(estimate),
                        )
                    )
                lines.append("%s_sum%s %s" % (family.name, block, _format_value(child.sum)))
                lines.append("%s_count%s %s" % (family.name, block, _format_value(child.count)))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str) -> str:
    """Write one exposition snapshot to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(registry))
    return path


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse exposition text back to ``{metric: {label block: value}}``.

    A convenience for tests and quick diffing — not a full Prometheus
    parser, but an exact inverse for what :func:`render_prometheus` emits.
    """
    out: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_block, value = line.rsplit(" ", 1)
        if "{" in name_block:
            name, block = name_block.split("{", 1)
            block = "{" + block
        else:
            name, block = name_block, ""
        out.setdefault(name, {})[block] = float(value)
    return out


class JsonlEventWriter:
    """A streaming JSONL sink: ``emit`` one structured event per line.

    Accepts a path (opened lazily, closed by :meth:`close` / context exit)
    or an already-open text handle (left open — the caller owns it).
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._handle: Optional[IO[str]] = open(target, "w", encoding="utf-8")
            self._owns = True
            self.path: Optional[str] = target
        else:
            self._handle = target
            self._owns = False
            self.path = getattr(target, "name", None)
        self.events_written = 0

    def emit(self, event: Dict[str, object]) -> None:
        if self._handle is None:
            raise ExporterError("event writer is closed")
        self._handle.write(json.dumps(event, sort_keys=True))
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._handle is not None and self._owns:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "JsonlEventWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a JSONL event stream back into a list of dicts (test helper)."""
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
