"""Streaming quantile sketches: percentiles without retaining the samples.

A sustained-load run at production scale produces millions of per-request
latencies; keeping them all in a list just to read off p99 at the end is the
memory hog the ROADMAP wants gone.  Two constant-memory estimators replace
the list:

* :class:`P2Quantile` — the P² algorithm (Jain & Chlamtac, CACM 1985):
  one quantile tracked online with **five markers**, updated per observation
  with a piecewise-parabolic interpolation.  A few hundred bytes, exact
  until the sixth sample, and within a fraction of a percent on i.i.d.
  streams — but markers seeded by an unrepresentative prefix (a cold-start
  transient, say) recover only O(n) slowly, so it is the wrong primary
  estimator for *arrival-ordered* traffic, whose latencies are strongly
  autocorrelated (queues build and drain in waves).
* :class:`LogHistogram` — fixed-size log-spaced buckets (the HDR-histogram
  idea): every observation lands in the bucket whose bounds are within a
  fixed *relative* growth factor of each other, so any quantile reads back
  within ``sqrt(growth) - 1`` relative error (≈0.4% at the default growth)
  regardless of sample order, autocorrelation, or distribution shape.

:class:`QuantileSketch` — the summary object everything else consumes —
uses the histogram, because the engine's sketch mode
(``TrafficConfig.retain_records=False``) feeds it latencies in arrival
order and the ``benchmarks/test_obs_overhead.py`` gate pins its
p50/p95/p99 to within 1% of the exact order statistics on a 100k-request
run.  P² remains the right tool for tracking a *single* arbitrary quantile
of a well-mixed stream in O(1) memory and is exported alongside.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.metrics.stats import LatencySummary, percentile


class SketchError(ValueError):
    """Raised for invalid sketch parameters."""


class P2Quantile:
    """One streaming quantile estimate via the P² algorithm.

    Five marker heights track (min, two interpolation points, the target
    quantile, max); positions drift toward their desired ranks as samples
    arrive, adjusted by a parabolic fit (falling back to linear when the
    parabola would break marker order).  Until five samples exist the
    estimate is the exact percentile of the buffered observations.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise SketchError("quantile must be in (0, 1), got %r" % q)
        self.q = q
        self._count = 0
        self._heights: List[float] = []           # marker heights q0..q4
        self._positions: List[float] = []         # actual marker positions n_i
        self._desired: List[float] = []           # desired positions n'_i
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    @property
    def count(self) -> int:
        return self._count

    def add(self, value: float) -> None:
        """Fold one observation into the sketch."""
        self._count += 1
        if self._count <= 5:
            self._heights.append(float(value))
            self._heights.sort()
            if self._count == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
            return

        heights, positions = self._heights, self._positions
        # Which cell the observation lands in; the extremes clamp to the
        # outer markers, which always track the running min and max.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]

        # Nudge each interior marker toward its desired position.
        for index in range(1, 4):
            delta = self._desired[index] - positions[index]
            if (delta >= 1.0 and positions[index + 1] - positions[index] > 1.0) or (
                delta <= -1.0 and positions[index - 1] - positions[index] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """The current quantile estimate (0.0 before any sample)."""
        if self._count == 0:
            return 0.0
        if self._count <= 5:
            return percentile(self._heights, self.q * 100.0)
        return self._heights[2]


class LogHistogram:
    """Log-spaced bucket counts: any quantile within a fixed relative error.

    Bucket ``i`` covers ``[floor * growth**(i-1), floor * growth**i)``; an
    observation costs one ``log`` and one increment, and a quantile read
    returns the geometric midpoint of the bucket holding the target rank —
    off by at most ``sqrt(growth) - 1`` relative (≈0.4% at the default
    growth of 1.008).  Values below ``floor`` collapse into the first
    bucket (for latencies, sub-nanosecond — exactly where relative error
    stops mattering); values beyond the last bucket clamp into it, and the
    exact running min/max bound every answer, so the extremes never drift.
    """

    def __init__(self, floor: float = 1e-9, growth: float = 1.008, buckets: int = 4096) -> None:
        if floor <= 0.0:
            raise SketchError("histogram floor must be positive, got %r" % floor)
        if growth <= 1.0:
            raise SketchError("histogram growth must exceed 1, got %r" % growth)
        if buckets < 2:
            raise SketchError("histogram needs at least 2 buckets, got %r" % buckets)
        self.floor = floor
        self.growth = growth
        self._counts = [0] * buckets
        self._inv_log_growth = 1.0 / math.log(growth)
        self._log_floor = math.log(floor)
        self._count = 0
        self._min = 0.0
        self._max = 0.0

    @property
    def count(self) -> int:
        return self._count

    def _index(self, value: float) -> int:
        if value < self.floor:
            return 0
        index = int((math.log(value) - self._log_floor) * self._inv_log_growth) + 1
        return min(index, len(self._counts) - 1)

    def add(self, value: float) -> None:
        value = float(value)
        if self._count == 0:
            self._min = self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._count += 1
        # _index() unrolled: this method runs a dozen times per simulated
        # request, and the extra frame per observation is measurable there.
        counts = self._counts
        if value < self.floor:
            index = 0
        else:
            index = int((math.log(value) - self._log_floor) * self._inv_log_growth) + 1
            last = len(counts) - 1
            if index > last:
                index = last
        counts[index] += 1

    def clone(self) -> "LogHistogram":
        """An independent copy with identical contents (copy-on-write forks)."""
        other = LogHistogram(
            floor=self.floor, growth=self.growth, buckets=len(self._counts)
        )
        other._counts = list(self._counts)
        other._count = self._count
        other._min = self._min
        other._max = self._max
        return other

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (0.0 before any sample)."""
        if not 0.0 < q < 1.0:
            raise SketchError("quantile must be in (0, 1), got %r" % q)
        if self._count == 0:
            return 0.0
        rank = q * (self._count - 1) + 1.0  # same convention as stats.percentile
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                if index == 0:
                    estimate = self._min
                else:
                    # Geometric midpoint of [floor*g^(i-1), floor*g^i).
                    estimate = self.floor * self.growth ** (index - 0.5)
                return min(max(estimate, self._min), self._max)
        return self._max


class QuantileSketch:
    """A full streaming distribution summary: p50/p95/p99, mean, min, max.

    The streaming replacement for ``LatencySummary.from_samples`` over a
    retained sample list: feed observations one at a time, read a
    :class:`~repro.metrics.stats.LatencySummary` off at any point.  One
    log-bucketed histogram plus four scalars — constant memory at any
    sample count, and (unlike P²) insensitive to the heavy autocorrelation
    of arrival-ordered latency streams.
    """

    #: Quantiles every summary/exposition prints (any (0, 1) quantile works).
    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self) -> None:
        self._histogram = LogHistogram()
        self._sum = 0.0

    @property
    def count(self) -> int:
        return self._histogram.count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else 0.0

    @property
    def max(self) -> float:
        return self._histogram._max

    @property
    def min(self) -> float:
        return self._histogram._min

    def observe(self, value: float) -> None:
        self._sum += float(value)
        self._histogram.add(value)

    def observe_many(self, values: Sequence[float]) -> None:
        for value in values:
            self.observe(value)

    def clone(self) -> "QuantileSketch":
        """An independent copy with identical contents (copy-on-write forks)."""
        other = QuantileSketch()
        other._histogram = self._histogram.clone()
        other._sum = self._sum
        return other

    def quantile(self, q: float) -> float:
        """The estimate for any quantile in (0, 1)."""
        return self._histogram.quantile(q)

    def quantiles(self) -> Dict[float, float]:
        return {q: self._histogram.quantile(q) for q in self.QUANTILES}

    def summary(self) -> LatencySummary:
        """Collapse the sketch to the same shape record-based rollups use."""
        if self.count == 0:
            return LatencySummary.empty()
        return LatencySummary(
            count=self.count,
            mean_s=self.mean,
            p50_s=self.quantile(0.5),
            p95_s=self.quantile(0.95),
            p99_s=self.quantile(0.99),
            max_s=self.max,
        )
