"""Entry point: ``python -m repro.experiments`` prints all reproduced figures."""

from repro.experiments.runner import main

main()
