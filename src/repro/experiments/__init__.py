"""Experiment harness: one module per figure of the paper's evaluation.

Each ``run_figX`` function rebuilds the corresponding experiment from scratch
(workload, environment, sweep), returns a
:class:`~repro.experiments.results.FigureResult` with the same panels/series
the paper plots, and can render itself as a plain-text table.  The benchmark
suite under ``benchmarks/`` simply calls these functions.
"""

from repro.experiments.results import FigureResult
from repro.experiments.environment import (
    INTER_NODE_MODES,
    INTRA_NODE_MODES,
    TransferSetup,
    build_fanout_setup,
    build_pair_setup,
)
from repro.experiments.harness import measure_fanout, measure_pair, sweep_pair
from repro.experiments.fig2 import run_fig2a, run_fig2b
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.runner import run_all
from repro.experiments.claims import ClaimCheck, evaluate_claims, render_claims
from repro.experiments.sensitivity import (
    SensitivityResult,
    default_sensitivity_suite,
    sweep_parameter,
)

__all__ = [
    "ClaimCheck",
    "evaluate_claims",
    "render_claims",
    "SensitivityResult",
    "default_sensitivity_suite",
    "sweep_parameter",
    "FigureResult",
    "TransferSetup",
    "INTRA_NODE_MODES",
    "INTER_NODE_MODES",
    "build_pair_setup",
    "build_fanout_setup",
    "measure_pair",
    "measure_fanout",
    "sweep_pair",
    "run_fig2a",
    "run_fig2b",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_all",
]
