"""Measurement harness: run setups, aggregate repetitions, build sweeps.

The paper executes every configuration 10 times and reports the mean
(Sec. 6.2).  The reproduction is deterministic, so the default repetition
count is small; it is kept as a parameter so stability can still be checked.
Every repetition uses a freshly built environment — nothing is shared between
runs.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.environment import TransferSetup, build_fanout_setup, build_pair_setup
from repro.metrics.collector import AggregateMetrics, aggregate_samples
from repro.metrics.records import TransferMetrics
from repro.platform.invoker import WorkflowResult
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.workloads.generators import make_payload


class HarnessError(RuntimeError):
    """Raised for invalid harness parameters."""


@dataclass(frozen=True)
class FanoutAggregate:
    """Aggregated measurements of a fan-out workflow.

    Latency is the mean per-branch completion time (what one request sees);
    throughput counts all branches completed over the workflow makespan; CPU,
    serialization and memory are totals across branches.
    """

    mode: str
    degree: int
    payload_bytes: int
    mean_branch_latency_s: float
    makespan_s: float
    serialization_s_total: float
    wasm_io_s_total: float
    cpu_user_s_total: float
    cpu_kernel_s_total: float
    peak_memory_mb: float

    @property
    def throughput_rps(self) -> float:
        if self.makespan_s <= 0:
            return float("inf")
        return self.degree / self.makespan_s

    @property
    def serialization_throughput_rps(self) -> float:
        if self.serialization_s_total <= 0:
            return float("inf")
        return self.degree / self.serialization_s_total

    @property
    def cpu_total_s(self) -> float:
        return self.cpu_user_s_total + self.cpu_kernel_s_total


def run_setup(setup: TransferSetup, payload_mb: float, real_payload: bool = False) -> WorkflowResult:
    """Execute the setup's workflow once with a payload of ``payload_mb``."""
    payload = make_payload(payload_mb, real=real_payload)
    return setup.invoker.invoke(setup.workflow, payload)


def measure_pair(
    mode: str,
    payload_mb: float,
    internode: bool = False,
    repetitions: int = 1,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    real_payload: bool = False,
) -> AggregateMetrics:
    """Mean metrics for a chained a->b transfer in ``mode``."""
    if repetitions < 1:
        raise HarnessError("repetitions must be >= 1")
    samples: List[TransferMetrics] = []
    for _ in range(repetitions):
        setup = build_pair_setup(mode, internode=internode, cost_model=cost_model)
        result = run_setup(setup, payload_mb, real_payload=real_payload)
        samples.append(result.aggregate)
    return aggregate_samples(samples)


def measure_fanout(
    mode: str,
    degree: int,
    payload_mb: float,
    internode: bool = False,
    repetitions: int = 1,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> FanoutAggregate:
    """Aggregated metrics for a fan-out of ``degree`` transfers in ``mode``."""
    if repetitions < 1:
        raise HarnessError("repetitions must be >= 1")
    results: List[WorkflowResult] = []
    for _ in range(repetitions):
        setup = build_fanout_setup(mode, degree=degree, internode=internode, cost_model=cost_model)
        results.append(run_setup(setup, payload_mb))
    return FanoutAggregate(
        mode=mode,
        degree=degree,
        payload_bytes=results[0].aggregate.payload_bytes,
        mean_branch_latency_s=statistics.fmean(r.mean_branch_latency_s for r in results),
        makespan_s=statistics.fmean(r.total_latency_s for r in results),
        serialization_s_total=statistics.fmean(r.aggregate.serialization_s for r in results),
        wasm_io_s_total=statistics.fmean(r.aggregate.wasm_io_s for r in results),
        cpu_user_s_total=statistics.fmean(r.aggregate.cpu_user_s for r in results),
        cpu_kernel_s_total=statistics.fmean(r.aggregate.cpu_kernel_s for r in results),
        peak_memory_mb=statistics.fmean(r.aggregate.peak_memory_mb for r in results),
    )


def sweep_pair(
    modes: Sequence[str],
    sizes_mb: Sequence[float],
    internode: bool = False,
    repetitions: int = 1,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Dict[str, Dict[float, AggregateMetrics]]:
    """Run the payload-size sweep for every mode; keyed by mode then size."""
    results: Dict[str, Dict[float, AggregateMetrics]] = {}
    for mode in modes:
        per_size: Dict[float, AggregateMetrics] = {}
        for size in sizes_mb:
            per_size[size] = measure_pair(
                mode,
                payload_mb=size,
                internode=internode,
                repetitions=repetitions,
                cost_model=cost_model,
            )
        results[mode] = per_size
    return results


def sweep_fanout(
    modes: Sequence[str],
    degrees: Sequence[int],
    payload_mb: float,
    internode: bool = False,
    repetitions: int = 1,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Dict[str, Dict[int, FanoutAggregate]]:
    """Run the fan-out sweep for every mode; keyed by mode then degree."""
    results: Dict[str, Dict[int, FanoutAggregate]] = {}
    for mode in modes:
        per_degree: Dict[int, FanoutAggregate] = {}
        for degree in degrees:
            per_degree[degree] = measure_fanout(
                mode,
                degree=degree,
                payload_mb=payload_mb,
                internode=internode,
                repetitions=repetitions,
                cost_model=cost_model,
            )
        results[mode] = per_degree
    return results
