"""Figure results: the series each experiment produces.

A :class:`FigureResult` mirrors one figure of the paper: an x axis (payload
size, fan-out degree, or a categorical axis), a set of panels (total latency,
throughput, CPU, RAM, ...), and for each panel one series per runtime.
EXPERIMENTS.md is generated from these objects, and the benchmark suite
asserts the paper's headline ratios against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

from repro.metrics.report import format_figure_result

Number = Union[int, float]


class ResultError(KeyError):
    """Raised when a panel or series is missing."""


@dataclass
class FigureResult:
    """All panels of one reproduced figure."""

    figure: str
    title: str
    x_label: str
    x_values: List[Number]
    panels: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    notes: str = ""

    def add_point(self, panel: str, series: str, value: float) -> None:
        """Append one value to ``series`` in ``panel`` (in x order)."""
        self.panels.setdefault(panel, {}).setdefault(series, []).append(value)

    def panel(self, name: str) -> Dict[str, List[float]]:
        if name not in self.panels:
            raise ResultError(
                "figure %s has no panel %r (available: %s)"
                % (self.figure, name, ", ".join(sorted(self.panels)))
            )
        return self.panels[name]

    def series(self, panel: str, series: str) -> List[float]:
        values = self.panel(panel)
        if series not in values:
            raise ResultError(
                "panel %r has no series %r (available: %s)"
                % (panel, series, ", ".join(sorted(values)))
            )
        return values[series]

    def value(self, panel: str, series: str, x: Number) -> float:
        """The value of one series at one x position."""
        if x not in self.x_values:
            raise ResultError("x=%r is not part of figure %s" % (x, self.figure))
        return self.series(panel, series)[self.x_values.index(x)]

    @property
    def modes(self) -> List[str]:
        names: List[str] = []
        for series_map in self.panels.values():
            for name in series_map:
                if name not in names:
                    names.append(name)
        return names

    def to_text(self) -> str:
        """Render every panel as a fixed-width table."""
        blocks: List[str] = ["%s — %s" % (self.figure, self.title)]
        if self.notes:
            blocks.append(self.notes)
        for panel_name in sorted(self.panels):
            blocks.append(
                format_figure_result(
                    title="[%s] %s" % (self.figure, panel_name),
                    x_label=self.x_label,
                    x_values=self.x_values,
                    series=self.panels[panel_name],
                )
            )
        return "\n\n".join(blocks)
