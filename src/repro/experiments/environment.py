"""Experiment environments: clusters, deployments and channels per runtime.

Every evaluated configuration is described by a mode label:

====================  ==========================================================
``roadrunner-user``    two Wasm functions sharing one VM, user-space channel
``roadrunner-kernel``  two Wasm functions in separate VMs on one node, IPC
``roadrunner-network`` two Wasm functions on different nodes, virtual data hose
``runc-http``          two RunC containers exchanging serialized HTTP payloads
``wasmedge-http``      two WasmEdge functions exchanging serialized HTTP payloads
====================  ==========================================================

``build_pair_setup`` / ``build_fanout_setup`` assemble a fresh, isolated
environment (cluster, ledger, deployments, channel, workflow, invoker) for one
measurement so repetitions never share state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.runc_http import RunCHttpChannel
from repro.baselines.wasmedge_http import WasmEdgeHttpChannel
from repro.core.config import RoadrunnerConfig
from repro.core.kernel_space import KernelSpaceChannel
from repro.core.network import NetworkChannel
from repro.core.user_space import UserSpaceChannel
from repro.platform.channel import DataPassingChannel
from repro.platform.cluster import Cluster
from repro.platform.deployment import DeployedFunction
from repro.platform.function import FunctionSpec
from repro.platform.invoker import Invoker
from repro.platform.orchestrator import Orchestrator
from repro.platform.workflow import FanOutWorkflow, SequenceWorkflow, Workflow
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.wasm.runtime import RuntimeKind


class EnvironmentError_(ValueError):
    """Raised for unknown modes or invalid mode/topology combinations."""


#: Modes evaluated intra-node (Figs. 7 and 9).
INTRA_NODE_MODES: Tuple[str, ...] = (
    "roadrunner-user",
    "roadrunner-kernel",
    "runc-http",
    "wasmedge-http",
)

#: Modes evaluated inter-node (Figs. 6, 8 and 10).
INTER_NODE_MODES: Tuple[str, ...] = (
    "roadrunner-network",
    "runc-http",
    "wasmedge-http",
)

_ROADRUNNER_MODES = {"roadrunner-user", "roadrunner-kernel", "roadrunner-network"}
_ALL_MODES = set(INTRA_NODE_MODES) | set(INTER_NODE_MODES)


@dataclass
class TransferSetup:
    """One fully assembled measurement environment."""

    mode: str
    cluster: Cluster
    orchestrator: Orchestrator
    channel: DataPassingChannel
    workflow: Workflow
    source: DeployedFunction
    targets: List[DeployedFunction]
    invoker: Invoker

    @property
    def target(self) -> DeployedFunction:
        return self.targets[0]

    @property
    def cores(self) -> int:
        return self.cluster.node(self.source.node_name).cores


def _validate_mode(mode: str, internode: bool) -> None:
    if mode not in _ALL_MODES:
        raise EnvironmentError_("unknown mode %r (known: %s)" % (mode, ", ".join(sorted(_ALL_MODES))))
    if internode and mode in ("roadrunner-user", "roadrunner-kernel"):
        raise EnvironmentError_("mode %r is intra-node only" % mode)
    if not internode and mode == "roadrunner-network":
        raise EnvironmentError_("mode %r is inter-node only" % mode)


def _runtime_kind(mode: str) -> RuntimeKind:
    if mode == "runc-http":
        return RuntimeKind.RUNC
    if mode == "wasmedge-http":
        return RuntimeKind.WASMEDGE
    return RuntimeKind.ROADRUNNER


def _make_cluster(internode: bool, cost_model: CostModel) -> Cluster:
    if internode:
        return Cluster.edge_cloud_pair(cost_model=cost_model)
    return Cluster.single_node(cost_model=cost_model)


def _make_channel(
    mode: str, cluster: Cluster, config: Optional[RoadrunnerConfig]
) -> DataPassingChannel:
    if mode == "roadrunner-user":
        return UserSpaceChannel(cluster, config)
    if mode == "roadrunner-kernel":
        return KernelSpaceChannel(cluster, config)
    if mode == "roadrunner-network":
        return NetworkChannel(cluster, config)
    if mode == "runc-http":
        return RunCHttpChannel(cluster)
    return WasmEdgeHttpChannel(cluster)


def _specs(mode: str, names: Sequence[str]) -> List[FunctionSpec]:
    kind = _runtime_kind(mode)
    requires_wasi = kind is not RuntimeKind.RUNC
    return [
        FunctionSpec(
            name=name,
            runtime=kind,
            requires_wasi=requires_wasi,
            workflow="pipeline",
            tenant="tenant-1",
        )
        for name in names
    ]


def build_pair_setup(
    mode: str,
    internode: bool = False,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    config: Optional[RoadrunnerConfig] = None,
    materialize: bool = False,
) -> TransferSetup:
    """A chained two-function workflow (function a -> function b)."""
    _validate_mode(mode, internode)
    cluster = _make_cluster(internode, cost_model)
    orchestrator = Orchestrator(cluster)
    specs = _specs(mode, ["fn-a", "fn-b"])
    nodes = list(cluster.nodes)
    placement = {"fn-a": nodes[0], "fn-b": nodes[-1] if internode else nodes[0]}
    share_vm_key = "shared-vm" if mode == "roadrunner-user" else None
    deployments = orchestrator.deploy_all(
        specs, placement=placement, share_vm_key=share_vm_key, materialize=materialize
    )
    channel = _make_channel(mode, cluster, config)
    workflow = SequenceWorkflow(["fn-a", "fn-b"], name="chain-a-b")
    invoker = Invoker(orchestrator, channel)
    return TransferSetup(
        mode=mode,
        cluster=cluster,
        orchestrator=orchestrator,
        channel=channel,
        workflow=workflow,
        source=deployments[0],
        targets=[deployments[1]],
        invoker=invoker,
    )


def build_fanout_setup(
    mode: str,
    degree: int,
    internode: bool = False,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    config: Optional[RoadrunnerConfig] = None,
    materialize: bool = False,
) -> TransferSetup:
    """A fan-out workflow: function a feeding ``degree`` replicas of b."""
    if degree < 1:
        raise EnvironmentError_("fan-out degree must be >= 1")
    _validate_mode(mode, internode)
    cluster = _make_cluster(internode, cost_model)
    orchestrator = Orchestrator(cluster)
    target_names = ["fn-b-%d" % i for i in range(degree)]
    specs = _specs(mode, ["fn-a"] + target_names)
    nodes = list(cluster.nodes)
    target_node = nodes[-1] if internode else nodes[0]
    placement = {"fn-a": nodes[0]}
    placement.update({name: target_node for name in target_names})
    share_vm_key = "shared-vm" if mode == "roadrunner-user" else None
    deployments = orchestrator.deploy_all(
        specs, placement=placement, share_vm_key=share_vm_key, materialize=materialize
    )
    channel = _make_channel(mode, cluster, config)
    workflow = FanOutWorkflow(source="fn-a", targets=target_names, name="fan-out-%d" % degree)
    invoker = Invoker(orchestrator, channel)
    return TransferSetup(
        mode=mode,
        cluster=cluster,
        orchestrator=orchestrator,
        channel=channel,
        workflow=workflow,
        source=deployments[0],
        targets=deployments[1:],
        invoker=invoker,
    )
