"""Figure 2: the motivation experiments.

* (a) cold start and execution latency, and image sizes, for "Hello World"
  (no WASI) and "Resize Image" (WASI file access) packaged as a Docker
  container vs a Wasm binary;
* (b) the normalized transfer-vs-serialization breakdown for 1, 60 and
  100 MB payloads on the container and Wasm runtimes.
"""

from __future__ import annotations

from typing import Sequence

from repro.container.image import ContainerImage, WasmImage
from repro.container.oci import OciBundle
from repro.container.runc import RunCRuntime
from repro.experiments.harness import measure_pair
from repro.experiments.results import FigureResult
from repro.kernel.kernel import Kernel
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.ledger import CostLedger
from repro.wasm.module import WasmModule
from repro.wasm.runtime import WasmRuntime

#: Payload sizes of Fig. 2b (MB).
FIG2B_SIZES_MB: Sequence[int] = (1, 60, 100)

PANEL_COLD_START = "cold_start_s"
PANEL_EXECUTION = "execution_s"
PANEL_IMAGE_SIZE = "image_size_mb"
PANEL_BREAKDOWN = "normalized_breakdown_pct"

#: Size of the file the "Resize Image" function reads through the host.
_RESIZE_INPUT_BYTES = 5 * 1024 * 1024
#: Pure-compute time of the two workloads (identical across runtimes).
_HELLO_COMPUTE_S = 0.8e-3
_RESIZE_COMPUTE_S = 0.18


def _container_execution(cost_model: CostModel, reads_file: bool) -> float:
    """Execution latency of the workload in a RunC container."""
    seconds = _RESIZE_COMPUTE_S if reads_file else _HELLO_COMPUTE_S
    if reads_file:
        # read() of the input image: syscalls plus one kernel->user copy.
        seconds += cost_model.syscall_time(cost_model.syscall_count(_RESIZE_INPUT_BYTES))
        seconds += cost_model.user_kernel_copy_time(_RESIZE_INPUT_BYTES)
    return seconds


def _wasm_execution(cost_model: CostModel, reads_file: bool) -> float:
    """Execution latency of the workload in a Wasm VM.

    Without WASI the sandbox is slightly cheaper than a container (no OS-level
    process machinery on the hot path); with WASI every file read pays the
    host-call and VM-boundary-copy penalty on top of the kernel copy.
    """
    if reads_file:
        # Memory-bound image work runs at near-native speed inside Wasm; the
        # WASI file access is what adds time on top of the container path.
        seconds = _RESIZE_COMPUTE_S
    else:
        seconds = _HELLO_COMPUTE_S * 0.92
    if reads_file:
        chunk_calls = cost_model.syscall_count(_RESIZE_INPUT_BYTES)
        seconds += cost_model.syscall_time(chunk_calls)
        seconds += cost_model.user_kernel_copy_time(_RESIZE_INPUT_BYTES)
        seconds += chunk_calls * cost_model.wasi_call_overhead
        seconds += cost_model.wasm_io_time(_RESIZE_INPUT_BYTES)
    return seconds


def run_fig2a(cost_model: CostModel = DEFAULT_COST_MODEL) -> FigureResult:
    """Reproduce Fig. 2a: cold start, execution latency and image size."""
    ledger = CostLedger(name="fig2a")
    kernel = Kernel(ledger=ledger, cost_model=cost_model, node_name="motivation")
    runc = RunCRuntime(kernel=kernel, ledger=ledger, cost_model=cost_model)
    wasm = WasmRuntime(ledger=ledger, cost_model=cost_model)

    workloads = (
        ("Hello World", ContainerImage.hello_world(), WasmImage.hello_world(), False),
        ("Resize Image", ContainerImage.resize_image(), WasmImage.resize_image(), True),
    )
    result = FigureResult(
        figure="fig2a",
        title="Cold start and execution latency: containers vs Wasm",
        x_label="Function",
        x_values=[name for name, _, _, _ in workloads],
    )
    for _, container_image, wasm_image, reads_file in workloads:
        module = WasmModule(name=wasm_image.name, binary_size=wasm_image.size_bytes,
                            requires_wasi=reads_file)
        result.add_point(PANEL_COLD_START, "Cont", runc.cold_start_time(container_image))
        result.add_point(PANEL_COLD_START, "Wasm", wasm.cold_start_time(module))
        result.add_point(PANEL_EXECUTION, "Cont", _container_execution(cost_model, reads_file))
        result.add_point(PANEL_EXECUTION, "Wasm", _wasm_execution(cost_model, reads_file))
        result.add_point(PANEL_IMAGE_SIZE, "Cont", container_image.size_bytes / (1024.0 * 1024.0))
        result.add_point(PANEL_IMAGE_SIZE, "Wasm", wasm_image.size_bytes / (1024.0 * 1024.0))
    return result


def run_fig2b(
    sizes_mb: Sequence[int] = FIG2B_SIZES_MB,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> FigureResult:
    """Reproduce Fig. 2b: normalized transfer vs serialization share."""
    result = FigureResult(
        figure="fig2b",
        title="Normalized I/O breakdown: transfer vs serialization",
        x_label="Input Size (MB)",
        x_values=list(sizes_mb),
    )
    for size in sizes_mb:
        for label, mode in (("Cont", "runc-http"), ("Wasm", "wasmedge-http")):
            aggregate = measure_pair(mode, payload_mb=size, internode=False, cost_model=cost_model)
            total = aggregate.mean_latency_s
            serialization = aggregate.mean_serialization_s
            transfer = max(total - serialization, 0.0)
            if total <= 0:  # pragma: no cover - defensive
                continue
            result.add_point(PANEL_BREAKDOWN, "%s Transfer" % label, 100.0 * transfer / total)
            result.add_point(
                PANEL_BREAKDOWN, "%s Serialization" % label, 100.0 * serialization / total
            )
    return result
