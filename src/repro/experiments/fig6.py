"""Figure 6: inter-node transfer breakdown for a 100 MB payload.

Three panels:

* (a) latency components — transfer, serialization and Wasm VM I/O — for
  Roadrunner (RR), RunC (RC) and WasmEdge (W);
* (b) serialization overhead alone (log scale in the paper);
* (c) the normalized share of each component.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.harness import measure_pair
from repro.experiments.results import FigureResult
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.workloads.generators import BREAKDOWN_PAYLOAD_MB

#: Runtime axis of Fig. 6, using the paper's abbreviations.
FIG6_RUNTIMES = ("RR", "RC", "W")

_MODE_BY_RUNTIME = {
    "RR": "roadrunner-network",
    "RC": "runc-http",
    "W": "wasmedge-http",
}

PANEL_BREAKDOWN = "a_latency_breakdown_s"
PANEL_SERIALIZATION = "b_serialization_latency_s"
PANEL_NORMALIZED = "c_normalized_share_pct"


def run_fig6(
    payload_mb: float = BREAKDOWN_PAYLOAD_MB,
    repetitions: int = 1,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> FigureResult:
    """Reproduce Fig. 6 and return its three panels."""
    result = FigureResult(
        figure="fig6",
        title="Inter-node transfer breakdown for a %g MB payload" % payload_mb,
        x_label="Runtime",
        x_values=list(FIG6_RUNTIMES),
    )
    for runtime in FIG6_RUNTIMES:
        mode = _MODE_BY_RUNTIME[runtime]
        aggregate = measure_pair(
            mode,
            payload_mb=payload_mb,
            internode=True,
            repetitions=repetitions,
            cost_model=cost_model,
        )
        total = aggregate.mean_latency_s
        serialization = aggregate.mean_serialization_s
        wasm_io = aggregate.mean_wasm_io_s
        transfer = max(total - serialization - wasm_io, 0.0)
        result.add_point(PANEL_BREAKDOWN, "Transfer", transfer)
        result.add_point(PANEL_BREAKDOWN, "Serialization", serialization)
        result.add_point(PANEL_BREAKDOWN, "Wasm VM I/O", wasm_io)
        result.add_point(PANEL_BREAKDOWN, "Total", total)
        result.add_point(PANEL_SERIALIZATION, "Serialization", serialization)
        if total > 0:
            result.add_point(PANEL_NORMALIZED, "Transfer", 100.0 * transfer / total)
            result.add_point(PANEL_NORMALIZED, "Serialization", 100.0 * serialization / total)
            result.add_point(PANEL_NORMALIZED, "Wasm VM I/O", 100.0 * wasm_io / total)
        else:  # pragma: no cover - defensive
            result.add_point(PANEL_NORMALIZED, "Transfer", 0.0)
            result.add_point(PANEL_NORMALIZED, "Serialization", 0.0)
            result.add_point(PANEL_NORMALIZED, "Wasm VM I/O", 0.0)
    return result
