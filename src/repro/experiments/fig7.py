"""Figure 7: intra-node payload-size sweep (eight panels).

Chained functions a -> b on one node, payload sizes 1-500 MB, comparing
RoadRunner (User space), RoadRunner (Kernel space), RunC and Wasmedge on
total latency, throughput, serialization latency/throughput, total/user/
kernel CPU and RAM.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.environment import INTRA_NODE_MODES
from repro.experiments.harness import sweep_pair
from repro.experiments.panels import add_eight_panel_point
from repro.experiments.results import FigureResult
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.workloads.generators import payload_sweep_sizes_mb


def run_fig7(
    sizes_mb: Optional[Sequence[float]] = None,
    repetitions: int = 1,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    modes: Sequence[str] = INTRA_NODE_MODES,
) -> FigureResult:
    """Reproduce Fig. 7 and return its eight panels."""
    sizes = list(sizes_mb) if sizes_mb is not None else payload_sweep_sizes_mb()
    result = FigureResult(
        figure="fig7",
        title="Intra-node latency/throughput/resources for varying payload sizes",
        x_label="Input Size (MB)",
        x_values=list(sizes),
    )
    sweep = sweep_pair(modes, sizes, internode=False, repetitions=repetitions, cost_model=cost_model)
    cores = cost_model.cores_per_node
    for size in sizes:
        # CPU percentages are reported over a common measurement window: the
        # slowest runtime at this payload size.
        reference = max(sweep[mode][size].mean_latency_s for mode in modes)
        for mode in modes:
            add_eight_panel_point(result, mode, sweep[mode][size], cores, reference_wall_s=reference)
    return result
