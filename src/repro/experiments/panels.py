"""Shared panel definitions for the eight-panel sweep figures (7-10)."""

from __future__ import annotations

from typing import Dict

from repro.experiments.results import FigureResult
from repro.metrics.collector import AggregateMetrics

#: Mode label -> the series name the paper uses in its legends.
MODE_LABELS: Dict[str, str] = {
    "roadrunner-user": "RoadRunner (User space)",
    "roadrunner-kernel": "RoadRunner (Kernel space)",
    "roadrunner-network": "RoadRunner (Network)",
    "runc-http": "RunC",
    "wasmedge-http": "Wasmedge",
}

#: Panel keys, matching sub-figures (a) to (h) of Figs. 7-10.
PANEL_TOTAL_LATENCY = "a_total_latency_s"
PANEL_TOTAL_THROUGHPUT = "b_total_throughput_rps"
PANEL_SERIALIZATION_LATENCY = "c_serialization_latency_s"
PANEL_SERIALIZATION_THROUGHPUT = "d_serialization_throughput_rps"
PANEL_TOTAL_CPU = "e_total_cpu_pct"
PANEL_USER_CPU = "f_user_cpu_pct"
PANEL_KERNEL_CPU = "g_kernel_cpu_pct"
PANEL_RAM = "h_ram_mb"

EIGHT_PANELS = (
    PANEL_TOTAL_LATENCY,
    PANEL_TOTAL_THROUGHPUT,
    PANEL_SERIALIZATION_LATENCY,
    PANEL_SERIALIZATION_THROUGHPUT,
    PANEL_TOTAL_CPU,
    PANEL_USER_CPU,
    PANEL_KERNEL_CPU,
    PANEL_RAM,
)


def mode_label(mode: str) -> str:
    """The human-readable series name for a mode key."""
    return MODE_LABELS.get(mode, mode)


#: Cap for "infinite" serialization throughput of serialization-free modes;
#: the paper plots this panel on a log axis.
SERIALIZATION_RPS_CAP = 1.0e6


def _cpu_percent(cpu_seconds: float, reference_wall_s: float, cores: int) -> float:
    """CPU usage as a share of the shared measurement window.

    The paper samples each sandbox's cgroup over a common experiment window,
    so a runtime that finishes early and idles reports a low percentage.  The
    reference window is the slowest mode's latency at the same x value.
    """
    if reference_wall_s <= 0 or cores < 1:
        return 0.0
    return 100.0 * cpu_seconds / (reference_wall_s * cores)


def add_eight_panel_point(
    result: FigureResult,
    mode: str,
    aggregate: AggregateMetrics,
    cores: int,
    reference_wall_s: float = 0.0,
) -> None:
    """Append one sweep point (one x value, one mode) to all eight panels."""
    label = mode_label(mode)
    reference = reference_wall_s if reference_wall_s > 0 else aggregate.mean_latency_s
    serialization_rps = aggregate.mean_serialization_throughput_rps
    if serialization_rps == float("inf"):
        serialization_rps = SERIALIZATION_RPS_CAP
    result.add_point(PANEL_TOTAL_LATENCY, label, aggregate.mean_latency_s)
    result.add_point(PANEL_TOTAL_THROUGHPUT, label, aggregate.mean_throughput_rps)
    result.add_point(PANEL_SERIALIZATION_LATENCY, label, aggregate.mean_serialization_s)
    result.add_point(PANEL_SERIALIZATION_THROUGHPUT, label, serialization_rps)
    result.add_point(
        PANEL_TOTAL_CPU, label, _cpu_percent(aggregate.mean_cpu_total_s, reference, cores)
    )
    result.add_point(
        PANEL_USER_CPU, label, _cpu_percent(aggregate.mean_cpu_user_s, reference, cores)
    )
    result.add_point(
        PANEL_KERNEL_CPU, label, _cpu_percent(aggregate.mean_cpu_kernel_s, reference, cores)
    )
    result.add_point(PANEL_RAM, label, aggregate.mean_peak_memory_mb)


def add_fanout_panel_point(
    result: FigureResult,
    mode: str,
    aggregate,
    cores: int,
    reference_wall_s: float = 0.0,
) -> None:
    """Append one fan-out sweep point (a :class:`FanoutAggregate`) to all panels."""
    label = mode_label(mode)
    reference = reference_wall_s if reference_wall_s > 0 else aggregate.makespan_s
    serialization_rps = aggregate.serialization_throughput_rps
    if serialization_rps == float("inf"):
        serialization_rps = SERIALIZATION_RPS_CAP
    per_branch_serialization = (
        aggregate.serialization_s_total / aggregate.degree if aggregate.degree else 0.0
    )
    result.add_point(PANEL_TOTAL_LATENCY, label, aggregate.mean_branch_latency_s)
    result.add_point(PANEL_TOTAL_THROUGHPUT, label, aggregate.throughput_rps)
    result.add_point(PANEL_SERIALIZATION_LATENCY, label, per_branch_serialization)
    result.add_point(PANEL_SERIALIZATION_THROUGHPUT, label, serialization_rps)
    result.add_point(
        PANEL_TOTAL_CPU, label, _cpu_percent(aggregate.cpu_total_s, reference, cores)
    )
    result.add_point(
        PANEL_USER_CPU, label, _cpu_percent(aggregate.cpu_user_s_total, reference, cores)
    )
    result.add_point(
        PANEL_KERNEL_CPU, label, _cpu_percent(aggregate.cpu_kernel_s_total, reference, cores)
    )
    result.add_point(PANEL_RAM, label, aggregate.peak_memory_mb)
