"""Programmatic check of the paper's headline claims.

EXPERIMENTS.md is the narrative version; this module computes the same
paper-vs-measured comparison as data, so the CLI can print it and tests can
assert it.  Each claim records the paper's reported value, the measured value
from the reproduction, and whether the measured value satisfies a
conservative acceptance rule (same direction, at or beyond a lower bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.harness import measure_fanout, measure_pair
from repro.metrics.report import format_table, improvement_percent, speedup
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL


@dataclass(frozen=True)
class ClaimCheck:
    """One headline claim and how the reproduction fares against it."""

    claim_id: str
    description: str
    paper_value: str
    measured_value: str
    satisfied: bool


def _pct(value: float) -> str:
    return "%.1f%%" % value


def _x(value: float) -> str:
    return "%.1fx" % value


def evaluate_claims(
    payload_mb: float = 100,
    fanout_degree: int = 50,
    fanout_payload_mb: float = 10,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> List[ClaimCheck]:
    """Run the minimal experiments behind each headline claim and grade them."""
    checks: List[ClaimCheck] = []

    # Intra-node pair -----------------------------------------------------------
    rr_user = measure_pair("roadrunner-user", payload_mb, cost_model=cost_model)
    rr_kernel = measure_pair("roadrunner-kernel", payload_mb, cost_model=cost_model)
    runc = measure_pair("runc-http", payload_mb, cost_model=cost_model)
    wasm = measure_pair("wasmedge-http", payload_mb, cost_model=cost_model)

    user_vs_wasm = improvement_percent(wasm.mean_latency_s, rr_user.mean_latency_s)
    checks.append(ClaimCheck(
        "intra-user-vs-wasmedge",
        "Intra-node latency, Roadrunner (User space) vs WasmEdge",
        "-44% to -89%", "-" + _pct(user_vs_wasm), user_vs_wasm >= 44.0,
    ))
    user_vs_runc = improvement_percent(runc.mean_latency_s, rr_user.mean_latency_s)
    checks.append(ClaimCheck(
        "intra-user-vs-runc",
        "Intra-node latency, Roadrunner (User space) vs RunC",
        "-10% to -80%", "-" + _pct(user_vs_runc), user_vs_runc >= 10.0,
    ))
    kernel_vs_wasm = improvement_percent(wasm.mean_latency_s, rr_kernel.mean_latency_s)
    checks.append(ClaimCheck(
        "intra-kernel-vs-wasmedge",
        "Intra-node latency, Roadrunner (Kernel space) vs WasmEdge",
        "-76% to -83%", "-" + _pct(kernel_vs_wasm), kernel_vs_wasm >= 70.0,
    ))
    kernel_vs_runc = improvement_percent(runc.mean_latency_s, rr_kernel.mean_latency_s)
    checks.append(ClaimCheck(
        "intra-kernel-vs-runc",
        "Intra-node latency, Roadrunner (Kernel space) vs RunC",
        "up to -13%", "-" + _pct(kernel_vs_runc), kernel_vs_runc > 0.0,
    ))
    cpu_reduction = improvement_percent(wasm.mean_cpu_total_s, rr_user.mean_cpu_total_s)
    checks.append(ClaimCheck(
        "intra-cpu",
        "Intra-node CPU usage, Roadrunner vs WasmEdge",
        "up to -94%", "-" + _pct(cpu_reduction), cpu_reduction >= 80.0,
    ))
    ram_reduction = improvement_percent(wasm.mean_peak_memory_mb, rr_user.mean_peak_memory_mb)
    checks.append(ClaimCheck(
        "intra-ram",
        "Intra-node RAM usage, Roadrunner vs WasmEdge",
        "up to -50%", "-" + _pct(ram_reduction), ram_reduction >= 50.0,
    ))

    # Inter-node pair ---------------------------------------------------------------
    rr_net = measure_pair("roadrunner-network", payload_mb, internode=True, cost_model=cost_model)
    runc_net = measure_pair("runc-http", payload_mb, internode=True, cost_model=cost_model)
    wasm_net = measure_pair("wasmedge-http", payload_mb, internode=True, cost_model=cost_model)

    net_vs_wasm = improvement_percent(wasm_net.mean_latency_s, rr_net.mean_latency_s)
    checks.append(ClaimCheck(
        "inter-total-vs-wasmedge",
        "Inter-node total latency, Roadrunner vs WasmEdge",
        "-62%", "-" + _pct(net_vs_wasm), 45.0 <= net_vs_wasm <= 75.0,
    ))
    net_vs_runc = improvement_percent(runc_net.mean_latency_s, rr_net.mean_latency_s)
    checks.append(ClaimCheck(
        "inter-total-vs-runc",
        "Inter-node total latency, Roadrunner vs RunC",
        "-7%", "-" + _pct(net_vs_runc), 0.0 < net_vs_runc <= 25.0,
    ))
    ser_vs_wasm = improvement_percent(wasm_net.mean_serialization_s, rr_net.mean_serialization_s)
    checks.append(ClaimCheck(
        "inter-serialization-vs-wasmedge",
        "Inter-node serialization overhead, Roadrunner vs WasmEdge",
        "-97%", "-" + _pct(ser_vs_wasm), ser_vs_wasm >= 97.0,
    ))
    ser_vs_runc = improvement_percent(runc_net.mean_serialization_s, rr_net.mean_serialization_s)
    checks.append(ClaimCheck(
        "inter-serialization-vs-runc",
        "Inter-node serialization overhead, Roadrunner vs RunC",
        "-46%", "-" + _pct(ser_vs_runc), ser_vs_runc >= 46.0,
    ))

    # Throughput -----------------------------------------------------------------------
    rr_small = measure_pair("roadrunner-user", 1, cost_model=cost_model)
    wasm_small = measure_pair("wasmedge-http", 1, cost_model=cost_model)
    throughput_gain = speedup(wasm_small.mean_latency_s, rr_small.mean_latency_s)
    checks.append(ClaimCheck(
        "throughput",
        "Throughput, Roadrunner (User space) vs WasmEdge, 1 MB payloads",
        "up to 69x", _x(throughput_gain), throughput_gain >= 20.0,
    ))

    # Fan-out --------------------------------------------------------------------------
    rr_fan = measure_fanout("roadrunner-user", fanout_degree, fanout_payload_mb, cost_model=cost_model)
    runc_fan = measure_fanout("runc-http", fanout_degree, fanout_payload_mb, cost_model=cost_model)
    wasm_fan = measure_fanout("wasmedge-http", fanout_degree, fanout_payload_mb, cost_model=cost_model)
    fan_latency = improvement_percent(runc_fan.mean_branch_latency_s, rr_fan.mean_branch_latency_s)
    checks.append(ClaimCheck(
        "fanout-latency-vs-runc",
        "Intra-node fan-out latency, Roadrunner (User space) vs RunC",
        "up to -70%", "-" + _pct(fan_latency), fan_latency > 0.0,
    ))
    fan_throughput = rr_fan.throughput_rps / wasm_fan.throughput_rps
    checks.append(ClaimCheck(
        "fanout-throughput-vs-wasmedge",
        "Intra-node fan-out throughput, Roadrunner (User space) vs WasmEdge",
        "up to 64x", _x(fan_throughput), fan_throughput >= 4.0,
    ))
    return checks


def render_claims(checks: List[ClaimCheck]) -> str:
    """Format the claim checks as a fixed-width table."""
    rows = [
        [c.claim_id, c.description, c.paper_value, c.measured_value, "yes" if c.satisfied else "NO"]
        for c in checks
    ]
    return format_table(
        ["id", "claim", "paper", "measured", "satisfied"],
        rows,
        title="Headline claims: paper vs reproduction",
    )
