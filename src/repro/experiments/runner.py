"""Run every reproduced figure and render the results.

``python -m repro.experiments`` runs all figures with reduced sweeps (so a
laptop finishes in seconds) and prints the tables; ``run_all`` is also what
EXPERIMENTS.md is generated from.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.fig2 import run_fig2a, run_fig2b
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.results import FigureResult
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL

#: Reduced sweeps used by the quick run (full sweeps are the default of each
#: run_figX function).
QUICK_SIZES_MB = (1, 10, 100, 500)
QUICK_DEGREES = (1, 10, 50, 100)


def run_all(
    quick: bool = True,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Dict[str, FigureResult]:
    """Run every figure; ``quick=True`` trims the sweeps to a few points."""
    sizes: Optional[Sequence[float]] = QUICK_SIZES_MB if quick else None
    degrees: Optional[Sequence[int]] = QUICK_DEGREES if quick else None
    return {
        "fig2a": run_fig2a(cost_model=cost_model),
        "fig2b": run_fig2b(cost_model=cost_model),
        "fig6": run_fig6(cost_model=cost_model),
        "fig7": run_fig7(sizes_mb=sizes, cost_model=cost_model),
        "fig8": run_fig8(sizes_mb=sizes, cost_model=cost_model),
        "fig9": run_fig9(degrees=degrees, cost_model=cost_model),
        "fig10": run_fig10(degrees=degrees, cost_model=cost_model),
    }


def render_all(results: Dict[str, FigureResult]) -> str:
    """Render every figure's tables as one text report."""
    blocks = []
    for name in sorted(results):
        blocks.append(results[name].to_text())
    return "\n\n" + ("\n\n" + "=" * 78 + "\n\n").join(blocks)


def main() -> None:  # pragma: no cover - exercised via __main__
    results = run_all(quick=True)
    print(render_all(results))


if __name__ == "__main__":  # pragma: no cover
    main()
