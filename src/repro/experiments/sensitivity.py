"""Sensitivity analysis: how Roadrunner's advantage depends on the testbed.

The reproduction's absolute numbers come from a calibrated cost model, so the
honest question is: *which conclusions survive when the calibration moves?*
This module sweeps one cost-model parameter at a time (network bandwidth,
Wasm-I/O bandwidth, serialization speed, payload size), re-measures the
Roadrunner-vs-baseline improvement at every point, and reports where the
advantage grows, shrinks or crosses zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import measure_pair
from repro.metrics.report import format_table, improvement_percent
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL


class SensitivityError(ValueError):
    """Raised for invalid sweep definitions."""


@dataclass(frozen=True)
class SensitivityPoint:
    """One point of a sensitivity sweep."""

    parameter: str
    value: float
    roadrunner_latency_s: float
    baseline_latency_s: float

    @property
    def improvement_pct(self) -> float:
        return improvement_percent(self.baseline_latency_s, self.roadrunner_latency_s)


@dataclass(frozen=True)
class SensitivityResult:
    """A full sweep of one parameter."""

    parameter: str
    roadrunner_mode: str
    baseline_mode: str
    payload_mb: float
    internode: bool
    points: Sequence[SensitivityPoint]

    @property
    def improvements_pct(self) -> List[float]:
        return [point.improvement_pct for point in self.points]

    def crossover_value(self) -> Optional[float]:
        """The first parameter value where Roadrunner stops winning, if any."""
        for point in self.points:
            if point.improvement_pct <= 0:
                return point.value
        return None

    def to_text(self) -> str:
        rows = [
            [point.value, point.roadrunner_latency_s, point.baseline_latency_s,
             round(point.improvement_pct, 1)]
            for point in self.points
        ]
        return format_table(
            [self.parameter, "%s (s)" % self.roadrunner_mode, "%s (s)" % self.baseline_mode,
             "improvement %"],
            rows,
            title="Sensitivity of %s vs %s to %s (%g MB, %s)" % (
                self.roadrunner_mode,
                self.baseline_mode,
                self.parameter,
                self.payload_mb,
                "inter-node" if self.internode else "intra-node",
            ),
        )


def sweep_parameter(
    parameter: str,
    values: Sequence[float],
    roadrunner_mode: str = "roadrunner-network",
    baseline_mode: str = "wasmedge-http",
    payload_mb: float = 100,
    internode: bool = True,
    base_model: CostModel = DEFAULT_COST_MODEL,
) -> SensitivityResult:
    """Re-measure the Roadrunner-vs-baseline gap for each value of ``parameter``."""
    if not values:
        raise SensitivityError("a sweep needs at least one value")
    if parameter not in base_model.__dataclass_fields__:
        raise SensitivityError("unknown cost-model parameter %r" % parameter)
    points: List[SensitivityPoint] = []
    for value in values:
        model = base_model.with_overrides(**{parameter: value})
        roadrunner = measure_pair(roadrunner_mode, payload_mb, internode=internode, cost_model=model)
        baseline = measure_pair(baseline_mode, payload_mb, internode=internode, cost_model=model)
        points.append(
            SensitivityPoint(
                parameter=parameter,
                value=value,
                roadrunner_latency_s=roadrunner.mean_latency_s,
                baseline_latency_s=baseline.mean_latency_s,
            )
        )
    return SensitivityResult(
        parameter=parameter,
        roadrunner_mode=roadrunner_mode,
        baseline_mode=baseline_mode,
        payload_mb=payload_mb,
        internode=internode,
        points=points,
    )


def default_sensitivity_suite(payload_mb: float = 100) -> Dict[str, SensitivityResult]:
    """The three sweeps DESIGN.md calls out, with sensible ranges."""
    model = DEFAULT_COST_MODEL
    return {
        "network_bandwidth": sweep_parameter(
            "network_bandwidth",
            [model.network_bandwidth * factor for factor in (0.1, 0.5, 1.0, 2.0, 8.0)],
            payload_mb=payload_mb,
        ),
        "wasm_memory_copy_bandwidth": sweep_parameter(
            "wasm_memory_copy_bandwidth",
            [model.wasm_memory_copy_bandwidth * factor for factor in (0.25, 0.5, 1.0, 2.0, 4.0)],
            roadrunner_mode="roadrunner-user",
            baseline_mode="runc-http",
            internode=False,
            payload_mb=payload_mb,
        ),
        "wasm_serialize_bandwidth": sweep_parameter(
            "wasm_serialize_bandwidth",
            [model.wasm_serialize_bandwidth * factor for factor in (0.5, 1.0, 2.0, 4.0, 16.0)],
            roadrunner_mode="roadrunner-user",
            baseline_mode="wasmedge-http",
            internode=False,
            payload_mb=payload_mb,
        ),
    }
