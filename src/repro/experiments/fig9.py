"""Figure 9: intra-node fan-out scalability (eight panels).

Function a fans a 10 MB payload out to N replicas of function b on the same
node, N swept from 1 to 100, comparing RoadRunner (User space), RoadRunner
(Kernel space), RunC and Wasmedge.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.environment import INTRA_NODE_MODES
from repro.experiments.harness import sweep_fanout
from repro.experiments.panels import add_fanout_panel_point
from repro.experiments.results import FigureResult
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.workloads.generators import FANOUT_PAYLOAD_MB, fanout_degrees


def run_fig9(
    degrees: Optional[Sequence[int]] = None,
    payload_mb: float = FANOUT_PAYLOAD_MB,
    repetitions: int = 1,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    modes: Sequence[str] = INTRA_NODE_MODES,
) -> FigureResult:
    """Reproduce Fig. 9 and return its eight panels."""
    swept_degrees = list(degrees) if degrees is not None else fanout_degrees()
    result = FigureResult(
        figure="fig9",
        title="Intra-node fan-out scalability with %g MB transfers" % payload_mb,
        x_label="Fanout Degree",
        x_values=list(swept_degrees),
    )
    sweep = sweep_fanout(
        modes,
        swept_degrees,
        payload_mb=payload_mb,
        internode=False,
        repetitions=repetitions,
        cost_model=cost_model,
    )
    cores = cost_model.cores_per_node
    for degree in swept_degrees:
        reference = max(sweep[mode][degree].makespan_s for mode in modes)
        for mode in modes:
            add_fanout_panel_point(result, mode, sweep[mode][degree], cores, reference_wall_s=reference)
    return result
