"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figures``   regenerate the paper's figures (optionally the full sweeps) and
              print them, or export them to CSV/JSON files.
``claims``    evaluate the headline claims (paper vs measured) as a table.
``select``    run the dynamic runtime selector on a workflow profile.
``traffic``   drive a sustained arrival stream (Poisson/bursty/diurnal) against
              several runtimes with autoscaling and print the SLO report;
              with ``--tenants`` drive several tenants concurrently over one
              shared cluster with weighted fair queueing at the gateway;
              with ``--middleware`` thread every request through a composable
              gateway pipeline (auth / rate-limit / cache / coalesce /
              hedge) and print per-stage counters;
              with ``--classes`` stamp deadline/priority scheduling classes
              onto the stream (EDF dispatch within a tenant's queue); with
              ``--compare-policies`` run the same seeded arrivals under
              several scaling policies and print/export the comparison;
              with ``--trace-file`` replay an Azure Functions invocations-
              per-minute trace; with ``--parallel-nodes`` simulate the
              cluster's nodes in parallel over sharded per-node ledgers
              (identical results, better wall-clock on multi-node
              workloads).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

import repro
from repro.experiments.claims import evaluate_claims, render_claims
from repro.experiments.runner import render_all, run_all
from repro.gateway.middleware import (
    STAGE_NAMES,
    MiddlewareError,
    MiddlewarePipeline,
    build_pipeline,
)
from repro.metrics.export import (
    federation_to_figure,
    multi_tenant_to_figure,
    node_usage_to_figure,
    policies_to_figure,
    traffic_to_figure,
    write_figure,
)
from repro.metrics.timeline import export_federation_trace, export_traffic_trace
from repro.obs import (
    JsonlEventWriter,
    MetricsRegistry,
    ProgressReporter,
    Telemetry,
    TraceLog,
    write_prometheus,
)
from repro.platform.gateway import FairnessPolicy, IntraTenantOrder
from repro.platform.runtime_selector import RuntimeSelector, WorkflowProfile
from repro.traffic.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    load_azure_trace,
)
from repro.traffic.autoscaler import AutoscalerError
from repro.traffic.classes import RequestClassError, assign_classes, parse_classes
from repro.traffic.engine import (
    TRAFFIC_MODES,
    MultiTenantTrafficEngine,
    TrafficConfig,
    TrafficEngineError,
    run_comparison,
)
from repro.traffic.federation import (
    ROUTER_POLICIES,
    FederatedTrafficEngine,
    parse_clusters,
    parse_fail_spec,
)
from repro.traffic.policies import (
    SCALING_POLICIES,
    autoscaler_factory,
    compare_scaling_policies,
    policy_cluster_summaries,
)
from repro.traffic.report import (
    render_federation_report,
    render_middleware_table,
    render_multi_tenant_report,
    render_policy_comparison,
    render_traffic_report,
    render_waterfall_table,
)
from repro.traffic.tenants import TenantError, TenantSpec, derived_seed, parse_tenants


def _cmd_figures(args: argparse.Namespace) -> int:
    results = run_all(quick=not args.full)
    if args.export_dir:
        os.makedirs(args.export_dir, exist_ok=True)
        for name, result in sorted(results.items()):
            path = os.path.join(args.export_dir, "%s.%s" % (name, args.format))
            write_figure(result, path, fmt=args.format)
            print("wrote %s" % path)
        return 0
    print(render_all(results))
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    checks = evaluate_claims(payload_mb=args.payload_mb, fanout_degree=args.fanout)
    print(render_claims(checks))
    return 0 if all(c.satisfied for c in checks) else 1


def _cmd_select(args: argparse.Namespace) -> int:
    profile = WorkflowProfile(
        payload_bytes=int(args.payload_mb * 1024 * 1024),
        invocations_per_second=args.rate,
        hops=args.hops,
        cold_start_fraction=args.cold_start_fraction,
        colocatable=not args.remote,
    )
    recommendation = RuntimeSelector().recommend(profile)
    print("Recommended runtime      : %s" % recommendation.runtime.value)
    print("Recommended data passing : %s" % recommendation.data_passing.value)
    print("Estimated latency        : %.6f s/invocation" % recommendation.estimated_latency_s)
    print("Rationale                : %s" % recommendation.rationale)
    print("\nPer-candidate estimates:")
    for name, value in sorted(recommendation.per_candidate_latency_s.items(), key=lambda kv: kv[1]):
        print("  %-26s %.6f s" % (name, value))
    return 0


def _make_arrivals(args: argparse.Namespace):
    if getattr(args, "trace_file", None):
        return load_azure_trace(
            args.trace_file,
            payload_mb=args.payload_mb,
            max_minutes=args.trace_minutes,
        )
    if args.pattern == "poisson":
        return PoissonArrivals(
            rate_rps=args.rps,
            duration_s=args.duration,
            payload_mb=args.payload_mb,
            seed=args.seed,
        )
    if args.pattern == "bursty":
        return BurstyArrivals(
            on_rate_rps=args.rps,
            duration_s=args.duration,
            on_s=args.burst_on,
            off_s=args.burst_off,
            payload_mb=args.payload_mb,
            seed=args.seed,
        )
    return DiurnalArrivals(
        peak_rps=args.rps,
        trough_rps=min(args.rps, max(args.rps / 10.0, 0.1)),
        duration_s=args.duration,
        period_s=args.diurnal_period,
        payload_mb=args.payload_mb,
        seed=args.seed,
    )


def _policy_kwargs(args: argparse.Namespace) -> dict:
    return dict(
        target_concurrency=args.target_concurrency,
        fixed_replicas=args.fixed_replicas,
        step=args.step,
        high_utilisation=args.high_utilisation,
        low_utilisation=args.low_utilisation,
        cooldown_s=args.cooldown,
        horizon_s=args.horizon,
    )


def _autoscaler_factory(args: argparse.Namespace, policy_name: str):
    return autoscaler_factory(
        policy_name,
        min_replicas=args.min_replicas,
        max_replicas=args.max_replicas,
        keep_alive_s=args.keep_alive,
        control_interval_s=args.control_interval,
        **_policy_kwargs(args),
    )


def _build_middleware(args: argparse.Namespace) -> Optional[MiddlewarePipeline]:
    """One fresh gateway pipeline from ``--middleware cache,coalesce,...``.

    Returns ``None`` when no stages were requested, so pipeline-free runs
    take exactly the pre-middleware code path (byte-identical output).
    Called once per compared mode: stage state (cache entries, token
    buckets, hedge RNG) must never leak across runs.
    """
    names = [name.strip() for name in (args.middleware or "").split(",") if name.strip()]
    if not names:
        return None
    allow = None
    if args.auth_allow:
        allow = [t.strip() for t in args.auth_allow.split(",") if t.strip()]
    return build_pipeline(
        names,
        cache_ttl_s=args.cache_ttl,
        cache_capacity=args.cache_capacity,
        cache_hit_latency_s=args.cache_hit_latency,
        rate_limit_rps=args.rate_limit_rps,
        rate_limit_burst=args.rate_limit_burst,
        hedge_budget_s=args.hedge_budget,
        hedge_straggler_prob=args.hedge_straggler_prob,
        hedge_straggler_factor=args.hedge_straggler_factor,
        hedge_seed=args.seed,
        auth_allow=allow,
        auth_quota=args.auth_quota,
    )


def _intra_order(args: argparse.Namespace, classes_in_play: bool) -> IntraTenantOrder:
    """EDF when classes are in play, unless --class-order pins it."""
    if args.class_order:
        return IntraTenantOrder(args.class_order)
    return IntraTenantOrder.EDF if classes_in_play else IntraTenantOrder.FIFO


def _wants_telemetry(args: argparse.Namespace) -> bool:
    return bool(args.metrics_out or args.trace_out or args.events_out or args.progress)


def _suffixed(path: str, tag: str) -> str:
    """``out.json`` + tag ``runc-http`` -> ``out-runc-http.json``."""
    if not tag:
        return path
    root, ext = os.path.splitext(path)
    return "%s-%s%s" % (root, tag, ext)


def _build_telemetry(args: argparse.Namespace, tag: str = "") -> Optional[Telemetry]:
    """One telemetry stack for one run (per mode in a comparison)."""
    if not _wants_telemetry(args):
        return None
    return Telemetry(
        trace_log=TraceLog() if args.trace_out else None,
        events=JsonlEventWriter(_suffixed(args.events_out, tag)) if args.events_out else None,
        progress=ProgressReporter(interval_s=args.progress_interval) if args.progress else None,
    )


def _drain_telemetry(args: argparse.Namespace, telemetry: Optional[Telemetry], tag: str = "") -> List[str]:
    """Write the run's telemetry exports; returns the paths written."""
    if telemetry is None:
        return []
    written: List[str] = []
    if args.metrics_out:
        written.append(write_prometheus(telemetry.registry, _suffixed(args.metrics_out, tag)))
    if args.trace_out and telemetry.trace_log is not None:
        written.append(
            export_traffic_trace(_suffixed(args.trace_out, tag), telemetry.trace_log.traces)
        )
    if telemetry.events is not None:
        if telemetry.events.path:
            written.append(telemetry.events.path)
        telemetry.events.close()
    for path in written:
        print("wrote %s" % path)
    return written


def _write_manifest(args: argparse.Namespace, outputs: List[str], started_wall: float) -> Optional[str]:
    """Provenance next to the exports: resolved config, seed, version, timing."""
    if not outputs:
        return None
    config = {
        key: value
        for key, value in sorted(vars(args).items())
        if key != "handler" and not callable(value)
    }
    manifest = {
        "command": "traffic",
        "config": config,
        "seed": args.seed,
        "version": repro.__version__,
        "wall_seconds": round(time.time() - started_wall, 3),
        "outputs": [os.path.abspath(path) for path in outputs],
    }
    path = os.path.join(os.path.dirname(os.path.abspath(outputs[0])), "manifest.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _cmd_traffic(args: argparse.Namespace) -> int:
    try:
        classes = parse_classes(args.classes) if args.classes else ()
    except RequestClassError as exc:
        print("invalid --classes: %s" % exc, file=sys.stderr)
        return 2
    try:
        _build_middleware(args)  # validate stage names before any run starts
    except MiddlewareError as exc:
        print("invalid --middleware: %s" % exc, file=sys.stderr)
        return 2
    started_wall = time.time()
    intra = _intra_order(args, bool(classes))
    policy_name = args.scaling_policy or args.policy
    factory = _autoscaler_factory(args, policy_name)

    config_kwargs = dict(
        nodes=args.nodes,
        initial_replicas=args.initial_replicas,
        queue_timeout_s=args.timeout,
        parallel_nodes=args.parallel_nodes,
        retain_records=not args.sketch_mode,
        node_memory_mb=args.node_memory_mb,
        replica_rss_mb=args.replica_rss_mb,
        pressure_knee=args.pressure_knee,
    )

    if args.compare_policies:
        if _wants_telemetry(args):
            print(
                "note: --metrics-out/--trace-out/--events-out/--progress are not "
                "wired into --compare-policies runs; ignoring them",
                file=sys.stderr,
            )
        if args.middleware:
            print(
                "note: --middleware is not wired into --compare-policies runs; "
                "ignoring it",
                file=sys.stderr,
            )
        if args.clusters:
            print(
                "note: --clusters is not wired into --compare-policies runs; "
                "ignoring it",
                file=sys.stderr,
            )
        return _cmd_compare_policies(args, classes, config_kwargs, started_wall)

    if args.clusters:
        return _cmd_federation(args, classes, config_kwargs, factory, started_wall)

    if args.tenants:
        # Multi-tenant path: several named functions over one shared cluster,
        # with weighted fair queueing (or FIFO) at the gateway.  Tenants
        # inherit --duration and the first --modes entry unless they pin
        # their own "duration"/"mode" keys.
        try:
            default_mode = args.modes.split(",")[0].strip() or "roadrunner-user"
            tenants = parse_tenants(
                args.tenants,
                default_mode=default_mode,
                base_seed=args.seed,
                default_duration=args.duration,
                default_classes=classes,
            )
            # Tenants may declare their own class mixes: those enable the
            # EDF default exactly like a global --classes does.
            intra = _intra_order(
                args, bool(classes) or any(tenant.classes for tenant in tenants)
            )
            telemetry = _build_telemetry(args)
            engine = MultiTenantTrafficEngine(
                tenants,
                config=TrafficConfig(**config_kwargs),
                fairness=FairnessPolicy(args.fairness),
                starvation_guard=args.starvation_guard,
                autoscaler_factory=factory,
                oversubscription=args.oversubscription,
                intra=intra,
                telemetry=telemetry,
                middleware=_build_middleware(args),
            )
            result = engine.run()
        except (ValueError, TenantError, TrafficEngineError) as exc:
            print("invalid traffic parameters: %s" % exc, file=sys.stderr)
            return 2
        print(render_multi_tenant_report(result))
        if engine.waterfall:
            print()
            print(render_waterfall_table(engine.waterfall))
        outputs = _drain_telemetry(args, telemetry)
        if args.export:
            path = write_figure(multi_tenant_to_figure(result), args.export, fmt=args.format)
            outputs.append(path)
            print("\nwrote %s" % path)
        if args.export_nodes:
            path = write_figure(node_usage_to_figure(result), args.export_nodes, fmt=args.format)
            outputs.append(path)
            print("wrote %s" % path)
        manifest = _write_manifest(args, outputs, started_wall)
        if manifest:
            print("wrote %s" % manifest)
        return 0

    modes = [mode.strip() for mode in args.modes.split(",") if mode.strip()]
    if not modes:
        print("--modes needs at least one runtime (e.g. %s)" % TRAFFIC_MODES[0], file=sys.stderr)
        return 2
    unknown = [mode for mode in modes if mode not in TRAFFIC_MODES]
    if unknown:
        print(
            "unknown mode(s) %s; choose from %s" % (", ".join(unknown), ", ".join(TRAFFIC_MODES)),
            file=sys.stderr,
        )
        return 2
    wants_telemetry = _wants_telemetry(args)
    if wants_telemetry and args.parallel_nodes and len(modes) > 1:
        print(
            "note: telemetry sinks cannot cross process boundaries; "
            "running the mode comparison serially",
            file=sys.stderr,
        )
    # Per-mode telemetry stacks: export files get a -<mode> suffix when the
    # comparison covers more than one runtime.
    telemetries: Dict[str, Optional[Telemetry]] = {}

    def telemetry_for(mode: str) -> Telemetry:
        tag = mode if len(modes) > 1 else ""
        telemetries[mode] = _build_telemetry(args, tag)
        return telemetries[mode]

    waterfalls: Dict[str, List] = {}
    middleware_stats: Dict[str, Dict[str, Dict[str, int]]] = {}
    try:
        requests = _make_arrivals(args).generate()
        if classes:
            requests = assign_classes(
                requests, classes, seed=derived_seed(args.seed, "cli/classes")
            )
        results = run_comparison(
            requests,
            modes=modes,
            autoscaler_factory=factory,
            config=TrafficConfig(**config_kwargs),
            pattern="azure" if args.trace_file else args.pattern,
            intra=intra,
            parallel=args.parallel_nodes and not wants_telemetry,
            telemetry_factory=telemetry_for if wants_telemetry else None,
            waterfalls_out=waterfalls,
            middleware_factory=(lambda mode: _build_middleware(args)) if args.middleware else None,
            middleware_out=middleware_stats,
        )
    except (ValueError, TrafficEngineError) as exc:
        print("invalid traffic parameters: %s" % exc, file=sys.stderr)
        return 2
    print(render_traffic_report(results))
    for mode in modes:
        stats = middleware_stats.get(mode, {})
        if any(stats.values()):
            print()
            title = "Gateway middleware (per-stage counters)"
            if len(modes) > 1:
                title += " — %s" % mode
            print(render_middleware_table(stats, title=title))
    waterfall_rows = [row for mode in modes for row in waterfalls.get(mode, [])]
    if waterfall_rows:
        print()
        print(render_waterfall_table(waterfall_rows))
    outputs: List[str] = []
    for mode in modes:
        tag = mode if len(modes) > 1 else ""
        outputs.extend(_drain_telemetry(args, telemetries.get(mode), tag))
    if args.export:
        figure = traffic_to_figure(results, x_label="mode")
        path = write_figure(figure, args.export, fmt=args.format)
        outputs.append(path)
        print("\nwrote %s" % path)
    manifest = _write_manifest(args, outputs, started_wall)
    if manifest:
        print("wrote %s" % manifest)
    return 0


def _cmd_federation(
    args: argparse.Namespace,
    classes,
    config_kwargs: dict,
    factory,
    started_wall: float,
) -> int:
    """Multi-region run: --clusters JSON, a global router, optional WAN/failures."""
    try:
        clusters = parse_clusters(args.clusters)
        fail_at: Dict[str, float] = {}
        for spec in args.fail_region or []:
            region, time_s = parse_fail_spec(spec)
            fail_at[region] = time_s
        default_mode = args.modes.split(",")[0].strip() or "roadrunner-user"
        if args.tenants:
            tenants = parse_tenants(
                args.tenants,
                default_mode=default_mode,
                base_seed=args.seed,
                default_duration=args.duration,
                default_classes=classes,
            )
        else:
            tenants = [
                TenantSpec(
                    name="app",
                    mode=default_mode,
                    arrivals=_make_arrivals(args),
                    classes=classes,
                    pattern=args.pattern,
                )
            ]
        intra = _intra_order(
            args, bool(classes) or any(tenant.classes for tenant in tenants)
        )
        wants_telemetry = _wants_telemetry(args)
        # One telemetry stack per region over ONE shared registry: every
        # family carries a region label, so --metrics-out stays a single
        # Prometheus snapshot with per-region children.
        shared_registry = MetricsRegistry() if wants_telemetry else None

        def telemetry_for(region: str) -> Telemetry:
            return Telemetry(
                registry=shared_registry,
                trace_log=TraceLog() if args.trace_out else None,
                events=(
                    JsonlEventWriter(_suffixed(args.events_out, region))
                    if args.events_out
                    else None
                ),
                region=region,
            )

        engine = FederatedTrafficEngine(
            tenants,
            clusters,
            config=TrafficConfig(**config_kwargs),
            fairness=FairnessPolicy(args.fairness),
            starvation_guard=args.starvation_guard,
            autoscaler_factory=factory,
            oversubscription=args.oversubscription,
            intra=intra,
            router=args.global_router,
            router_seed=args.seed,
            wan_rtt_s=args.wan_ms / 1000.0 if args.wan_ms is not None else None,
            wan_bandwidth_Bps=(
                args.wan_mbps * 1e6 / 8.0 if args.wan_mbps is not None else None
            ),
            telemetry_factory=telemetry_for if wants_telemetry else None,
            middleware_factory=(
                (lambda region: _build_middleware(args)) if args.middleware else None
            ),
            fail_at=fail_at or None,
        )
        summary = engine.run()
    except (ValueError, TenantError, TrafficEngineError, AutoscalerError) as exc:
        print("invalid traffic parameters: %s" % exc, file=sys.stderr)
        return 2
    print(render_federation_report(summary))
    outputs: List[str] = []
    for region, telemetry in engine.telemetries.items():
        if telemetry.events is not None:
            if telemetry.events.path:
                outputs.append(telemetry.events.path)
            telemetry.events.close()
    if args.metrics_out and shared_registry is not None:
        outputs.append(write_prometheus(shared_registry, args.metrics_out))
    if args.trace_out and engine.telemetries:
        traces = {
            region: telemetry.trace_log.traces
            for region, telemetry in engine.telemetries.items()
            if telemetry.trace_log is not None
        }
        outputs.append(export_federation_trace(args.trace_out, traces))
    for path in outputs:
        print("wrote %s" % path)
    if args.export:
        path = write_figure(federation_to_figure(summary), args.export, fmt=args.format)
        outputs.append(path)
        print("\nwrote %s" % path)
    manifest = _write_manifest(args, outputs, started_wall)
    if manifest:
        print("wrote %s" % manifest)
    return 0


def _cmd_compare_policies(
    args: argparse.Namespace, classes, config_kwargs: dict, started_wall: float
) -> int:
    """Run the same seeded arrivals under each --compare-policies policy."""
    names = [name.strip() for name in args.compare_policies.split(",") if name.strip()]
    if not names:
        print("--compare-policies needs at least one policy", file=sys.stderr)
        return 2
    unknown = [name for name in names if name not in SCALING_POLICIES]
    if unknown:
        print(
            "unknown scaling polic%s %s; choose from %s"
            % ("y" if len(unknown) == 1 else "ies", ", ".join(unknown), ", ".join(SCALING_POLICIES)),
            file=sys.stderr,
        )
        return 2
    try:
        default_mode = args.modes.split(",")[0].strip() or "roadrunner-user"
        if args.tenants:
            tenants = parse_tenants(
                args.tenants,
                default_mode=default_mode,
                base_seed=args.seed,
                default_duration=args.duration,
                default_classes=classes,
            )
        else:
            tenants = [
                TenantSpec(
                    name="app",
                    mode=default_mode,
                    arrivals=_make_arrivals(args),
                    classes=classes,
                    pattern=args.pattern,
                )
            ]
        intra = _intra_order(
            args, bool(classes) or any(tenant.classes for tenant in tenants)
        )
        results = compare_scaling_policies(
            tenants,
            {name: _autoscaler_factory(args, name) for name in names},
            config=TrafficConfig(**config_kwargs),
            fairness=FairnessPolicy(args.fairness),
            starvation_guard=args.starvation_guard,
            intra=intra,
            oversubscription=args.oversubscription,
            parallel=args.parallel_nodes,
        )
    except (ValueError, TenantError, TrafficEngineError, AutoscalerError) as exc:
        print("invalid traffic parameters: %s" % exc, file=sys.stderr)
        return 2
    clusters = policy_cluster_summaries(results)
    print(render_policy_comparison(clusters))
    outputs: List[str] = []
    if args.export:
        path = write_figure(policies_to_figure(clusters), args.export, fmt=args.format)
        outputs.append(path)
        print("\nwrote %s" % path)
    manifest = _write_manifest(args, outputs, started_wall)
    if manifest:
        print("wrote %s" % manifest)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument("--full", action="store_true", help="run the full sweeps")
    figures.add_argument("--export-dir", help="write one file per figure instead of printing")
    figures.add_argument("--format", choices=("csv", "json", "txt"), default="csv")
    figures.set_defaults(handler=_cmd_figures)

    claims = subparsers.add_parser("claims", help="evaluate the headline claims")
    claims.add_argument("--payload-mb", type=float, default=100.0)
    claims.add_argument("--fanout", type=int, default=50)
    claims.set_defaults(handler=_cmd_claims)

    select = subparsers.add_parser("select", help="run the dynamic runtime selector")
    select.add_argument("--payload-mb", type=float, default=10.0)
    select.add_argument("--rate", type=float, default=5.0, help="invocations per second")
    select.add_argument("--hops", type=int, default=1)
    select.add_argument("--cold-start-fraction", type=float, default=0.01)
    select.add_argument("--remote", action="store_true", help="stages cannot be colocated")
    select.set_defaults(handler=_cmd_select)

    traffic = subparsers.add_parser(
        "traffic", help="sustained arrival streams with autoscaling across runtimes"
    )
    traffic.add_argument("--pattern", choices=("poisson", "bursty", "diurnal"), default="poisson")
    traffic.add_argument("--rps", type=float, default=50.0, help="arrival rate (peak rate for bursty/diurnal)")
    traffic.add_argument("--duration", type=float, default=60.0, help="simulated seconds of arrivals")
    traffic.add_argument("--payload-mb", type=float, default=1.0)
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument(
        "--modes",
        default="roadrunner-user,runc-http",
        help="comma-separated runtimes to compare under the same arrivals",
    )
    traffic.add_argument("--policy", choices=SCALING_POLICIES, default="target")
    traffic.add_argument(
        "--scaling-policy", choices=SCALING_POLICIES, default=None,
        help="autoscaling policy (alias of --policy, wins when both are given): "
        "target (Knative-style reactive), fixed, none, step (threshold bands "
        "with --cooldown), predictive (Holt arrival-rate forecast pre-warming "
        "--horizon seconds ahead)",
    )
    traffic.add_argument(
        "--compare-policies", metavar="LIST",
        help="run the SAME seeded arrivals once per comma-separated policy "
        "(e.g. 'target,step,predictive') and print/export one comparison "
        "figure: p99, deadline-met ratio, cold starts, replica-seconds",
    )
    traffic.add_argument("--target-concurrency", type=float, default=1.0)
    traffic.add_argument("--fixed-replicas", type=int, default=4)
    traffic.add_argument("--step", type=int, default=1, help="step policy: replicas per action")
    traffic.add_argument(
        "--high-utilisation", type=float, default=2.0,
        help="step policy: scale up above this demand per replica",
    )
    traffic.add_argument(
        "--low-utilisation", type=float, default=0.5,
        help="step policy: scale down below this demand per replica",
    )
    traffic.add_argument(
        "--cooldown", type=float, default=10.0,
        help="step policy: seconds between scaling actions",
    )
    traffic.add_argument(
        "--horizon", type=float, default=10.0,
        help="predictive policy: seconds of arrival-rate forecast to pre-warm for",
    )
    traffic.add_argument("--min-replicas", type=int, default=1)
    traffic.add_argument("--max-replicas", type=int, default=64)
    traffic.add_argument("--keep-alive", type=float, default=30.0, help="idle seconds before scale-down")
    traffic.add_argument("--control-interval", type=float, default=1.0, help="autoscaler tick period")
    traffic.add_argument("--initial-replicas", type=int, default=1)
    traffic.add_argument("--nodes", type=int, default=4)
    traffic.add_argument(
        "--parallel-nodes", action="store_true",
        help="simulate in parallel over the sharded per-node ledgers: "
        "service-time measurements and whole compared runs (--modes, "
        "--compare-policies) execute in worker processes, and node-local "
        "completion phases run through the partitioned event loop; "
        "summaries and figures are identical to a serial run under the "
        "same seeds",
    )
    traffic.add_argument("--timeout", type=float, default=30.0, help="queueing timeout per request")
    traffic.add_argument(
        "--node-memory-mb", type=float, default=0.0,
        help="per-node RSS budget in MB; 0 (default) disables the memory "
        "model entirely, keeping every output byte-identical to a "
        "memory-free run.  With a budget, replicas carry their runtime "
        "profile's RSS (or --replica-rss-mb / the tenant's rss_mb key), "
        "keep-alives shrink under pressure, services inflate past the "
        "knee, and the OOM evictor kills the coldest idle replica on an "
        "over-budget node",
    )
    traffic.add_argument(
        "--replica-rss-mb", type=float, default=None,
        help="override the per-replica RSS (MB) for every tenant; default "
        "is the runtime profile's baseline (container for runc-http, Wasm "
        "otherwise)",
    )
    traffic.add_argument(
        "--pressure-knee", type=float, default=0.85,
        help="fraction of the node memory budget above which service "
        "times inflate (only with --node-memory-mb)",
    )
    traffic.add_argument(
        "--trace-file", metavar="PATH",
        help="replay an Azure Functions invocations-per-minute CSV as the "
        "arrival stream (overrides --pattern/--rps/--duration); payload "
        "size comes from --payload-mb",
    )
    traffic.add_argument(
        "--trace-minutes", type=int, default=None,
        help="with --trace-file: only replay the first N minutes of the trace",
    )
    traffic.add_argument("--burst-on", type=float, default=5.0, help="bursty: seconds per on-window")
    traffic.add_argument("--burst-off", type=float, default=15.0, help="bursty: silent seconds between bursts")
    traffic.add_argument("--diurnal-period", type=float, default=60.0, help="diurnal: seconds per cycle")
    traffic.add_argument(
        "--tenants",
        help="multi-tenant run over one shared cluster: a JSON array (inline or a "
        "file path) of tenant objects, e.g. "
        '\'[{"name": "steady", "pattern": "poisson", "rps": 20, "weight": 3}, '
        '{"name": "noisy", "pattern": "bursty", "rps": 300, "weight": 1}]\'; '
        "keys: name, pattern, rps, duration, payload_mb, seed (derived from "
        "--seed and the name when omitted), weight, mode, burst_on, burst_off, "
        "period, trough_rps",
    )
    traffic.add_argument(
        "--clusters", metavar="JSON",
        help="federated multi-region run: a JSON array (inline or a file path) "
        "of cluster objects, e.g. "
        '\'[{"region": "eu-west", "nodes": 4, "tenants": ["steady"]}, '
        '{"region": "us-east", "nodes": 2}]\'; '
        "keys: region, nodes, memory_mb, initial_replicas, concurrency, "
        "tenants (names homed there; unlisted tenants land in the first "
        "cluster).  Arrivals enter at each tenant's home region and the "
        "--global-router places them; remote placements pay the WAN "
        "(--wan-ms/--wan-mbps)",
    )
    traffic.add_argument(
        "--global-router", choices=ROUTER_POLICIES, default="locality",
        help="federated placement policy: locality (home region unless "
        "saturated/failed), least-loaded (global queue+flight minimum), "
        "warmth (most warm idle replicas), data-gravity (sticky per "
        "tenant+payload), random (seeded baseline); spillover to the "
        "next-best region on saturation or regional failure",
    )
    traffic.add_argument(
        "--wan-ms", type=float, default=None,
        help="federated runs: WAN round-trip time between any two regions, "
        "in milliseconds (default: the net model's WAN profile)",
    )
    traffic.add_argument(
        "--wan-mbps", type=float, default=None,
        help="federated runs: WAN bandwidth between any two regions, in "
        "megabits per second (default: the net model's WAN profile)",
    )
    traffic.add_argument(
        "--fail-region", action="append", metavar="REGION@SECONDS",
        help="federated runs: fail the named region at the given simulated "
        "time (repeatable), e.g. --fail-region eu-west@30; queued and "
        "in-flight-to-the-region requests fail over across the WAN",
    )
    traffic.add_argument(
        "--classes",
        help="scheduling classes stamped onto the stream: a JSON array (inline "
        "or a file path) of class objects, e.g. "
        '\'[{"name": "interactive", "share": 0.5, "priority": 0, "deadline": 2.0}, '
        '{"name": "batch", "share": 0.5, "priority": 1}]\'; '
        "keys: name, share (mix weight), priority (lower dispatches first), "
        "deadline (relative seconds, soft).  Tenants may override with their "
        "own 'classes' key; enables EDF dispatch unless --class-order fifo",
    )
    traffic.add_argument(
        "--class-order",
        choices=[order.value for order in IntraTenantOrder],
        default=None,
        help="intra-tenant dispatch order: edf (priority tiers, earliest "
        "deadline first) or fifo (arrival order); default edf when classes "
        "are given, fifo otherwise",
    )
    traffic.add_argument(
        "--fairness",
        choices=[policy.value for policy in FairnessPolicy],
        default=FairnessPolicy.WFQ.value,
        help="multi-tenant dispatch order at the gateway: fifo, wfq (one "
        "virtual unit per request) or wfq-cost (tags advance by the "
        "tenant's EWMA service cost — fair core *time* under unequal "
        "payload sizes); default: wfq",
    )
    traffic.add_argument(
        "--starvation-guard", type=int, default=32,
        help="WFQ: serve any tenant passed over this many consecutive dispatches",
    )
    traffic.add_argument(
        "--oversubscription", type=float, default=2.0,
        help="multi-tenant: replica slots per core (pools overlap on cores above 1.0)",
    )
    traffic.add_argument(
        "--middleware", metavar="LIST",
        help="comma-separated gateway middleware stages threaded around every "
        "request, in execution order (choose from %s): auth/quota rejection, "
        "per-tenant token-bucket rate limiting, TTL response caching, "
        "duplicate-request coalescing (N identical concurrent requests -> 1 "
        "backend invocation), hedged retries near the latency budget.  "
        "Per-stage counters are printed after the report and exported via "
        "--metrics-out/--events-out" % ", ".join(STAGE_NAMES),
    )
    traffic.add_argument(
        "--cache-ttl", type=float, default=60.0,
        help="cache stage: seconds a cached response stays fresh",
    )
    traffic.add_argument(
        "--cache-capacity", type=int, default=4096,
        help="cache stage: max entries before LRU eviction",
    )
    traffic.add_argument(
        "--cache-hit-latency", type=float, default=0.0,
        help="cache stage: seconds a cache hit takes to serve",
    )
    traffic.add_argument(
        "--rate-limit-rps", type=float, default=50.0,
        help="rate-limit stage: sustained tokens per second per tenant",
    )
    traffic.add_argument(
        "--rate-limit-burst", type=float, default=None,
        help="rate-limit stage: bucket depth (default: one second of rate)",
    )
    traffic.add_argument(
        "--hedge-budget", type=float, default=1.0,
        help="hedge stage: latency budget (s); a second attempt fires on a "
        "spare replica when the primary attempt threatens it",
    )
    traffic.add_argument(
        "--hedge-straggler-prob", type=float, default=0.05,
        help="hedge stage: fraction of attempts that straggle",
    )
    traffic.add_argument(
        "--hedge-straggler-factor", type=float, default=4.0,
        help="hedge stage: service-time multiplier for stragglers",
    )
    traffic.add_argument(
        "--auth-allow", metavar="LIST",
        help="auth stage: comma-separated tenants allowed through "
        "(default: all tenants)",
    )
    traffic.add_argument(
        "--auth-quota", type=int, default=None,
        help="auth stage: max admitted requests per tenant for the whole run",
    )
    traffic.add_argument(
        "--sketch-mode", action="store_true",
        help="streaming summaries: fold every request into P2 quantile "
        "sketches instead of retaining per-request records — constant "
        "memory however long the run, percentiles estimated (typically "
        "within 1%% at 100k requests)",
    )
    traffic.add_argument(
        "--metrics-out", metavar="PATH",
        help="write a Prometheus text-exposition snapshot of the run's "
        "metrics registry (counters, gauges, quantile summaries); one file "
        "per mode (suffixed -<mode>) when comparing several",
    )
    traffic.add_argument(
        "--trace-out", metavar="PATH",
        help="write the request-lifecycle trace as Perfetto/Chrome trace "
        "JSON: per-request async tracks with nested queue / cold-start / "
        "service slices, one process per node",
    )
    traffic.add_argument(
        "--events-out", metavar="PATH",
        help="stream structured JSONL events (run start/end, every request "
        "outcome with stage durations, every scaling action) to PATH",
    )
    traffic.add_argument(
        "--progress", action="store_true",
        help="print a heartbeat line (simulated time, requests/s, replicas, "
        "wall time) to stderr while the run executes",
    )
    traffic.add_argument(
        "--progress-interval", type=float, default=10.0,
        help="simulated seconds between --progress heartbeats",
    )
    traffic.add_argument(
        "--export", metavar="PATH",
        help="also write the summaries via repro.metrics.export (CSV/JSON like figures)",
    )
    traffic.add_argument(
        "--export-nodes", metavar="PATH",
        help="multi-tenant runs: also write the per-node ledger-shard usage "
        "figure (charges, seconds, CPU, peak RAM per node)",
    )
    traffic.add_argument("--format", choices=("csv", "json"), default="csv",
                         help="format for --export")
    traffic.add_argument(
        "--profile", metavar="PATH", dest="profile_out",
        help="run under cProfile and dump pstats data to PATH (load with "
        "python -m pstats, snakeviz, etc.); a cumulative-time top-25 is "
        "printed to stderr after the run",
    )
    traffic.set_defaults(handler=_cmd_traffic)
    return parser


def _run_profiled(handler, args: argparse.Namespace, path: str) -> int:
    """Run ``handler(args)`` under cProfile, dumping pstats data to ``path``."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = handler(args)
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
        print("wrote %s" % path, file=sys.stderr)
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "profile_out", None):
        return _run_profiled(args.handler, args, args.profile_out)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
