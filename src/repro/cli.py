"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figures``   regenerate the paper's figures (optionally the full sweeps) and
              print them, or export them to CSV/JSON files.
``claims``    evaluate the headline claims (paper vs measured) as a table.
``select``    run the dynamic runtime selector on a workflow profile.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.claims import evaluate_claims, render_claims
from repro.experiments.runner import render_all, run_all
from repro.metrics.export import write_figure
from repro.platform.runtime_selector import RuntimeSelector, WorkflowProfile


def _cmd_figures(args: argparse.Namespace) -> int:
    results = run_all(quick=not args.full)
    if args.export_dir:
        os.makedirs(args.export_dir, exist_ok=True)
        for name, result in sorted(results.items()):
            path = os.path.join(args.export_dir, "%s.%s" % (name, args.format))
            write_figure(result, path, fmt=args.format)
            print("wrote %s" % path)
        return 0
    print(render_all(results))
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    checks = evaluate_claims(payload_mb=args.payload_mb, fanout_degree=args.fanout)
    print(render_claims(checks))
    return 0 if all(c.satisfied for c in checks) else 1


def _cmd_select(args: argparse.Namespace) -> int:
    profile = WorkflowProfile(
        payload_bytes=int(args.payload_mb * 1024 * 1024),
        invocations_per_second=args.rate,
        hops=args.hops,
        cold_start_fraction=args.cold_start_fraction,
        colocatable=not args.remote,
    )
    recommendation = RuntimeSelector().recommend(profile)
    print("Recommended runtime      : %s" % recommendation.runtime.value)
    print("Recommended data passing : %s" % recommendation.data_passing.value)
    print("Estimated latency        : %.6f s/invocation" % recommendation.estimated_latency_s)
    print("Rationale                : %s" % recommendation.rationale)
    print("\nPer-candidate estimates:")
    for name, value in sorted(recommendation.per_candidate_latency_s.items(), key=lambda kv: kv[1]):
        print("  %-26s %.6f s" % (name, value))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument("--full", action="store_true", help="run the full sweeps")
    figures.add_argument("--export-dir", help="write one file per figure instead of printing")
    figures.add_argument("--format", choices=("csv", "json", "txt"), default="csv")
    figures.set_defaults(handler=_cmd_figures)

    claims = subparsers.add_parser("claims", help="evaluate the headline claims")
    claims.add_argument("--payload-mb", type=float, default=100.0)
    claims.add_argument("--fanout", type=int, default=50)
    claims.set_defaults(handler=_cmd_claims)

    select = subparsers.add_parser("select", help="run the dynamic runtime selector")
    select.add_argument("--payload-mb", type=float, default=10.0)
    select.add_argument("--rate", type=float, default=5.0, help="invocations per second")
    select.add_argument("--hops", type=int, default=1)
    select.add_argument("--cold-start-fraction", type=float, default=0.01)
    select.add_argument("--remote", action="store_true", help="stages cannot be colocated")
    select.set_defaults(handler=_cmd_select)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
