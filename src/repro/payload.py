"""Payload: the unit of data exchanged between serverless functions.

A payload exists in one of two modes, sharing one code path end-to-end:

* **real** — backed by actual bytes.  Tests and examples use real payloads so
  data integrity can be asserted after every transfer (checksums match,
  byte-for-byte equality in functional mode).
* **virtual** — described only by its size and a deterministic fingerprint.
  The paper's sweeps go up to 500 MB per transfer; moving those bytes through
  Python would turn the benchmark harness into a memcpy benchmark of the host
  machine.  Virtual payloads traverse exactly the same substrate operations
  (and accrue exactly the same simulated costs) without materialising data.

Every transformation (serialize, copy, splice) produces a new payload whose
lineage is tracked, so a test can assert that the payload that reached
function *b* is the one function *a* sent.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field, replace
from typing import Optional


class PayloadError(ValueError):
    """Raised for invalid payload construction or integrity violations."""


def _fingerprint_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:24]


def _fingerprint_virtual(size: int, seed: int) -> str:
    return "virtual-%d-%d" % (size, seed)


@dataclass(frozen=True)
class Payload:
    """An immutable description of a message body."""

    size: int
    data: Optional[bytes] = None
    fingerprint: str = ""
    content_type: str = "application/octet-stream"
    #: Serialized payloads remember the original (pre-serialization) fingerprint
    #: so the deserialized result can be matched back to the source.
    origin_fingerprint: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise PayloadError("payload size must be non-negative, got %r" % self.size)
        if self.data is not None and len(self.data) != self.size:
            raise PayloadError(
                "payload size %d does not match data length %d" % (self.size, len(self.data))
            )
        if not self.fingerprint:
            if self.data is not None:
                object.__setattr__(self, "fingerprint", _fingerprint_bytes(self.data))
            else:
                object.__setattr__(self, "fingerprint", _fingerprint_virtual(self.size, 0))
        if not self.origin_fingerprint:
            object.__setattr__(self, "origin_fingerprint", self.fingerprint)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes, content_type: str = "application/octet-stream") -> "Payload":
        """A real payload backed by ``data``."""
        return cls(size=len(data), data=bytes(data), content_type=content_type)

    @classmethod
    def from_text(cls, text: str) -> "Payload":
        """A real payload holding UTF-8 text (the paper exchanges strings)."""
        return cls.from_bytes(text.encode("utf-8"), content_type="text/plain")

    @classmethod
    def random(cls, size: int, seed: int = 0) -> "Payload":
        """A real payload of ``size`` pseudo-random (but deterministic) bytes."""
        if size < 0:
            raise PayloadError("size must be non-negative")
        # A cheap deterministic generator: repeated digest blocks.
        chunks = []
        counter = 0
        remaining = size
        while remaining > 0:
            block = hashlib.sha256(("%d:%d" % (seed, counter)).encode()).digest()
            chunks.append(block[: min(32, remaining)])
            remaining -= len(chunks[-1])
            counter += 1
        return cls.from_bytes(b"".join(chunks))

    @classmethod
    def virtual(cls, size: int, seed: int = 0, content_type: str = "application/octet-stream") -> "Payload":
        """A size-only payload used for large modeled experiments."""
        if size < 0:
            raise PayloadError("size must be non-negative")
        return cls(
            size=size,
            data=None,
            fingerprint=_fingerprint_virtual(size, seed),
            content_type=content_type,
        )

    # -- predicates --------------------------------------------------------------

    @property
    def is_virtual(self) -> bool:
        return self.data is None

    @property
    def is_real(self) -> bool:
        return self.data is not None

    # -- transformations ---------------------------------------------------------

    def with_size(self, size: int) -> "Payload":
        """A derived payload of a different size (e.g. after serialization).

        The origin fingerprint is preserved so the round trip can be verified.
        """
        if size < 0:
            raise PayloadError("size must be non-negative")
        return Payload(
            size=size,
            data=None,
            fingerprint="derived-%s-%d" % (self.origin_fingerprint, size),
            content_type=self.content_type,
            origin_fingerprint=self.origin_fingerprint,
        )

    def copy(self) -> "Payload":
        """A physical copy (same contents, same fingerprint)."""
        if self.data is not None:
            return replace(self, data=bytes(self.data))
        return replace(self)

    def crc(self) -> int:
        """A quick integrity checksum (0 for virtual payloads)."""
        if self.data is None:
            return 0
        return zlib.crc32(self.data)

    def matches(self, other: "Payload") -> bool:
        """True when ``other`` carries the same logical content."""
        if self.origin_fingerprint != other.origin_fingerprint:
            return False
        if self.is_real and other.is_real:
            return self.data == other.data
        return True

    def require_match(self, other: "Payload") -> None:
        """Raise :class:`PayloadError` unless ``other`` matches this payload."""
        if not self.matches(other):
            raise PayloadError(
                "payload integrity violation: %s != %s"
                % (self.fingerprint, other.fingerprint)
            )

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "virtual" if self.is_virtual else "real"
        return "Payload(%s, size=%d, fp=%s)" % (kind, self.size, self.fingerprint[:12])
