"""Network links: bandwidth/RTT models, including traffic-controlled links.

A link converts a byte count into wire seconds.  Two flavours exist:

* :class:`NetworkLink` — an inter-node link with configurable bandwidth and
  round-trip time (the paper shapes its link with ``tc``);
* :class:`LoopbackLink` — the same-host loopback device used by the intra-node
  HTTP baselines; high bandwidth, negligible RTT, but still a real data path
  through the kernel.

Both accept a ``wasi_mediated`` flag: when every socket read/write is a WASI
host call (the WasmEdge baseline), the achievable goodput drops, which the
link expresses as an efficiency factor from the cost model.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.costs import CostModel, DEFAULT_COST_MODEL


class LinkError(ValueError):
    """Raised for invalid link configuration."""


class NetworkLink:
    """A point-to-point link between two nodes."""

    def __init__(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        bandwidth: Optional[float] = None,
        rtt: Optional[float] = None,
        name: str = "link",
    ) -> None:
        self.cost_model = cost_model
        self.bandwidth = bandwidth if bandwidth is not None else cost_model.network_bandwidth
        self.rtt = rtt if rtt is not None else cost_model.network_rtt
        self.name = name
        if not math.isfinite(self.bandwidth) or self.bandwidth <= 0:
            raise LinkError(
                "link %r bandwidth must be positive and finite, got %r" % (name, self.bandwidth)
            )
        if not math.isfinite(self.rtt) or self.rtt < 0:
            raise LinkError(
                "link %r RTT must be non-negative and finite, got %r" % (name, self.rtt)
            )
        self.transferred_bytes = 0

    @property
    def is_remote(self) -> bool:
        """True when the link crosses node boundaries."""
        return True

    def effective_bandwidth(self, wasi_mediated: bool = False) -> float:
        if wasi_mediated:
            return self.bandwidth * self.cost_model.wasi_network_efficiency
        return self.bandwidth

    def transfer_seconds(self, nbytes: int, wasi_mediated: bool = False) -> float:
        """One-way latency for ``nbytes``: propagation plus transmission."""
        if nbytes < 0:
            raise LinkError("nbytes must be non-negative")
        self.transferred_bytes += nbytes
        return self.rtt / 2.0 + nbytes / self.effective_bandwidth(wasi_mediated)

    def packets(self, nbytes: int) -> int:
        """Number of MTU-sized packets needed for ``nbytes``."""
        if nbytes <= 0:
            return 1
        return -(-nbytes // self.cost_model.mtu_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NetworkLink(%r, %.1f MB/s, rtt=%.3f ms)" % (
            self.name,
            self.bandwidth / 1e6,
            self.rtt * 1e3,
        )


class LoopbackLink(NetworkLink):
    """The same-host loopback path used by intra-node HTTP baselines."""

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL, name: str = "lo") -> None:
        super().__init__(
            cost_model=cost_model,
            bandwidth=cost_model.loopback_http_bandwidth,
            rtt=60.0e-6,
            name=name,
        )

    @property
    def is_remote(self) -> bool:
        return False
