"""Network substrate: links, NICs, topology and an HTTP transport.

The paper's testbed is two VMs connected by a traffic-shaped link (Sec. 6.2).
Here a :class:`~repro.net.link.NetworkLink` turns byte counts into wire time
from bandwidth and RTT, :class:`~repro.net.nic.Nic` accounts per-packet work,
:class:`~repro.net.topology.Topology` wires nodes together, and
:class:`~repro.net.http.HttpTransport` models the request/response exchange
(headers, per-request overhead, kernel copies) used by the RunC and WasmEdge
baselines.
"""

from repro.net.link import LoopbackLink, NetworkLink
from repro.net.nic import Nic
from repro.net.topology import Topology
from repro.net.http import HttpTransport, HttpResponse

__all__ = [
    "LoopbackLink",
    "NetworkLink",
    "Nic",
    "Topology",
    "HttpTransport",
    "HttpResponse",
]
