"""HTTP transport: the conventional data path between serverless functions.

State-of-the-art serverless functions exchange data over HTTP (Fig. 1a): the
source serializes, a client POSTs the body, the kernel copies it through the
socket stack (twice per host), and the target deserializes.  This transport
charges everything except serialization (which the baselines do explicitly)
so the breakdown panels can separate "transfer" from "serialization".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.kernel.sockets import TcpConnection
from repro.net.link import NetworkLink
from repro.net.nic import Nic
from repro.payload import Payload
from repro.sim.ledger import CostCategory, CpuDomain


class HttpError(RuntimeError):
    """Raised for malformed exchanges."""


@dataclass(frozen=True)
class HttpResponse:
    """Result of one request/response exchange."""

    status: int
    body: Payload
    request_bytes: int
    wire_seconds: float


class HttpTransport:
    """One logical HTTP client/server pair between two processes."""

    def __init__(
        self,
        source_kernel: Kernel,
        target_kernel: Kernel,
        link: NetworkLink,
        name: str = "http",
        reuse_connections: bool = True,
    ) -> None:
        self.source_kernel = source_kernel
        self.target_kernel = target_kernel
        self.link = link
        self.name = name
        self.reuse_connections = reuse_connections
        self.requests = 0
        self._source_nic = Nic(source_kernel, name="%s-src-nic" % name)
        self._target_nic = Nic(target_kernel, name="%s-dst-nic" % name)
        self._connection: TcpConnection = None  # created lazily per connection policy

    def post(
        self,
        sender: Process,
        receiver: Process,
        body: Payload,
        sender_in_wasm: bool = False,
        receiver_in_wasm: bool = False,
    ) -> HttpResponse:
        """POST ``body`` from ``sender`` to ``receiver`` and return the delivery."""
        cost_model = self.source_kernel.cost_model
        # Per-request client/server overhead: connection handling, routing,
        # header parsing, async executor wake-ups.  Wasm endpoints pay more
        # because all of it is WASI-mediated.
        overhead = (
            cost_model.http_request_overhead_wasm
            if sender_in_wasm or receiver_in_wasm
            else cost_model.http_request_overhead_native
        )
        self.source_kernel.ledger.charge(
            CostCategory.HTTP,
            overhead,
            cpu_domain=CpuDomain.USER,
            label="http-overhead:%s" % self.name,
        )
        sender.charge_cpu(CpuDomain.USER, overhead)

        request_bytes = body.size + cost_model.http_header_bytes
        on_wire = body.with_size(request_bytes) if body.is_virtual else Payload.from_bytes(
            body.data + b"\r\n" * (cost_model.http_header_bytes // 2)
        )

        if self._connection is None or not self.reuse_connections:
            self._connection = TcpConnection(
                self.source_kernel, self.target_kernel, self.link, name="%s-conn" % self.name
            )
            self._connection.establish(sender, receiver)
        connection = self._connection

        before = self.source_kernel.ledger.clock.now
        connection.send(sender, on_wire, wasi_mediated=sender_in_wasm)
        if self.link.is_remote:
            self._source_nic.transmit(sender, request_bytes)
            self._target_nic.receive(receiver, request_bytes)
        delivered = connection.recv(receiver, wasi_mediated=receiver_in_wasm)
        wire_seconds = self.source_kernel.ledger.clock.now - before

        self.requests += 1
        # Strip the synthetic header bytes again so the receiver sees the body.
        if delivered.is_virtual:
            response_body = body
        else:
            response_body = Payload.from_bytes(delivered.data[: body.size], body.content_type)
        return HttpResponse(
            status=200,
            body=response_body,
            request_bytes=request_bytes,
            wire_seconds=wire_seconds,
        )
