"""Network interface cards.

The NIC's role in the reproduction is bookkeeping: it counts packets and
bytes handed to the wire and charges the (small) per-packet kernel work of
driving the device.  Roadrunner explicitly does *not* bypass the NIC/kernel
the way RDMA does (Sec. 4.3), so both Roadrunner and the baselines pass
through here.
"""

from __future__ import annotations

from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.sim.ledger import CostCategory, CpuDomain

#: Per-packet driver/interrupt cost, folded across interrupt coalescing.
PER_PACKET_SECONDS = 0.15e-6


class Nic:
    """A node's network interface."""

    def __init__(self, kernel: Kernel, name: str = "eth0", mtu: int = 1500) -> None:
        if mtu <= 0:
            raise ValueError("mtu must be positive")
        self.kernel = kernel
        self.name = name
        self.mtu = mtu
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.rx_packets = 0

    def _packets(self, nbytes: int) -> int:
        if nbytes <= 0:
            return 1
        return -(-nbytes // self.mtu)

    def transmit(self, process: Process, nbytes: int) -> float:
        """Charge the driver work of sending ``nbytes`` and count packets."""
        packets = self._packets(nbytes)
        seconds = packets * PER_PACKET_SECONDS
        self.kernel.ledger.charge(
            CostCategory.NETWORK,
            seconds,
            cpu_domain=CpuDomain.KERNEL,
            label="nic-tx:%s" % self.name,
        )
        process.charge_cpu(CpuDomain.KERNEL, seconds)
        self.tx_bytes += nbytes
        self.tx_packets += packets
        return seconds

    def receive(self, process: Process, nbytes: int) -> float:
        """Charge the driver work of receiving ``nbytes`` and count packets."""
        packets = self._packets(nbytes)
        seconds = packets * PER_PACKET_SECONDS
        self.kernel.ledger.charge(
            CostCategory.NETWORK,
            seconds,
            cpu_domain=CpuDomain.KERNEL,
            label="nic-rx:%s" % self.name,
        )
        process.charge_cpu(CpuDomain.KERNEL, seconds)
        self.rx_bytes += nbytes
        self.rx_packets += packets
        return seconds
