"""Cluster topology: which nodes exist and which links connect them.

The experiments use two flavours: a single node (intra-node experiments,
Figs. 7 and 9) and a two-node edge-cloud pair connected by a shaped link
(inter-node experiments, Figs. 6, 8 and 10).  The topology answers one
question for Roadrunner's router: is the target function on the same node,
and if not, which link do we cross?
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.net.link import LoopbackLink, NetworkLink
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL


class TopologyError(ValueError):
    """Raised for unknown nodes or missing links."""


class Topology:
    """An undirected graph of node names connected by links."""

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.cost_model = cost_model
        self._nodes: Dict[str, LoopbackLink] = {}
        self._links: Dict[Tuple[str, str], NetworkLink] = {}

    def add_node(self, name: str) -> None:
        if not name:
            raise TopologyError("node name must be non-empty")
        if name in self._nodes:
            raise TopologyError("node %r already exists" % name)
        self._nodes[name] = LoopbackLink(self.cost_model, name="lo:%s" % name)

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def connect(
        self,
        a: str,
        b: str,
        bandwidth: Optional[float] = None,
        rtt: Optional[float] = None,
    ) -> NetworkLink:
        """Create a link between nodes ``a`` and ``b``."""
        self._require(a)
        self._require(b)
        if a == b:
            raise TopologyError("use the loopback link for same-node traffic")
        key = self._key(a, b)
        if key in self._links:
            raise TopologyError(
                "nodes %r and %r are already connected by %r" % (a, b, self._links[key].name)
            )
        link = NetworkLink(self.cost_model, bandwidth=bandwidth, rtt=rtt, name="%s<->%s" % (a, b))
        self._links[key] = link
        return link

    def link_between(self, a: str, b: str) -> NetworkLink:
        """The link to use for traffic from ``a`` to ``b`` (loopback if same node)."""
        self._require(a)
        self._require(b)
        if a == b:
            return self._nodes[a]
        key = self._key(a, b)
        if key not in self._links:
            raise TopologyError("nodes %r and %r are not connected" % (a, b))
        return self._links[key]

    def colocated(self, a: str, b: str) -> bool:
        self._require(a)
        self._require(b)
        return a == b

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _require(self, name: str) -> None:
        if name not in self._nodes:
            raise TopologyError("unknown node %r" % name)

    # -- convenience constructors ------------------------------------------------

    @classmethod
    def single_node(cls, cost_model: CostModel = DEFAULT_COST_MODEL, name: str = "node-a") -> "Topology":
        topo = cls(cost_model)
        topo.add_node(name)
        return topo

    @classmethod
    def edge_cloud_pair(
        cls,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        edge: str = "edge",
        cloud: str = "cloud",
        bandwidth: Optional[float] = None,
        rtt: Optional[float] = None,
    ) -> "Topology":
        """The paper's two-node testbed."""
        topo = cls(cost_model)
        topo.add_node(edge)
        topo.add_node(cloud)
        topo.connect(edge, cloud, bandwidth=bandwidth, rtt=rtt)
        return topo
