"""Container substrate: images, OCI bundles, a RunC-like runtime, containerd.

The container stack plays two roles in the reproduction: it is the *upper
bound* baseline (RunC functions exchanging data over HTTP with native-speed
serialization, Sec. 6.1) and it supplies the cold-start comparison of
Fig. 2a.  It also provides the OCI-bundle packaging that lets Roadrunner's
shim appear to the orchestrator as an ordinary container (Sec. 3.2.2).
"""

from repro.container.image import ContainerImage, WasmImage
from repro.container.oci import OciBundle, OciRuntimeSpec
from repro.container.runc import RunCRuntime, ContainerSandbox
from repro.container.containerd import Containerd, SandboxHandle

__all__ = [
    "ContainerImage",
    "WasmImage",
    "OciBundle",
    "OciRuntimeSpec",
    "RunCRuntime",
    "ContainerSandbox",
    "Containerd",
    "SandboxHandle",
]
