"""OCI bundles and runtime specs.

Roadrunner "encapsulates each Wasm VM in an OCI-compliant runtime bundle,
enabling interoperability with container runtime managers such as containerd"
(Sec. 3.2.2).  A bundle is a root filesystem plus a runtime spec; here it is a
small value object that both RunC sandboxes and Roadrunner shims are packaged
into, so the orchestrator treats them identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.container.image import ContainerImage, WasmImage


class OciError(ValueError):
    """Raised for malformed bundles or specs."""


@dataclass(frozen=True)
class OciRuntimeSpec:
    """The subset of ``config.json`` the reproduction cares about."""

    memory_limit_bytes: int = 512 * 1024 * 1024
    cpu_quota_cores: float = 1.0
    env: Tuple[Tuple[str, str], ...] = ()
    args: Tuple[str, ...] = ("/entrypoint",)

    def __post_init__(self) -> None:
        if self.memory_limit_bytes <= 0:
            raise OciError("memory limit must be positive")
        if self.cpu_quota_cores <= 0:
            raise OciError("cpu quota must be positive")

    def env_dict(self) -> Dict[str, str]:
        return dict(self.env)


@dataclass(frozen=True)
class OciBundle:
    """A runnable bundle: image + spec + the runtime class that executes it."""

    name: str
    image: Union[ContainerImage, WasmImage]
    spec: OciRuntimeSpec = field(default_factory=OciRuntimeSpec)
    #: "runc" for containers, "roadrunner-shim" / "wasmedge-shim" for Wasm VMs.
    runtime_class: str = "runc"
    annotations: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise OciError("bundle name must be non-empty")
        if not self.runtime_class:
            raise OciError("runtime_class must be non-empty")

    @property
    def is_wasm(self) -> bool:
        return isinstance(self.image, WasmImage)

    def annotation(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for k, v in self.annotations:
            if k == key:
                return v
        return default
