"""A RunC-like low-level container runtime.

RunC is the paper's performance upper bound: functions run as native
processes directly on the host kernel, so they pay no Wasm VM I/O and their
serialization runs at native speed.  The runtime models cold start (image
unpack, namespace/cgroup setup) for Fig. 2a and creates sandbox processes
whose CPU and memory land in their own cgroups.
"""

from __future__ import annotations

from typing import Optional

from repro.container.image import ContainerImage
from repro.container.oci import OciBundle, OciError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.ledger import CostCategory, CostLedger, CpuDomain


class RunCError(RuntimeError):
    """Raised for invalid sandbox operations."""


class ContainerSandbox:
    """A running container: a process in its own cgroup."""

    def __init__(self, name: str, bundle: OciBundle, process: Process) -> None:
        self.name = name
        self.bundle = bundle
        self.process = process
        self.running = True

    @property
    def cgroup(self):
        return self.process.cgroup

    def stop(self) -> None:
        if not self.running:
            raise RunCError("sandbox %r is already stopped" % self.name)
        self.process.exit()
        self.running = False


class RunCRuntime:
    """Creates container sandboxes on one node."""

    def __init__(
        self,
        kernel: Kernel,
        ledger: CostLedger,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.kernel = kernel
        self.ledger = ledger
        self.cost_model = cost_model
        self.sandboxes_created = 0

    def cold_start_time(self, image: ContainerImage) -> float:
        """Image unpack plus sandbox setup (namespaces, cgroups, runc exec)."""
        unpack = self.cost_model.transfer_time(image.size_bytes, self.cost_model.image_unpack_bandwidth)
        return unpack + self.cost_model.container_sandbox_setup

    def create(
        self,
        bundle: OciBundle,
        charge_cold_start: bool = False,
        name: Optional[str] = None,
    ) -> ContainerSandbox:
        """Create (and optionally cold-start) a sandbox for ``bundle``."""
        if bundle.is_wasm:
            raise OciError(
                "bundle %r targets a Wasm image; use the Wasm runtime shim instead" % bundle.name
            )
        if charge_cold_start:
            self.ledger.charge(
                CostCategory.COLD_START,
                self.cold_start_time(bundle.image),
                cpu_domain=CpuDomain.USER,
                nbytes=bundle.image.size_bytes,
                copied=True,
                label="runc-cold-start:%s" % bundle.name,
            )
        self.sandboxes_created += 1
        sandbox_name = name or "%s-%d" % (bundle.name, self.sandboxes_created)
        baseline = int(self.cost_model.container_baseline_rss_mb * 1024 * 1024)
        process = self.kernel.create_process(sandbox_name, baseline_rss_bytes=baseline)
        return ContainerSandbox(name=sandbox_name, bundle=bundle, process=process)
