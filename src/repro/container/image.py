"""Container and Wasm images.

Fig. 2a contrasts a ~77 MB Docker image against a ~3.19 MB Wasm binary for the
same function; image size drives pull/unpack time and therefore cold start.
"""

from __future__ import annotations

from dataclasses import dataclass

MiB = 1024 * 1024


class ImageError(ValueError):
    """Raised for invalid image definitions."""


@dataclass(frozen=True)
class ContainerImage:
    """An OCI container image (base OS layers + application layer)."""

    name: str
    size_bytes: int = 77 * MiB
    layers: int = 6

    def __post_init__(self) -> None:
        if not self.name:
            raise ImageError("image name must be non-empty")
        if self.size_bytes <= 0:
            raise ImageError("image size must be positive")
        if self.layers < 1:
            raise ImageError("an image has at least one layer")

    @classmethod
    def hello_world(cls) -> "ContainerImage":
        """The paper's "Hello World" container (~76.9 MB)."""
        return cls(name="hello-world:latest", size_bytes=int(76.9 * MiB))

    @classmethod
    def resize_image(cls) -> "ContainerImage":
        """The paper's "Resize Image" container (~76.8 MB)."""
        return cls(name="resize-image:latest", size_bytes=int(76.8 * MiB), layers=8)


@dataclass(frozen=True)
class WasmImage:
    """A Wasm binary packaged for distribution (no base OS)."""

    name: str
    size_bytes: int = int(3.19 * MiB)

    def __post_init__(self) -> None:
        if not self.name:
            raise ImageError("image name must be non-empty")
        if self.size_bytes <= 0:
            raise ImageError("image size must be positive")

    @classmethod
    def hello_world(cls) -> "WasmImage":
        """The paper's "Hello World" Wasm binary (~47.8 KB)."""
        return cls(name="hello-world.wasm", size_bytes=47_800)

    @classmethod
    def resize_image(cls) -> "WasmImage":
        """The paper's "Resize Image" Wasm binary (~3.19 MB)."""
        return cls(name="resize-image.wasm", size_bytes=int(3.19 * MiB))
