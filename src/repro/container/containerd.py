"""A containerd-like high-level container manager.

Containerd sits between the orchestrator and the low-level runtimes.  Its job
here is dispatch: a bundle whose runtime class is ``runc`` becomes a container
sandbox, a bundle whose runtime class names a Wasm shim is handed to the shim
factory registered for it.  It also keeps the snapshot/worfklow metadata the
Roadrunner shim consults when validating user-space (same-VM) colocation
(Sec. 4.1: "the shim validates using the containerd snapshot").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.container.oci import OciBundle
from repro.container.runc import ContainerSandbox, RunCRuntime


class ContainerdError(RuntimeError):
    """Raised for unknown runtime classes or duplicate sandbox names."""


@dataclass
class SandboxHandle:
    """What containerd returns to the orchestrator for a started workload."""

    name: str
    runtime_class: str
    bundle: OciBundle
    #: The concrete sandbox object (ContainerSandbox or a shim-specific type).
    sandbox: object
    workflow: str = "default"
    tenant: str = "default"


class Containerd:
    """High-level manager dispatching bundles to registered runtimes."""

    def __init__(self, runc: RunCRuntime) -> None:
        self._runc = runc
        self._shim_factories: Dict[str, Callable[[OciBundle], object]] = {}
        self._handles: Dict[str, SandboxHandle] = {}

    def register_shim(self, runtime_class: str, factory: Callable[[OciBundle], object]) -> None:
        """Register a shim (e.g. Roadrunner) for a runtime class."""
        if not runtime_class:
            raise ContainerdError("runtime_class must be non-empty")
        self._shim_factories[runtime_class] = factory

    def start(
        self,
        bundle: OciBundle,
        workflow: str = "default",
        tenant: str = "default",
        charge_cold_start: bool = False,
    ) -> SandboxHandle:
        """Start a workload from ``bundle`` using the appropriate runtime."""
        if bundle.name in self._handles:
            raise ContainerdError("a sandbox named %r is already running" % bundle.name)
        if bundle.runtime_class == "runc":
            sandbox: object = self._runc.create(bundle, charge_cold_start=charge_cold_start)
        elif bundle.runtime_class in self._shim_factories:
            sandbox = self._shim_factories[bundle.runtime_class](bundle)
        else:
            raise ContainerdError("no runtime registered for class %r" % bundle.runtime_class)
        handle = SandboxHandle(
            name=bundle.name,
            runtime_class=bundle.runtime_class,
            bundle=bundle,
            sandbox=sandbox,
            workflow=workflow,
            tenant=tenant,
        )
        self._handles[bundle.name] = handle
        return handle

    def stop(self, name: str) -> None:
        if name not in self._handles:
            raise ContainerdError("no sandbox named %r" % name)
        handle = self._handles.pop(name)
        if isinstance(handle.sandbox, ContainerSandbox):
            handle.sandbox.stop()

    def handle(self, name: str) -> SandboxHandle:
        if name not in self._handles:
            raise ContainerdError("no sandbox named %r" % name)
        return self._handles[name]

    def snapshot(self, workflow: str) -> List[SandboxHandle]:
        """All sandboxes belonging to one workflow (the colocation snapshot)."""
        return [h for h in self._handles.values() if h.workflow == workflow]

    def same_workflow_and_tenant(self, a: str, b: str) -> bool:
        """The trust check behind Roadrunner's user-space mode."""
        ha, hb = self.handle(a), self.handle(b)
        return ha.workflow == hb.workflow and ha.tenant == hb.tenant

    @property
    def running(self) -> List[str]:
        return sorted(self._handles)
