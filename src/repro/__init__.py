"""repro: a Python reproduction of Roadrunner (MIDDLEWARE 2025).

Roadrunner is a sidecar shim that gives WebAssembly-based serverless
functions near-zero-copy, serialization-free data transfer in three modes:
user space (same Wasm VM), kernel space (same host, Unix-socket IPC) and
network (virtual data hose built on splice/vmsplice).  This package
re-implements the system and every substrate it depends on — Wasm VM and
linear memory, kernel pipes/sockets/cgroups, network links, serialization,
containers and a serverless platform — plus the paper's full evaluation
harness.

Quickstart::

    from repro import (
        Cluster, Orchestrator, FunctionSpec, RoadrunnerChannel,
        SequenceWorkflow, Invoker, Payload, RuntimeKind,
    )

    cluster = Cluster.single_node()
    orchestrator = Orchestrator(cluster)
    specs = [
        FunctionSpec("ingest", runtime=RuntimeKind.ROADRUNNER, workflow="wf"),
        FunctionSpec("infer", runtime=RuntimeKind.ROADRUNNER, workflow="wf"),
    ]
    orchestrator.deploy_all(specs, share_vm_key="wf", materialize=True)
    channel = RoadrunnerChannel(cluster)
    result = Invoker(orchestrator, channel).invoke(
        SequenceWorkflow(["ingest", "infer"]), Payload.from_text("hello")
    )
    print(result.total_latency_s, result.aggregate.serialization_s)
"""

from repro.payload import Payload, PayloadError
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.ledger import ClusterLedger, CostCategory, CostLedger, CpuDomain, NodeLedger
from repro.wasm.runtime import RuntimeKind
from repro.platform.cluster import Cluster
from repro.platform.function import FunctionSpec
from repro.platform.orchestrator import Orchestrator
from repro.platform.invoker import Invoker, WorkflowResult
from repro.platform.workflow import FanInWorkflow, FanOutWorkflow, SequenceWorkflow, Workflow
from repro.core.config import RoadrunnerConfig
from repro.core.router import RoadrunnerChannel, TransferMode, TransferModeRouter
from repro.core.user_space import UserSpaceChannel
from repro.core.kernel_space import KernelSpaceChannel
from repro.core.network import NetworkChannel
from repro.baselines.runc_http import RunCHttpChannel
from repro.baselines.wasmedge_http import WasmEdgeHttpChannel

__version__ = "1.0.0"

__all__ = [
    "Payload",
    "PayloadError",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "CostCategory",
    "ClusterLedger",
    "CostLedger",
    "NodeLedger",
    "CpuDomain",
    "RuntimeKind",
    "Cluster",
    "FunctionSpec",
    "Orchestrator",
    "Invoker",
    "WorkflowResult",
    "Workflow",
    "SequenceWorkflow",
    "FanOutWorkflow",
    "FanInWorkflow",
    "RoadrunnerConfig",
    "RoadrunnerChannel",
    "TransferMode",
    "TransferModeRouter",
    "UserSpaceChannel",
    "KernelSpaceChannel",
    "NetworkChannel",
    "RunCHttpChannel",
    "WasmEdgeHttpChannel",
    "__version__",
]
