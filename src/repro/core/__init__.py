"""Roadrunner core: the shim, its data-access APIs and the three channels.

This is the paper's primary contribution.  The public surface is:

* :class:`~repro.core.api.FunctionDataApi` — the guest-side data access API
  (Table 1): ``allocate_memory``, ``deallocate_memory``, ``read_memory_wasm``,
  ``locate_memory_region``, ``send_to_host``;
* :class:`~repro.core.shim.RoadrunnerShim` — the sidecar that mediates all
  memory access, enforces region registration and bounds checks, and moves
  data in and out of the Wasm VM;
* the three data-passing channels —
  :class:`~repro.core.user_space.UserSpaceChannel` (same Wasm VM),
  :class:`~repro.core.kernel_space.KernelSpaceChannel` (same host, Unix-socket
  IPC) and :class:`~repro.core.network.NetworkChannel` (remote hosts, virtual
  data hose with splice/vmsplice);
* :class:`~repro.core.router.RoadrunnerChannel` — a facade that picks the
  right mode from function placement, which is what applications normally use.
"""

from repro.core.config import RoadrunnerConfig
from repro.core.registry import MemoryRegion, MemoryRegionRegistry, RegistryError
from repro.core.api import FunctionDataApi
from repro.core.shim import RoadrunnerShim, ShimError
from repro.core.data_hose import VirtualDataHose
from repro.core.user_space import UserSpaceChannel
from repro.core.kernel_space import KernelSpaceChannel
from repro.core.network import NetworkChannel
from repro.core.router import RoadrunnerChannel, TransferMode, TransferModeRouter

__all__ = [
    "RoadrunnerConfig",
    "MemoryRegion",
    "MemoryRegionRegistry",
    "RegistryError",
    "FunctionDataApi",
    "RoadrunnerShim",
    "ShimError",
    "VirtualDataHose",
    "UserSpaceChannel",
    "KernelSpaceChannel",
    "NetworkChannel",
    "RoadrunnerChannel",
    "TransferMode",
    "TransferModeRouter",
]
