"""Kernel-space data transfer: co-located functions, separate sandboxes (Fig. 4b).

Each function runs in its own Wasm VM with its own shim; the two shims
exchange the payload over a Unix-domain socket.  The payload is never
serialized — the shim reads raw bytes out of the source VM and writes raw
bytes into the target VM — but it does cross the user/kernel boundary twice
(once per shim), which is the IPC overhead the paper discusses for this mode.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.base import RoadrunnerChannelBase
from repro.kernel.sockets import UnixSocketPair
from repro.payload import Payload
from repro.platform.channel import ChannelError
from repro.platform.deployment import DeployedFunction
from repro.sim.ledger import CostCategory, CpuDomain


class KernelSpaceChannel(RoadrunnerChannelBase):
    """Roadrunner (Kernel space): same host, Unix-socket IPC, serialization-free."""

    mode = "roadrunner-kernel"
    single_threaded = False

    @property
    def fanout_overhead_s(self) -> float:
        """Async-executor cost per outstanding IPC request (Sec. 6.4)."""
        return self.cluster.cost_model.async_task_overhead

    def __init__(self, cluster, config=None) -> None:
        super().__init__(cluster, config)
        self._sockets: Dict[Tuple[str, str], UnixSocketPair] = {}

    def supports(self, source: DeployedFunction, target: DeployedFunction) -> bool:
        return (
            source.is_wasm
            and target.is_wasm
            and source.colocated_with(target)
            and not source.shares_vm_with(target)
        )

    def _socket(self, source: DeployedFunction, target: DeployedFunction) -> UnixSocketPair:
        key = (source.name, target.name)
        if key not in self._sockets:
            kernel = self.cluster.node(source.node_name).kernel
            socket = UnixSocketPair(
                kernel,
                name="uds:%s->%s" % key,
                batch_factor=self.config.effective_batch_factor,
            )
            socket.connect(source.process, target.process)
            self._sockets[key] = socket
        return self._sockets[key]

    def _move(
        self, source: DeployedFunction, target: DeployedFunction, payload: Payload
    ) -> Payload:
        if not source.colocated_with(target):
            raise ChannelError(
                "kernel-space transfer requires %r and %r on the same node"
                % (source.name, target.name)
            )
        if source.shares_vm_with(target):
            raise ChannelError(
                "functions sharing a VM should use the user-space channel instead"
            )
        source_shim = self._stage_source_output(source, payload)
        target_shim = self.shim_for(target)

        # Steps 1-2 (Fig. 4b): shim A reads the registered region out of VM A.
        data, _, _ = source_shim.read_output()
        if not self.config.serialization_free:
            data = source.serializer.serialize(data, cgroup=source.cgroup)

        # Step 3: shim A sends the raw bytes to shim B over the Unix socket.
        socket = self._socket(source, target)
        socket.send(source.process, data)

        # Step 4: shim B wakes up and receives the payload.
        received = socket.recv(target.process)
        if not self.config.serialization_free:
            received = target.serializer.deserialize(
                received, original_size=payload.size, cgroup=target.cgroup
            )

        # Steps 5-6: shim B allocates in VM B and writes the incoming data.
        target_shim.write_input(received)

        # Per-request async bookkeeping on both shims (tokio-style executors).
        async_cost = self.cluster.cost_model.async_task_overhead
        self.node_ledger(source).charge(
            CostCategory.IPC,
            async_cost,
            cpu_domain=CpuDomain.USER,
            label="ipc-async-overhead",
        )
        source.process.charge_cpu(CpuDomain.USER, async_cost)
        return received
