"""The transfer-mode router and the Roadrunner facade channel.

Roadrunner "optimizes communication regardless of the scheduler's decisions"
(Sec. 2.2): whatever the orchestrator did, the shim picks the best available
mode from where the two functions actually ended up — same VM, same node, or
different nodes.  :class:`RoadrunnerChannel` wraps the three concrete
channels behind that decision, and is the channel applications normally use.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.config import RoadrunnerConfig
from repro.core.kernel_space import KernelSpaceChannel
from repro.core.network import NetworkChannel
from repro.core.user_space import UserSpaceChannel
from repro.payload import Payload
from repro.platform.channel import ChannelError, DataPassingChannel, TransferOutcome
from repro.platform.cluster import Cluster
from repro.platform.deployment import DeployedFunction


class TransferMode(enum.Enum):
    """Roadrunner's three communication modes."""

    USER_SPACE = "user_space"
    KERNEL_SPACE = "kernel_space"
    NETWORK = "network"


class TransferModeRouter:
    """Chooses a transfer mode from the placement of the two functions."""

    def __init__(self, config: Optional[RoadrunnerConfig] = None) -> None:
        self.config = config if config is not None else RoadrunnerConfig.default()

    def select(self, source: DeployedFunction, target: DeployedFunction) -> TransferMode:
        if not source.is_wasm or not target.is_wasm:
            raise ChannelError(
                "Roadrunner attaches to Wasm functions; %r or %r is not one"
                % (source.name, target.name)
            )
        if source.shares_vm_with(target) and (
            not self.config.enforce_trust_domain or source.same_trust_domain(target)
        ):
            return TransferMode.USER_SPACE
        if source.colocated_with(target):
            return TransferMode.KERNEL_SPACE
        return TransferMode.NETWORK


class RoadrunnerChannel(DataPassingChannel):
    """Facade over the three Roadrunner channels, dispatching by placement."""

    mode = "roadrunner"
    single_threaded = False
    fanout_overhead_s = 0.0

    def __init__(self, cluster: Cluster, config: Optional[RoadrunnerConfig] = None) -> None:
        super().__init__(cluster.ledger)
        self.cluster = cluster
        self.config = config if config is not None else RoadrunnerConfig.default()
        self.router = TransferModeRouter(self.config)
        self._channels = {
            TransferMode.USER_SPACE: UserSpaceChannel(cluster, self.config),
            TransferMode.KERNEL_SPACE: KernelSpaceChannel(cluster, self.config),
            TransferMode.NETWORK: NetworkChannel(cluster, self.config),
        }
        self.last_mode: Optional[TransferMode] = None

    def channel_for(self, mode: TransferMode) -> DataPassingChannel:
        return self._channels[mode]

    def supports(self, source: DeployedFunction, target: DeployedFunction) -> bool:
        return source.is_wasm and target.is_wasm

    # The facade delegates the full transfer (measurement included) to the
    # selected concrete channel so its mode label appears in the metrics.
    def transfer(
        self, source: DeployedFunction, target: DeployedFunction, payload: Payload
    ) -> TransferOutcome:
        mode = self.router.select(source, target)
        self.last_mode = mode
        outcome = self._channels[mode].transfer(source, target, payload)
        self.transfers += 1
        return outcome

    def _move(self, source, target, payload):  # pragma: no cover - delegation only
        raise NotImplementedError("RoadrunnerChannel delegates to its concrete channels")
