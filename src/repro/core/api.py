"""The guest-side Roadrunner data-access API (the paper's Table 1).

These are the calls a function compiled to Wasm makes from *inside* the VM:

==============================  =====================================================
``allocate_memory(len)``        reserve linear memory for incoming data
``deallocate_memory(address)``  release it again
``read_memory_wasm(addr, len)`` read data the shim delivered
``locate_memory_region(data)``  find the (pointer, length) of data to be sent
``send_to_host(addr, len)``     hand that region to the shim for transfer
==============================  =====================================================

They operate on the function's own linear memory, so they cost (almost)
nothing; the expensive part — moving data across the VM boundary — happens in
the shim and is charged there.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.registry import MemoryRegionRegistry
from repro.payload import Payload
from repro.wasm.module import WasmInstance


class ApiError(RuntimeError):
    """Raised for invalid guest-side API usage."""


class FunctionDataApi:
    """Table 1's "Function"-side API, bound to one module instance."""

    def __init__(self, instance: WasmInstance, registry: MemoryRegionRegistry,
                 workflow: str = "default", tenant: str = "default") -> None:
        self.instance = instance
        self.registry = registry
        self.workflow = workflow
        self.tenant = tenant

    # -- memory management ------------------------------------------------------

    def allocate_memory(self, length: int) -> int:
        """Allocate ``length`` bytes of linear memory; returns the address."""
        return self.instance.memory.allocate(length)

    def deallocate_memory(self, address: int) -> None:
        """Release a previous allocation."""
        self.instance.memory.deallocate(address)

    # -- data management --------------------------------------------------------------

    def read_memory_wasm(self, address: int, length: int) -> Payload:
        """Read data from the function's own linear memory."""
        return self.instance.memory.read_payload(address, length)

    def locate_memory_region(self, data: Payload) -> Tuple[int, int]:
        """Return the (pointer, length) of ``data`` inside linear memory.

        If the payload is not yet resident (the usual case for a freshly
        produced result), it is stored first — that is the guest writing its
        own output, not a transfer copy.
        """
        if data.size <= 0:
            raise ApiError("cannot locate an empty payload")
        address = self.instance.memory.store_payload(data)
        return self.instance.memory.locate(address)

    def send_to_host(self, address: int, length: int) -> None:
        """Expose [address, address+length) to the shim for transfer."""
        # Validate against the function's own memory before registering: a
        # bogus region must fail in the guest, not later in the shim.
        self.instance.memory.read_payload(address, length)
        self.registry.register(
            self.instance.name,
            address,
            length,
            workflow=self.workflow,
            tenant=self.tenant,
        )
