"""Network data transfer: remote functions, virtual data hose (Fig. 5, Alg. 1).

The source shim reads the registered region out of its Wasm VM, ``vmsplice``s
the user pages into a message-sized pipe (the virtual data hose), ``splice``s
the hose into a TCP socket, and the kernel/NIC put the bytes on the wire.  On
the target node the arriving socket buffer is spliced into another hose,
mapped out without a copy, and written into the target VM's linear memory.
Unlike RDMA the CPU still drives the transfer — but no byte is copied between
user and kernel space and nothing is serialized.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.base import RoadrunnerChannelBase
from repro.core.data_hose import VirtualDataHose
from repro.kernel.pipes import DEFAULT_PIPE_CAPACITY
from repro.kernel.sockets import TcpConnection
from repro.payload import Payload
from repro.platform.channel import ChannelError
from repro.platform.deployment import DeployedFunction
from repro.sim.ledger import CostCategory, CpuDomain


class NetworkChannel(RoadrunnerChannelBase):
    """Roadrunner (Network): inter-node, serialization-free, near-zero copy."""

    mode = "roadrunner-network"
    single_threaded = False

    @property
    def fanout_overhead_s(self) -> float:
        return self.cluster.cost_model.async_task_overhead

    def __init__(self, cluster, config=None) -> None:
        super().__init__(cluster, config)
        self._connections: Dict[Tuple[str, str], TcpConnection] = {}
        self._hose_counter = 0

    def supports(self, source: DeployedFunction, target: DeployedFunction) -> bool:
        return source.is_wasm and target.is_wasm and not source.colocated_with(target)

    def _connection(self, source: DeployedFunction, target: DeployedFunction) -> TcpConnection:
        key = (source.name, target.name)
        if key not in self._connections:
            connection = TcpConnection(
                source_kernel=self.cluster.node(source.node_name).kernel,
                target_kernel=self.cluster.node(target.node_name).kernel,
                link=self.cluster.link_between(source.node_name, target.node_name),
                name="rr-tcp:%s->%s" % key,
            )
            connection.establish(source.process, target.process)
            self._connections[key] = connection
        return self._connections[key]

    def _hose_capacity(self, payload: Payload) -> int:
        if self.config.size_hose_to_message:
            return max(payload.size, DEFAULT_PIPE_CAPACITY)
        return DEFAULT_PIPE_CAPACITY

    def _move(
        self, source: DeployedFunction, target: DeployedFunction, payload: Payload
    ) -> Payload:
        if source.colocated_with(target):
            raise ChannelError(
                "network transfer is for remote functions; %r and %r share node %s"
                % (source.name, target.name, source.node_name)
            )
        source_shim = self._stage_source_output(source, payload)
        target_shim = self.shim_for(target)
        source_kernel = self.cluster.node(source.node_name).kernel
        target_kernel = self.cluster.node(target.node_name).kernel

        # Algorithm 1, source side -------------------------------------------------
        # read_memory_host: pull the registered region out of the Wasm VM.
        data, _, _ = source_shim.read_output()
        if not self.config.serialization_free:
            data = source.serializer.serialize(data, cgroup=source.cgroup)

        self._hose_counter += 1
        connection = self._connection(source, target)
        with VirtualDataHose(
            kernel=source_kernel,
            owner=source.process,
            capacity=self._hose_capacity(data),
            name="vdh-src-%d" % self._hose_counter,
        ) as source_hose:
            if self.config.zero_copy:
                source_hose.gift(data)  # vmsplice(vdh, address, length)
                connection.send_spliced(source.process, source_hose.pipe)  # splice(vdh, socket)
            else:
                # Ablation: conventional copies through the same pipe+socket path.
                source_hose.push_copy(data)
                staged = source_hose.drain_to_user()
                connection.send(source.process, staged)

        # Algorithm 1, target side --------------------------------------------------
        with VirtualDataHose(
            kernel=target_kernel,
            owner=target.process,
            capacity=self._hose_capacity(data),
            name="vdh-dst-%d" % self._hose_counter,
        ) as target_hose:
            if self.config.zero_copy:
                connection.recv_spliced(target.process, target_hose.pipe)  # splice(socket, vdh)
                received = target_hose.drain_mapped()  # vmsplice(vdh, target_memory)
            else:
                received = connection.recv(target.process)

        if not self.config.serialization_free:
            received = target.serializer.deserialize(
                received, original_size=payload.size, cgroup=target.cgroup
            )

        # write_memory_host into the target VM (the unavoidable Wasm I/O).
        target_shim.write_input(received)

        # Async bookkeeping for the two shims' executors.
        async_cost = self.cluster.cost_model.async_task_overhead
        self.node_ledger(source).charge(
            CostCategory.NETWORK,
            async_cost,
            cpu_domain=CpuDomain.USER,
            label="network-async-overhead",
        )
        source.process.charge_cpu(CpuDomain.USER, async_cost)
        return received
