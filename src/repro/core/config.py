"""Roadrunner configuration knobs.

The defaults reproduce the paper's system.  The ablation benchmarks flip the
two headline mechanisms off one at a time (zero-copy pipes vs copying pipes,
serialization-free pointer passing vs codec-based transfer) to show that each
contributes to the reported gains, and expose the IPC chunk size the
kernel-space mode uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


class ConfigError(ValueError):
    """Raised for invalid configuration values."""


@dataclass(frozen=True)
class RoadrunnerConfig:
    """Tunable behaviour of the Roadrunner shim and channels."""

    #: Use vmsplice/splice page gifting on the network path.  When False the
    #: network channel degrades to conventional copies (ablation).
    zero_copy: bool = True
    #: Pass pointers/raw memory instead of running a codec.  When False every
    #: transfer serializes like the baselines do (ablation).
    serialization_free: bool = True
    #: Chunk size for kernel-space IPC transfers.
    ipc_chunk_bytes: int = 256 * 1024
    #: Batch multiple socket syscalls per kernel entry (sendmmsg-style).  The
    #: paper lists syscall batching as future work (Sec. 9); it is implemented
    #: here as an opt-in extension.
    syscall_batching: bool = False
    #: How many chunk-sized writes are coalesced per kernel entry when
    #: batching is enabled.
    syscall_batch_factor: int = 8
    #: Size the virtual data hose to the message (True) or keep the kernel's
    #: default pipe size and chunk (False).
    size_hose_to_message: bool = True
    #: Apply bounds checks before every shim read/write (Sec. 3.1).  Disabling
    #: them is not supported in production; the flag exists so tests can show
    #: that the checks are what rejects out-of-bounds access.
    enforce_bounds_checks: bool = True
    #: Require source and target to share workflow and tenant before allowing
    #: user-space (same-VM) transfers.
    enforce_trust_domain: bool = True

    def __post_init__(self) -> None:
        if self.ipc_chunk_bytes <= 0:
            raise ConfigError("ipc_chunk_bytes must be positive")
        if self.syscall_batch_factor < 1:
            raise ConfigError("syscall_batch_factor must be >= 1")

    def with_overrides(self, **kwargs) -> "RoadrunnerConfig":
        return replace(self, **kwargs)

    @classmethod
    def default(cls) -> "RoadrunnerConfig":
        return cls()

    @classmethod
    def no_zero_copy(cls) -> "RoadrunnerConfig":
        """Ablation: keep the shim but copy through the kernel conventionally."""
        return cls(zero_copy=False)

    @classmethod
    def with_serialization(cls) -> "RoadrunnerConfig":
        """Ablation: keep the data paths but serialize like the baselines."""
        return cls(serialization_free=False)

    @classmethod
    def with_syscall_batching(cls, factor: int = 8) -> "RoadrunnerConfig":
        """Extension (paper future work): coalesce socket syscalls."""
        return cls(syscall_batching=True, syscall_batch_factor=factor)

    @property
    def effective_batch_factor(self) -> int:
        """The batch factor the channels should apply (1 when disabled)."""
        return self.syscall_batch_factor if self.syscall_batching else 1
