"""The Roadrunner shim: the sidecar that mediates every memory access.

One shim runs beside each function sandbox (Sec. 3.2.2).  It owns the host
side of the data-access API: it reads the regions functions registered via
``send_to_host``, allocates space in a target function and writes incoming
data there.  Functions never see each other's memory — the shim enforces
region registration, trust-domain checks and bounds checks before any
read or write (Sec. 3.1, "Shared Memory").
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.api import FunctionDataApi
from repro.core.config import RoadrunnerConfig
from repro.core.registry import MemoryRegionRegistry, RegistryError
from repro.kernel.kernel import Kernel
from repro.payload import Payload
from repro.platform.cluster import Cluster
from repro.platform.deployment import DeployedFunction
from repro.wasm.vm import HostMemoryApi


class ShimError(RuntimeError):
    """Raised when the shim refuses or cannot complete an operation."""


class RoadrunnerShim:
    """The sidecar shim for one deployed Wasm function."""

    def __init__(
        self,
        deployed: DeployedFunction,
        cluster: Cluster,
        registry: Optional[MemoryRegionRegistry] = None,
        config: Optional[RoadrunnerConfig] = None,
    ) -> None:
        if not deployed.is_wasm or deployed.vm is None or deployed.instance is None:
            raise ShimError(
                "the Roadrunner shim attaches to Wasm deployments; %r is not one" % deployed.name
            )
        self.deployed = deployed
        self.cluster = cluster
        self.registry = registry if registry is not None else MemoryRegionRegistry()
        self.config = config if config is not None else RoadrunnerConfig.default()
        self.host_api: HostMemoryApi = deployed.vm.host_api()

    # -- identity ---------------------------------------------------------------

    @property
    def function_name(self) -> str:
        return self.deployed.name

    @property
    def node_name(self) -> str:
        return self.deployed.node_name

    @property
    def kernel(self) -> Kernel:
        return self.cluster.node(self.deployed.node_name).kernel

    @property
    def process(self):
        return self.deployed.process

    def guest_api(self) -> FunctionDataApi:
        """The guest-side API handed to the function at load time."""
        return FunctionDataApi(
            self.deployed.instance,
            self.registry,
            workflow=self.deployed.spec.workflow,
            tenant=self.deployed.spec.tenant,
        )

    # -- egress: read what the function wants to send ---------------------------------

    def read_output(self) -> Tuple[Payload, int, int]:
        """Read the function's most recently registered output region.

        Returns the payload plus the (address, length) it came from, after
        validating registration and bounds.
        """
        try:
            region = self.registry.latest(self.function_name)
        except RegistryError as exc:
            raise ShimError(str(exc)) from exc
        self._validate(region.address, region.length)
        payload = self.host_api.read_memory_host(
            self.function_name, region.address, region.length
        )
        return payload, region.address, region.length

    def read_region(self, address: int, length: int) -> Payload:
        """Read an explicit registered region (used by tests and the router)."""
        self._validate(address, length)
        return self.host_api.read_memory_host(self.function_name, address, length)

    # -- ingress: deliver data into the function -----------------------------------------

    def write_input(self, payload: Payload) -> int:
        """Allocate space in the function and write ``payload`` there.

        Returns the guest address.  The region is registered on behalf of the
        function so follow-up reads by the guest (or a downstream transfer)
        pass validation.
        """
        if payload.size <= 0:
            raise ShimError("refusing to deliver an empty payload")
        address = self.host_api.allocate_memory(self.function_name, payload.size)
        self.host_api.write_memory_host(self.function_name, payload, address)
        self.registry.register(
            self.function_name,
            address,
            payload.size,
            workflow=self.deployed.spec.workflow,
            tenant=self.deployed.spec.tenant,
        )
        return address

    def release_input(self, address: int) -> None:
        """Free a previously delivered input buffer."""
        self.host_api.deallocate_memory(self.function_name, address)
        try:
            self.registry.unregister(self.function_name, address)
        except RegistryError:
            pass

    # -- trust and bounds -----------------------------------------------------------------

    def trusts(self, other: "RoadrunnerShim") -> bool:
        """Whether user-space (same-VM) sharing with ``other`` is allowed."""
        if not self.config.enforce_trust_domain:
            return True
        return self.deployed.same_trust_domain(other.deployed)

    def _validate(self, address: int, length: int) -> None:
        if not self.config.enforce_bounds_checks:
            return
        try:
            self.registry.validate_access(
                self.function_name,
                address,
                length,
                workflow=self.deployed.spec.workflow,
                tenant=self.deployed.spec.tenant,
            )
        except RegistryError as exc:
            raise ShimError(str(exc)) from exc
        memory_size = self.deployed.instance.memory.size_bytes
        if address + length > memory_size and self.deployed.instance.memory.materialized:
            raise ShimError(
                "region [%d, %d) exceeds the linear memory of %r"
                % (address, address + length, self.function_name)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RoadrunnerShim(function=%r, node=%r)" % (self.function_name, self.node_name)
