"""Memory-region registry: the shim's access-control surface.

"To prevent unauthorized access and cross-tenant interference, Roadrunner
restricts shim-to-Wasm access to pre-registered memory regions and applies
bounds checking before any read or write operation" (Sec. 3.1).  Functions
announce the regions they want to expose via ``send_to_host``; every shim
access is validated against this registry before touching linear memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class RegistryError(RuntimeError):
    """Raised for unregistered or out-of-bounds region access."""


@dataclass(frozen=True)
class MemoryRegion:
    """One registered (function, address, length) region."""

    function: str
    address: int
    length: int
    workflow: str = "default"
    tenant: str = "default"

    def __post_init__(self) -> None:
        if not self.function:
            raise RegistryError("region needs a function name")
        if self.address < 0 or self.length <= 0:
            raise RegistryError(
                "invalid region bounds (address=%d, length=%d)" % (self.address, self.length)
            )

    @property
    def end(self) -> int:
        return self.address + self.length

    def contains(self, address: int, length: int) -> bool:
        return address >= self.address and address + length <= self.end


class MemoryRegionRegistry:
    """Registered regions, keyed by function name."""

    def __init__(self) -> None:
        self._regions: Dict[str, List[MemoryRegion]] = {}

    def register(
        self,
        function: str,
        address: int,
        length: int,
        workflow: str = "default",
        tenant: str = "default",
    ) -> MemoryRegion:
        """Record that ``function`` exposes [address, address+length)."""
        region = MemoryRegion(
            function=function, address=address, length=length, workflow=workflow, tenant=tenant
        )
        self._regions.setdefault(function, []).append(region)
        return region

    def unregister(self, function: str, address: int) -> None:
        regions = self._regions.get(function, [])
        remaining = [r for r in regions if r.address != address]
        if len(remaining) == len(regions):
            raise RegistryError(
                "function %r has no registered region at address %d" % (function, address)
            )
        self._regions[function] = remaining

    def regions(self, function: str) -> List[MemoryRegion]:
        return list(self._regions.get(function, []))

    def latest(self, function: str) -> MemoryRegion:
        """The most recently registered region of ``function`` (its output)."""
        regions = self._regions.get(function)
        if not regions:
            raise RegistryError("function %r has not registered any memory region" % function)
        return regions[-1]

    def validate_access(
        self,
        function: str,
        address: int,
        length: int,
        workflow: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> MemoryRegion:
        """Check that [address, address+length) lies inside a registered region.

        When ``workflow``/``tenant`` are given they must match the region's
        trust domain (cross-tenant access is refused even if the bounds fit).
        """
        for region in self._regions.get(function, []):
            if region.contains(address, length):
                if workflow is not None and region.workflow != workflow:
                    raise RegistryError(
                        "workflow %r may not access a region registered by workflow %r"
                        % (workflow, region.workflow)
                    )
                if tenant is not None and region.tenant != tenant:
                    raise RegistryError(
                        "tenant %r may not access a region registered by tenant %r"
                        % (tenant, region.tenant)
                    )
                return region
        raise RegistryError(
            "access to [%d, %d) of function %r is not covered by any registered region"
            % (address, address + length, function)
        )

    def clear(self, function: Optional[str] = None) -> None:
        if function is None:
            self._regions.clear()
        else:
            self._regions.pop(function, None)

    def __len__(self) -> int:
        return sum(len(v) for v in self._regions.values())
