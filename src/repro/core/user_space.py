"""User-space data transfer: both functions inside one Wasm VM (Fig. 4a).

The functions share one isolation sandbox and therefore one process; the shim
reads the source module's registered region straight out of linear memory,
allocates space in the target module and writes the data there.  No
serialization, no syscalls, no user/kernel crossings — the only cost is the
Wasm VM I/O of reaching into linear memory, which is exactly the breakdown
the paper reports for this mode.
"""

from __future__ import annotations

from repro.core.base import RoadrunnerChannelBase
from repro.payload import Payload
from repro.platform.channel import ChannelError
from repro.platform.deployment import DeployedFunction
from repro.sim.ledger import CostCategory, CpuDomain


class UserSpaceChannel(RoadrunnerChannelBase):
    """Roadrunner (User space): intra-VM, near-zero copy, serialization-free."""

    mode = "roadrunner-user"
    #: The functions and the shim share one *process*, but the shim drives
    #: memory copies from host threads, so fan-out branches still spread over
    #: the node's cores; the cost shows up as concentrated user-space CPU in
    #: that single sandbox (Sec. 6.5).
    single_threaded = False
    fanout_overhead_s = 0.0

    def supports(self, source: DeployedFunction, target: DeployedFunction) -> bool:
        return (
            source.is_wasm
            and target.is_wasm
            and source.shares_vm_with(target)
            and (not self.config.enforce_trust_domain or source.same_trust_domain(target))
        )

    def _move(
        self, source: DeployedFunction, target: DeployedFunction, payload: Payload
    ) -> Payload:
        if not source.shares_vm_with(target):
            raise ChannelError(
                "user-space transfer requires %r and %r to share a Wasm VM"
                % (source.name, target.name)
            )
        source_shim = self._stage_source_output(source, payload)
        target_shim = self.shim_for(target)
        if not source_shim.trusts(target_shim):
            raise ChannelError(
                "functions %r and %r are not in the same trust domain" % (source.name, target.name)
            )

        # Steps 2-5 of Fig. 4a: the shim reads the source's region, allocates
        # in the target and writes the incoming data.
        data, _, _ = source_shim.read_output()
        if not self.config.serialization_free:
            # Ablation: run the codec anyway, like a conventional runtime would.
            data = source.serializer.serialize(data, cgroup=source.cgroup)
            data = target.serializer.deserialize(
                data, original_size=payload.size, cgroup=target.cgroup
            )
        target_shim.write_input(data)

        # The transfer stays within one process: charge the (tiny) metadata
        # cost of updating the shim's region table on the owning node.
        self.node_ledger(source).charge(
            CostCategory.TRANSFER,
            source.vm.cost_model.region_metadata_overhead,
            cpu_domain=CpuDomain.USER,
            label="user-space-handoff",
        )
        source.process.charge_cpu(CpuDomain.USER, source.vm.cost_model.region_metadata_overhead)
        return data
