"""The virtual data hose: a purpose-built kernel pipe for one transfer.

"Roadrunner establishes a virtual data hose that allows data written to it to
prompt the kernel to allocate memory buffers and retain them in its address
space.  When a read operation occurs, Roadrunner leverages the kernel to
reuse the same memory pages for the target function instead of copying the
data" (Sec. 1).  Concretely it is a pipe sized to the message, fed with
``vmsplice`` and drained with ``splice`` (Algorithm 1).
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.buffers import KernelBuffer
from repro.kernel.kernel import Kernel
from repro.kernel.pipes import DEFAULT_PIPE_CAPACITY, Pipe
from repro.kernel.process import Process
from repro.payload import Payload
from repro.sim.ledger import CostCategory, CpuDomain


class DataHoseError(RuntimeError):
    """Raised for invalid data-hose usage."""


class VirtualDataHose:
    """A single-use, message-sized kernel pipe."""

    def __init__(
        self,
        kernel: Kernel,
        owner: Process,
        capacity: Optional[int] = None,
        name: str = "vdh",
    ) -> None:
        self.kernel = kernel
        self.owner = owner
        self.name = name
        self._closed = False
        # Creating the hose costs a pipe2() plus an F_SETPIPE_SZ resize.
        self.kernel.syscall(owner, "pipe2(%s)" % name)
        self.kernel.ledger.charge(
            CostCategory.SPLICE,
            self.kernel.cost_model.data_hose_setup_overhead,
            cpu_domain=CpuDomain.KERNEL,
            label="hose-setup:%s" % name,
        )
        owner.charge_cpu(CpuDomain.KERNEL, self.kernel.cost_model.data_hose_setup_overhead)
        self.pipe = Pipe(
            kernel=kernel,
            capacity=capacity if capacity is not None else DEFAULT_PIPE_CAPACITY,
            name=name,
        )

    # -- producer side ---------------------------------------------------------------

    def gift(self, payload: Payload) -> KernelBuffer:
        """vmsplice the payload's pages into the hose (zero-copy)."""
        self._require_open()
        return self.pipe.vmsplice_in(self.owner, payload)

    def push_copy(self, payload: Payload) -> KernelBuffer:
        """Conventional write into the hose (used by the no-zero-copy ablation)."""
        self._require_open()
        return self.pipe.write(self.owner, payload)

    # -- consumer side ------------------------------------------------------------------

    def drain_to_user(self) -> Payload:
        """Read the hose contents back into user space (one copy)."""
        self._require_open()
        return self.pipe.read(self.owner)

    def drain_mapped(self) -> Payload:
        """Map the hose contents into the consumer without a copy.

        Models the receive-side ``vmsplice`` of Algorithm 1: the pages the
        kernel buffered from the socket are reused for the target function's
        staging buffer instead of being copied out.
        """
        self._require_open()
        buffer = self.pipe.pop_buffer(self.owner)
        self.kernel.syscall(self.owner, "vmsplice(%s)" % self.name)
        self.kernel.splice_pages(self.owner, buffer.size, label="vmsplice-out:%s" % self.name)
        return buffer.payload

    # -- lifecycle ----------------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close_all(self) -> None:
        """Close both ends of the hose (Algorithm 1's ``close_all``)."""
        if self._closed:
            return
        self.kernel.syscall(self.owner, "close(%s)" % self.name, count=2)
        self._closed = True

    def _require_open(self) -> None:
        if self._closed:
            raise DataHoseError("data hose %r is closed" % self.name)

    def __enter__(self) -> "VirtualDataHose":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close_all()
