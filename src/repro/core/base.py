"""Shared plumbing for Roadrunner's three channels: shim management.

Each deployed function gets exactly one shim; the channels share them through
this base class so the user-space, kernel-space and network modes all see the
same registries and the same configuration.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import RoadrunnerConfig
from repro.core.shim import RoadrunnerShim
from repro.platform.channel import DataPassingChannel
from repro.platform.cluster import Cluster
from repro.platform.deployment import DeployedFunction
from repro.sim.ledger import CostCategory, CpuDomain


class RoadrunnerChannelBase(DataPassingChannel):
    """Base class holding the per-function shim cache and the config."""

    def __init__(self, cluster: Cluster, config: Optional[RoadrunnerConfig] = None) -> None:
        super().__init__(cluster.ledger)
        self.cluster = cluster
        self.config = config if config is not None else RoadrunnerConfig.default()
        self._shims: Dict[str, RoadrunnerShim] = {}

    def shim_for(self, deployed: DeployedFunction) -> RoadrunnerShim:
        """The (single) shim attached to ``deployed``, created on first use."""
        if deployed.name not in self._shims:
            self._shims[deployed.name] = RoadrunnerShim(
                deployed=deployed, cluster=self.cluster, config=self.config
            )
        return self._shims[deployed.name]

    def _stage_source_output(self, source: DeployedFunction, payload) -> RoadrunnerShim:
        """Run the guest-side half of every transfer.

        The source function locates its output in linear memory and hands the
        (pointer, length) to its shim via ``send_to_host`` — steps 1-2 of
        Figs. 4a/4b and Algorithm 1's ``FunctionA``.
        """
        shim = self.shim_for(source)
        guest_api = shim.guest_api()
        address, length = guest_api.locate_memory_region(payload)
        guest_api.send_to_host(address, length)
        # Residual data-preparation cost: locating the region and pinning its
        # page range.  This is Roadrunner's entire "serialization" component —
        # orders of magnitude below a codec pass, but not literally zero,
        # which is how the paper plots it (Figs. 7c/8c on a log axis).
        cost_model = self.cluster.cost_model
        preparation = cost_model.region_metadata_overhead + cost_model.transfer_time(
            payload.size, cost_model.pointer_registration_bandwidth
        )
        # Guest-side work happens on the source's host: charge its shard.
        self.node_ledger(source).charge(
            CostCategory.SERIALIZATION,
            preparation,
            cpu_domain=CpuDomain.USER,
            nbytes=0,
            label="pointer-handoff:%s" % source.name,
        )
        source.process.charge_cpu(CpuDomain.USER, preparation)
        return shim

    def _move(self, source, target, payload):  # pragma: no cover - abstract passthrough
        raise NotImplementedError
