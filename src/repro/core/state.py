"""Shim-managed short-term function state (the paper's future work, Sec. 9).

"Finally, we aim to introduce function state management ... allowing
Roadrunner to efficiently handle stateless and stateful serverless
functions."  This extension keeps named state objects inside the function's
own linear memory, managed by the shim: a stateful function can persist a
value across invocations without serializing it to an external store, and a
successor invocation (or a colocated function of the same workflow) can read
it back through the ordinary registered-region path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.shim import RoadrunnerShim, ShimError
from repro.payload import Payload


class StateError(RuntimeError):
    """Raised for unknown keys or trust violations."""


@dataclass
class _StateEntry:
    key: str
    address: int
    size: int
    version: int


class ShimStateStore:
    """Named, versioned state slots kept in the function's linear memory."""

    def __init__(self, shim: RoadrunnerShim, capacity_bytes: int = 64 * 1024 * 1024) -> None:
        if capacity_bytes <= 0:
            raise StateError("capacity_bytes must be positive")
        self.shim = shim
        self.capacity_bytes = capacity_bytes
        self._entries: Dict[str, _StateEntry] = {}
        self._used_bytes = 0

    # -- write path -----------------------------------------------------------------

    def put(self, key: str, payload: Payload) -> int:
        """Store (or replace) the state object under ``key``; returns its version."""
        if not key:
            raise StateError("state key must be non-empty")
        if payload.size <= 0:
            raise StateError("state payloads must be non-empty")
        new_used = self._used_bytes - self._size_of(key) + payload.size
        if new_used > self.capacity_bytes:
            raise StateError(
                "state store over capacity: %d bytes needed, %d available"
                % (new_used, self.capacity_bytes)
            )
        previous = self._entries.get(key)
        if previous is not None:
            self.shim.release_input(previous.address)
        address = self.shim.write_input(payload)
        version = (previous.version + 1) if previous is not None else 1
        self._entries[key] = _StateEntry(key=key, address=address, size=payload.size, version=version)
        self._used_bytes = new_used
        return version

    # -- read path --------------------------------------------------------------------

    def get(self, key: str) -> Payload:
        """Read the current value of ``key`` (through the shim, bounds-checked)."""
        entry = self._require(key)
        try:
            return self.shim.read_region(entry.address, entry.size)
        except ShimError as exc:  # pragma: no cover - defensive
            raise StateError(str(exc)) from exc

    def version(self, key: str) -> int:
        return self._require(key).version

    def keys(self) -> List[str]:
        return sorted(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    # -- removal -----------------------------------------------------------------------

    def delete(self, key: str) -> None:
        entry = self._require(key)
        self.shim.release_input(entry.address)
        self._used_bytes -= entry.size
        del self._entries[key]

    def clear(self) -> None:
        for key in list(self._entries):
            self.delete(key)

    # -- sharing ------------------------------------------------------------------------

    def share_with(self, other: "ShimStateStore", key: str) -> int:
        """Hand the state object to another function's store (same trust domain)."""
        if not self.shim.trusts(other.shim):
            raise StateError(
                "functions %r and %r are not in the same trust domain"
                % (self.shim.function_name, other.shim.function_name)
            )
        return other.put(key, self.get(key))

    def _require(self, key: str) -> _StateEntry:
        if key not in self._entries:
            raise StateError("no state stored under key %r" % key)
        return self._entries[key]

    def _size_of(self, key: str) -> int:
        entry = self._entries.get(key)
        return entry.size if entry is not None else 0
