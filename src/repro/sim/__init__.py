"""Simulation substrate: clock, calibrated cost model and cost ledgers.

Every other substrate (Wasm VM, kernel, network, container runtime) charges
the time, CPU and memory consequences of its operations to a
:class:`~repro.sim.ledger.CostLedger` using rates from a
:class:`~repro.sim.costs.CostModel`.  Cluster accounting is sharded: each
node charges its own :class:`~repro.sim.ledger.NodeLedger` and a
:class:`~repro.sim.ledger.ClusterLedger` merges the shards into one
deterministic view.  The experiment harness reads the (merged) ledger to
produce the latency / throughput / CPU / RAM series reported in the paper.
"""

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.ledger import (
    Charge,
    ClusterLedger,
    CostCategory,
    CostLedger,
    CpuDomain,
    LedgerSnapshot,
    MemoryMeter,
    NodeLedger,
)
from repro.sim.engine import Event, EventLoop, ParallelTracks, PartitionedEventLoop

__all__ = [
    "SimClock",
    "CostModel",
    "Charge",
    "ClusterLedger",
    "CostCategory",
    "CostLedger",
    "CpuDomain",
    "LedgerSnapshot",
    "MemoryMeter",
    "NodeLedger",
    "Event",
    "EventLoop",
    "ParallelTracks",
    "PartitionedEventLoop",
]
