"""Simulation substrate: clock, calibrated cost model and cost ledger.

Every other substrate (Wasm VM, kernel, network, container runtime) charges
the time, CPU and memory consequences of its operations to a
:class:`~repro.sim.ledger.CostLedger` using rates from a
:class:`~repro.sim.costs.CostModel`.  The experiment harness reads the ledger
to produce the latency / throughput / CPU / RAM series reported in the paper.
"""

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.ledger import Charge, CostCategory, CostLedger, CpuDomain, MemoryMeter
from repro.sim.engine import Event, EventLoop, ParallelTracks

__all__ = [
    "SimClock",
    "CostModel",
    "Charge",
    "CostCategory",
    "CostLedger",
    "CpuDomain",
    "MemoryMeter",
    "Event",
    "EventLoop",
    "ParallelTracks",
]
