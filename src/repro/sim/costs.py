"""Calibrated cost model for the Roadrunner reproduction.

The original evaluation ran on two 4-core Xeon VMs with WasmEdge, RunC,
Linux pipes/sockets and a traffic-shaped link.  This module captures that
testbed as a set of rates and fixed overheads.  Substrate operations convert
byte counts into simulated seconds (and CPU-seconds) through these rates —
the experiment code never computes latency directly.

Calibration targets (from the paper):

* serialization is ~15 % of a container transfer and ~60 % of a Wasm
  transfer (Fig. 2b);
* Roadrunner user space cuts intra-node latency by 44-89 % vs WasmEdge and
  10-80 % vs RunC; kernel space by 76-83 % vs WasmEdge (Sec. 6.3);
* inter-node totals drop 62 % vs WasmEdge and 7 % vs RunC, serialization
  drops 97 % / 46 % (Sec. 6.3, Fig. 6);
* throughput improves up to 69x vs WasmEdge for small payloads (Sec. 1).

The absolute values are synthetic but internally consistent; only the shape
of the comparison is claimed, and EXPERIMENTS.md records paper-vs-measured
per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

#: Wasm page size in bytes (the Wasm spec fixes this at 64 KiB).
WASM_PAGE_SIZE = 64 * 1024

#: Host (kernel) page size in bytes.
HOST_PAGE_SIZE = 4096

MiB = 1024 * 1024
GiB = 1024 * MiB


class CostModelError(ValueError):
    """Raised for invalid cost-model parameters."""


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise CostModelError("%s must be positive, got %r" % (name, value))


@dataclass(frozen=True)
class CostModel:
    """Rates and fixed overheads describing the emulated testbed.

    All bandwidth-like fields are bytes/second, all overhead-like fields are
    seconds, unless stated otherwise.
    """

    # ---- raw memory movement -------------------------------------------------
    #: Plain user-space memcpy bandwidth.
    memcpy_bandwidth: float = 8.0 * GiB
    #: Copy across the user/kernel boundary (read/write syscalls, socket buffers).
    user_kernel_copy_bandwidth: float = 6.0 * GiB
    #: Copy in or out of Wasm linear memory through the runtime host API
    #: ("Wasm VM I/O" in the paper's Fig. 6).
    wasm_memory_copy_bandwidth: float = 4.0 * GiB
    #: Extra per-call overhead of a WASI host call (capability checks, arg
    #: marshalling).
    wasi_call_overhead: float = 2.0e-6

    # ---- syscalls and scheduling ----------------------------------------------
    #: Fixed cost of entering/leaving the kernel once.
    syscall_overhead: float = 1.2e-6
    #: Cost of a context switch between processes.
    context_switch_overhead: float = 3.0e-6
    #: Largest chunk moved per read/write/sendmsg syscall.
    syscall_chunk_size: int = 256 * 1024

    # ---- serialization ---------------------------------------------------------
    #: Native (container) serialization rate: strings/bytes into an HTTP body
    #: are close to a copy.
    native_serialize_bandwidth: float = 4.5 * GiB
    #: Native deserialization rate.
    native_deserialize_bandwidth: float = 5.0 * GiB
    #: Wasm serialization rate: single-threaded, allocation-heavy, and the
    #: output must additionally cross the Wasm VM boundary.
    wasm_serialize_bandwidth: float = 220.0 * MiB
    #: Wasm deserialization rate.
    wasm_deserialize_bandwidth: float = 270.0 * MiB
    #: Fixed per-message serialization setup (buffer allocation, framing).
    serialize_setup_overhead: float = 150.0e-6
    #: Size inflation of the serialized representation (framing, escaping).
    serialized_inflation: float = 1.045

    # ---- Roadrunner-specific costs ---------------------------------------------
    #: Per host page cost of vmsplice/splice page-reference gifting.
    splice_page_overhead: float = 0.06e-6
    #: Fixed cost of creating a virtual data hose (pipe pair + fcntl sizing).
    data_hose_setup_overhead: float = 40.0e-6
    #: Per-message metadata cost of locating/registering a memory region
    #: (pointer + length exchange, bounds registration).
    region_metadata_overhead: float = 8.0e-6
    #: Data-preparation rate of Roadrunner's pointer-based hand-off (walking
    #: and pinning the page range of the registered region).  This is the
    #: residual "serialization" component the paper reports for Roadrunner —
    #: orders of magnitude cheaper than a codec, but not literally zero.
    pointer_registration_bandwidth: float = 48.0 * GiB

    # ---- IPC (kernel-space mode) -------------------------------------------------
    #: Effective Unix-domain-socket streaming bandwidth (includes both copies).
    unix_socket_bandwidth: float = 0.8 * GiB
    #: Fixed connection/accept cost for a Unix socket.
    unix_socket_setup_overhead: float = 60.0e-6
    #: Async-executor overhead per outstanding IPC request (tokio-style).
    async_task_overhead: float = 35.0e-6

    # ---- HTTP / loopback ---------------------------------------------------------
    #: Effective loopback HTTP body bandwidth (kernel copies included).
    loopback_http_bandwidth: float = 850.0 * MiB
    #: Fixed per-request HTTP overhead for a native client/server pair.
    http_request_overhead_native: float = 3.5e-3
    #: Fixed per-request HTTP overhead when both ends run inside Wasm and all
    #: socket I/O is WASI-mediated.
    http_request_overhead_wasm: float = 22.0e-3
    #: HTTP header bytes added per request.
    http_header_bytes: int = 380

    # ---- network (inter-node) ------------------------------------------------------
    #: Effective inter-node bandwidth.  The paper's text says 100 Mbps (tc),
    #: but the magnitudes in Figs. 6/8 imply a far higher effective rate; the
    #: default matches the figures and the discrepancy is documented.
    network_bandwidth: float = 105.0 * MiB
    #: Round-trip time between nodes.
    network_rtt: float = 1.0e-3
    #: Per-connection TCP setup cost (handshake at one RTT plus socket setup).
    tcp_setup_overhead: float = 1.2e-3
    #: Goodput penalty applied when every socket read/write is WASI-mediated
    #: (WasmEdge HTTP baseline): fraction of network_bandwidth achieved.
    wasi_network_efficiency: float = 0.62
    #: MTU-sized segment for per-packet accounting.
    mtu_bytes: int = 1500

    # ---- cold start (Fig. 2a) ---------------------------------------------------------
    #: Container image pull+unpack bandwidth.
    image_unpack_bandwidth: float = 180.0 * MiB
    #: Fixed container sandbox setup (namespaces, cgroups, runc exec).
    container_sandbox_setup: float = 0.45
    #: Wasm module compile/instantiate bandwidth (AOT-style load).
    wasm_instantiate_bandwidth: float = 55.0 * MiB
    #: Fixed Wasm VM creation cost.
    wasm_vm_setup: float = 0.012

    # ---- resources -----------------------------------------------------------------
    #: Number of cores per node (used to express CPU usage as a percentage).
    cores_per_node: int = 4
    #: Baseline resident memory of a RunC sandbox (MB).
    container_baseline_rss_mb: float = 38.0
    #: Baseline resident memory of a Wasm VM sandbox (MB).
    wasm_baseline_rss_mb: float = 9.0

    def __post_init__(self) -> None:
        for name in (
            "memcpy_bandwidth",
            "user_kernel_copy_bandwidth",
            "wasm_memory_copy_bandwidth",
            "native_serialize_bandwidth",
            "native_deserialize_bandwidth",
            "wasm_serialize_bandwidth",
            "wasm_deserialize_bandwidth",
            "unix_socket_bandwidth",
            "loopback_http_bandwidth",
            "network_bandwidth",
            "image_unpack_bandwidth",
            "wasm_instantiate_bandwidth",
        ):
            _require_positive(name, getattr(self, name))
        if not 0 < self.wasi_network_efficiency <= 1:
            raise CostModelError(
                "wasi_network_efficiency must be in (0, 1], got %r"
                % self.wasi_network_efficiency
            )
        if self.cores_per_node < 1:
            raise CostModelError("cores_per_node must be >= 1")
        if self.syscall_chunk_size < 1 or self.mtu_bytes < 1:
            raise CostModelError("chunk sizes must be >= 1")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def paper_testbed(cls) -> "CostModel":
        """The default model calibrated against the paper's evaluation."""
        return cls()

    @classmethod
    def constrained_edge(cls) -> "CostModel":
        """A genuinely 100 Mbps / 1 ms testbed, matching the paper's text."""
        return cls(network_bandwidth=100.0e6 / 8.0, network_rtt=1.0e-3)

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # -- derived helpers ---------------------------------------------------------

    def transfer_time(self, nbytes: int, bandwidth: float) -> float:
        """Seconds to move ``nbytes`` at ``bandwidth`` bytes/second."""
        if nbytes < 0:
            raise CostModelError("nbytes must be non-negative, got %r" % nbytes)
        _require_positive("bandwidth", bandwidth)
        return nbytes / bandwidth

    def memcpy_time(self, nbytes: int) -> float:
        return self.transfer_time(nbytes, self.memcpy_bandwidth)

    def user_kernel_copy_time(self, nbytes: int) -> float:
        return self.transfer_time(nbytes, self.user_kernel_copy_bandwidth)

    def wasm_io_time(self, nbytes: int) -> float:
        return self.transfer_time(nbytes, self.wasm_memory_copy_bandwidth)

    def serialize_time(self, nbytes: int, in_wasm: bool) -> float:
        rate = self.wasm_serialize_bandwidth if in_wasm else self.native_serialize_bandwidth
        return self.serialize_setup_overhead + self.transfer_time(nbytes, rate)

    def deserialize_time(self, nbytes: int, in_wasm: bool) -> float:
        rate = (
            self.wasm_deserialize_bandwidth if in_wasm else self.native_deserialize_bandwidth
        )
        return self.serialize_setup_overhead + self.transfer_time(nbytes, rate)

    def serialized_size(self, nbytes: int) -> int:
        """Size of the serialized representation of an ``nbytes`` payload."""
        return int(nbytes * self.serialized_inflation) + self.http_header_bytes

    def syscall_count(self, nbytes: int) -> int:
        """Number of read/write syscalls needed to move ``nbytes``."""
        if nbytes <= 0:
            return 1
        return -(-nbytes // self.syscall_chunk_size)

    def syscall_time(self, count: int) -> float:
        return count * self.syscall_overhead

    def splice_time(self, nbytes: int) -> float:
        """Page-gifting cost of vmsplice/splice for ``nbytes``."""
        pages = -(-nbytes // HOST_PAGE_SIZE) if nbytes > 0 else 1
        return pages * self.splice_page_overhead

    def network_transfer_time(self, nbytes: int, wasi_mediated: bool = False) -> float:
        """One-way wire time for ``nbytes`` plus half an RTT of latency."""
        bandwidth = self.network_bandwidth
        if wasi_mediated:
            bandwidth *= self.wasi_network_efficiency
        return self.network_rtt / 2.0 + self.transfer_time(nbytes, bandwidth)

    def describe(self) -> Dict[str, float]:
        """A flat dict of every parameter (useful for experiment metadata)."""
        out: Dict[str, float] = {}
        for name in self.__dataclass_fields__:
            out[name] = getattr(self, name)
        return out


#: Default shared model; experiments construct their own copies when they
#: need to override parameters (e.g. the constrained-edge ablation).
DEFAULT_COST_MODEL = CostModel.paper_testbed()
