"""Cost ledger: the single place where simulated time, CPU and memory accrue.

Every substrate operation (a memcpy, a syscall, a serialization pass, a wire
transfer) records a :class:`Charge`.  The experiment harness then derives the
paper's metrics from the ledger:

* total latency           -> sum of wall-time charges,
* serialization latency   -> charges in the SERIALIZATION/DESERIALIZATION categories,
* Wasm VM I/O             -> charges in the WASM_IO category,
* CPU usage (user/kernel) -> CPU-seconds per :class:`CpuDomain`,
* RAM                     -> peak of the attached :class:`MemoryMeter`,
* copies                  -> bytes copied vs bytes moved by reference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.sim.clock import SimClock


class CostCategory(enum.Enum):
    """What kind of work a charge represents (the paper's breakdown axes)."""

    SERIALIZATION = "serialization"
    DESERIALIZATION = "deserialization"
    TRANSFER = "transfer"
    WASM_IO = "wasm_io"
    MEMCPY = "memcpy"
    SYSCALL = "syscall"
    CONTEXT_SWITCH = "context_switch"
    IPC = "ipc"
    NETWORK = "network"
    SPLICE = "splice"
    HTTP = "http"
    COLD_START = "cold_start"
    COMPUTE = "compute"
    OTHER = "other"


#: Categories counted as "serialization overhead" in the paper's plots.
SERIALIZATION_CATEGORIES = (CostCategory.SERIALIZATION, CostCategory.DESERIALIZATION)


class CpuDomain(enum.Enum):
    """Where CPU time is spent, mirroring cgroup user/system accounting."""

    USER = "user"
    KERNEL = "kernel"
    #: Work that consumes wall time but no local CPU (e.g. wire propagation).
    NONE = "none"


class LedgerError(ValueError):
    """Raised for invalid charges."""


@dataclass(frozen=True)
class Charge:
    """A single accounted operation."""

    category: CostCategory
    seconds: float
    cpu_domain: CpuDomain = CpuDomain.USER
    nbytes: int = 0
    copied: bool = False
    label: str = ""
    timestamp: float = 0.0
    #: How many underlying operations this charge batches (e.g. syscalls).
    units: int = 1

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise LedgerError("charge duration must be non-negative, got %r" % self.seconds)
        if self.nbytes < 0:
            raise LedgerError("charge nbytes must be non-negative, got %r" % self.nbytes)
        if self.units < 1:
            raise LedgerError("charge units must be >= 1, got %r" % self.units)


class MemoryMeter:
    """Tracks resident memory of one sandbox (container or Wasm VM).

    The meter follows a simple high-watermark model: allocations raise the
    current level, frees lower it, and ``peak_bytes`` records the maximum.
    """

    def __init__(self, baseline_bytes: int = 0, name: str = "") -> None:
        if baseline_bytes < 0:
            raise LedgerError("baseline_bytes must be non-negative")
        self.name = name
        self._baseline = int(baseline_bytes)
        self._current = int(baseline_bytes)
        self._peak = int(baseline_bytes)

    @property
    def current_bytes(self) -> int:
        return self._current

    @property
    def peak_bytes(self) -> int:
        return self._peak

    @property
    def peak_mb(self) -> float:
        return self._peak / (1024.0 * 1024.0)

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise LedgerError("cannot allocate a negative amount")
        self._current += nbytes
        if self._current > self._peak:
            self._peak = self._current

    def free(self, nbytes: int) -> None:
        if nbytes < 0:
            raise LedgerError("cannot free a negative amount")
        self._current = max(self._baseline, self._current - nbytes)

    def reset(self) -> None:
        self._current = self._baseline
        self._peak = self._baseline


class CostLedger:
    """Accumulates charges and advances an optional simulated clock.

    Parameters
    ----------
    clock:
        Shared simulated clock; wall-time charges advance it.  When omitted a
        private clock is created.
    """

    def __init__(self, clock: Optional[SimClock] = None, name: str = "") -> None:
        self.name = name
        self.clock = clock if clock is not None else SimClock()
        self._charges: List[Charge] = []
        self._meters: Dict[str, MemoryMeter] = {}
        self._copied_bytes = 0
        self._reference_bytes = 0
        self._syscalls = 0
        self._context_switches = 0

    # -- recording -------------------------------------------------------------

    def charge(
        self,
        category: CostCategory,
        seconds: float,
        *,
        cpu_domain: CpuDomain = CpuDomain.USER,
        nbytes: int = 0,
        copied: bool = False,
        label: str = "",
        wall_time: bool = True,
        units: int = 1,
    ) -> Charge:
        """Record one operation.

        ``wall_time=False`` records CPU/byte accounting without advancing the
        clock — used for work that overlaps another already-charged wait (for
        example the receiver-side copy that proceeds while the wire is busy).
        ``units`` records how many underlying operations the charge batches
        (e.g. chunked syscalls).
        """
        entry = Charge(
            category=category,
            seconds=seconds,
            cpu_domain=cpu_domain,
            nbytes=nbytes,
            copied=copied,
            label=label,
            timestamp=self.clock.now,
            units=units,
        )
        self._charges.append(entry)
        if wall_time and seconds:
            self.clock.advance(seconds)
        if nbytes:
            if copied:
                self._copied_bytes += nbytes
            else:
                self._reference_bytes += nbytes
        if category is CostCategory.SYSCALL:
            self._syscalls += units
        if category is CostCategory.CONTEXT_SWITCH:
            self._context_switches += 1
        return entry

    def count_syscalls(self, count: int) -> None:
        """Record additional syscalls batched into a single charge."""
        if count < 0:
            raise LedgerError("syscall count must be non-negative")
        self._syscalls += count

    def meter(self, name: str, baseline_bytes: int = 0) -> MemoryMeter:
        """Return (creating if needed) the memory meter for a sandbox."""
        if name not in self._meters:
            self._meters[name] = MemoryMeter(baseline_bytes=baseline_bytes, name=name)
        return self._meters[name]

    # -- queries -----------------------------------------------------------------

    @property
    def charges(self) -> Tuple[Charge, ...]:
        return tuple(self._charges)

    def __iter__(self) -> Iterator[Charge]:
        return iter(self._charges)

    def __len__(self) -> int:
        return len(self._charges)

    def total_seconds(self) -> float:
        """Total simulated wall time of all charges."""
        return sum(c.seconds for c in self._charges)

    def seconds(self, *categories: CostCategory) -> float:
        wanted = set(categories)
        return sum(c.seconds for c in self._charges if c.category in wanted)

    def serialization_seconds(self) -> float:
        return self.seconds(*SERIALIZATION_CATEGORIES)

    def cpu_seconds(self, domain: Optional[CpuDomain] = None) -> float:
        if domain is None:
            return sum(
                c.seconds for c in self._charges if c.cpu_domain is not CpuDomain.NONE
            )
        return sum(c.seconds for c in self._charges if c.cpu_domain is domain)

    @property
    def copied_bytes(self) -> int:
        """Bytes that were physically copied."""
        return self._copied_bytes

    @property
    def reference_bytes(self) -> int:
        """Bytes moved by reference (zero-copy paths)."""
        return self._reference_bytes

    @property
    def syscalls(self) -> int:
        return self._syscalls

    @property
    def context_switches(self) -> int:
        return self._context_switches

    def peak_memory_bytes(self) -> int:
        """Sum of per-sandbox memory peaks."""
        return sum(m.peak_bytes for m in self._meters.values())

    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes() / (1024.0 * 1024.0)

    def meters(self) -> Dict[str, MemoryMeter]:
        return dict(self._meters)

    def breakdown(self) -> Dict[str, float]:
        """Seconds per category name (stable keys for reports)."""
        out: Dict[str, float] = {}
        for c in self._charges:
            out[c.category.value] = out.get(c.category.value, 0.0) + c.seconds
        return out

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's charges into this one (no clock interaction)."""
        for c in other.charges:
            self._charges.append(c)
            if c.nbytes:
                if c.copied:
                    self._copied_bytes += c.nbytes
                else:
                    self._reference_bytes += c.nbytes
            if c.category is CostCategory.SYSCALL:
                self._syscalls += 1
            if c.category is CostCategory.CONTEXT_SWITCH:
                self._context_switches += 1
        for name, meter in other.meters().items():
            mine = self.meter(name)
            mine.allocate(meter.peak_bytes)

    def reset(self) -> None:
        self._charges.clear()
        self._meters.clear()
        self._copied_bytes = 0
        self._reference_bytes = 0
        self._syscalls = 0
        self._context_switches = 0
        self.clock.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CostLedger(name=%r, charges=%d, total=%.6fs)" % (
            self.name,
            len(self._charges),
            self.total_seconds(),
        )
