"""Cost ledgers: the places where simulated time, CPU and memory accrue.

Every substrate operation (a memcpy, a syscall, a serialization pass, a wire
transfer) records a :class:`Charge`.  The experiment harness then derives the
paper's metrics from the ledger:

* total latency           -> sum of wall-time charges,
* serialization latency   -> charges in the SERIALIZATION/DESERIALIZATION categories,
* Wasm VM I/O             -> charges in the WASM_IO category,
* CPU usage (user/kernel) -> CPU-seconds per :class:`CpuDomain`,
* RAM                     -> peak of the attached :class:`MemoryMeter`,
* copies                  -> bytes copied vs bytes moved by reference.

Accounting is *sharded per node*: each cluster node charges its own
:class:`NodeLedger`, and a :class:`ClusterLedger` aggregates the shards into
one mergeable view.  Charges carry ``(timestamp, node, seq)``, so the merged
timeline is a deterministic total order however the shards were filled —
including by concurrent workers simulating whole nodes in parallel.  Code
that only ever charges and queries one ledger (a kernel, a Wasm runtime, a
unit test) keeps using the plain :class:`CostLedger` it always did.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.sim.clock import SimClock


class CostCategory(enum.Enum):
    """What kind of work a charge represents (the paper's breakdown axes)."""

    SERIALIZATION = "serialization"
    DESERIALIZATION = "deserialization"
    TRANSFER = "transfer"
    WASM_IO = "wasm_io"
    MEMCPY = "memcpy"
    SYSCALL = "syscall"
    CONTEXT_SWITCH = "context_switch"
    IPC = "ipc"
    NETWORK = "network"
    SPLICE = "splice"
    HTTP = "http"
    COLD_START = "cold_start"
    COMPUTE = "compute"
    OTHER = "other"


#: Categories counted as "serialization overhead" in the paper's plots.
SERIALIZATION_CATEGORIES = (CostCategory.SERIALIZATION, CostCategory.DESERIALIZATION)


class CpuDomain(enum.Enum):
    """Where CPU time is spent, mirroring cgroup user/system accounting."""

    USER = "user"
    KERNEL = "kernel"
    #: Work that consumes wall time but no local CPU (e.g. wire propagation).
    NONE = "none"


class LedgerError(ValueError):
    """Raised for invalid charges."""


@dataclass(frozen=True)
class Charge:
    """A single accounted operation."""

    category: CostCategory
    seconds: float
    cpu_domain: CpuDomain = CpuDomain.USER
    nbytes: int = 0
    copied: bool = False
    label: str = ""
    timestamp: float = 0.0
    #: How many underlying operations this charge batches (e.g. syscalls).
    units: int = 1
    #: Node whose shard recorded the charge ("" for a standalone ledger).
    node: str = ""
    #: Per-shard append sequence; with ``(timestamp, node)`` it totally
    #: orders the merged cluster timeline.
    seq: int = 0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise LedgerError("charge duration must be non-negative, got %r" % self.seconds)
        if self.nbytes < 0:
            raise LedgerError("charge nbytes must be non-negative, got %r" % self.nbytes)
        if self.units < 1:
            raise LedgerError("charge units must be >= 1, got %r" % self.units)


class MemoryMeter:
    """Tracks resident memory of one sandbox (container or Wasm VM).

    The meter follows a simple high-watermark model: allocations raise the
    current level, frees lower it, and ``peak_bytes`` records the maximum.
    """

    def __init__(self, baseline_bytes: int = 0, name: str = "") -> None:
        if baseline_bytes < 0:
            raise LedgerError("baseline_bytes must be non-negative")
        self.name = name
        self._baseline = int(baseline_bytes)
        self._current = int(baseline_bytes)
        self._peak = int(baseline_bytes)

    @property
    def current_bytes(self) -> int:
        return self._current

    @property
    def peak_bytes(self) -> int:
        return self._peak

    @property
    def peak_mb(self) -> float:
        return self._peak / (1024.0 * 1024.0)

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise LedgerError("cannot allocate a negative amount")
        self._current += nbytes
        if self._current > self._peak:
            self._peak = self._current

    def free(self, nbytes: int) -> None:
        """Release ``nbytes`` of a previous allocation.

        Freeing more than is currently allocated above the baseline is an
        accounting bug (a double free, or a free with no matching allocate),
        not a rounding artefact — silently clamping to the baseline would
        mask it, so it raises instead (mirroring
        ``IngressGateway.release`` on double-release).
        """
        if nbytes < 0:
            raise LedgerError("cannot free a negative amount")
        allocated = self._current - self._baseline
        if nbytes > allocated:
            raise LedgerError(
                "meter %r cannot free %d bytes: only %d allocated above the "
                "baseline (double free?)" % (self.name, nbytes, allocated)
            )
        self._current -= nbytes

    def reset(self) -> None:
        self._current = self._baseline
        self._peak = self._baseline


class CostLedger:
    """Accumulates charges and advances an optional simulated clock.

    Parameters
    ----------
    clock:
        Shared simulated clock; wall-time charges advance it.  When omitted a
        private clock is created.
    """

    #: Node label stamped onto charges ("" for a standalone ledger).
    node_name: str = ""

    def __init__(self, clock: Optional[SimClock] = None, name: str = "") -> None:
        self.name = name
        self.clock = clock if clock is not None else SimClock()
        self._charges: List[Charge] = []
        self._meters: Dict[str, MemoryMeter] = {}
        self._copied_bytes = 0
        self._reference_bytes = 0
        self._syscalls = 0
        self._context_switches = 0
        # Running totals, maintained in charge order so each equals the
        # equivalent left-to-right scan bit-for-bit.  They turn
        # total_seconds()/seconds(cat)/cpu_seconds() from O(charges) scans
        # into O(1) lookups — the scans were a hidden quadratic for callers
        # polling totals while charging (e.g. cold-start deltas per replica).
        self._total_seconds = 0.0
        self._category_seconds: Dict[CostCategory, float] = {}
        self._domain_seconds: Dict[CpuDomain, float] = {}
        self._cpu_seconds_all = 0.0

    # -- recording -------------------------------------------------------------

    def charge(
        self,
        category: CostCategory,
        seconds: float,
        *,
        cpu_domain: CpuDomain = CpuDomain.USER,
        nbytes: int = 0,
        copied: bool = False,
        label: str = "",
        wall_time: bool = True,
        units: int = 1,
    ) -> Charge:
        """Record one operation.

        ``wall_time=False`` records CPU/byte accounting without advancing the
        clock — used for work that overlaps another already-charged wait (for
        example the receiver-side copy that proceeds while the wire is busy).
        ``units`` records how many underlying operations the charge batches
        (e.g. chunked syscalls).
        """
        entry = Charge(
            category=category,
            seconds=seconds,
            cpu_domain=cpu_domain,
            nbytes=nbytes,
            copied=copied,
            label=label,
            timestamp=self.clock.now,
            units=units,
            node=self.node_name,
            seq=len(self._charges),
        )
        self._charges.append(entry)
        self._account(entry)
        if wall_time and seconds:
            self.clock.advance(seconds)
        if category is CostCategory.SYSCALL:
            # charge() counts every batched unit; merge() folds the entry as
            # one syscall (the pre-existing convention _account preserves).
            self._syscalls += units - 1
        return entry

    def _account(self, entry: Charge) -> None:
        """Fold one charge into the running totals (in append order)."""
        seconds = entry.seconds
        category = entry.category
        domain = entry.cpu_domain
        self._total_seconds += seconds
        self._category_seconds[category] = (
            self._category_seconds.get(category, 0.0) + seconds
        )
        self._domain_seconds[domain] = self._domain_seconds.get(domain, 0.0) + seconds
        if domain is not CpuDomain.NONE:
            self._cpu_seconds_all += seconds
        if entry.nbytes:
            if entry.copied:
                self._copied_bytes += entry.nbytes
            else:
                self._reference_bytes += entry.nbytes
        if category is CostCategory.SYSCALL:
            self._syscalls += 1
        if category is CostCategory.CONTEXT_SWITCH:
            self._context_switches += 1

    def count_syscalls(self, count: int) -> None:
        """Record additional syscalls batched into a single charge."""
        if count < 0:
            raise LedgerError("syscall count must be non-negative")
        self._syscalls += count

    def meter(self, name: str, baseline_bytes: int = 0) -> MemoryMeter:
        """Return (creating if needed) the memory meter for a sandbox."""
        if name not in self._meters:
            self._meters[name] = MemoryMeter(baseline_bytes=baseline_bytes, name=name)
        return self._meters[name]

    # -- queries -----------------------------------------------------------------

    @property
    def charges(self) -> Tuple[Charge, ...]:
        return tuple(self._charges)

    def snapshot(self) -> "LedgerSnapshot":
        """A position marker for :meth:`charges_since` (cheap, O(1))."""
        return LedgerSnapshot(positions=((self.node_name, len(self._charges)),))

    def charges_since(self, snapshot: "LedgerSnapshot") -> Tuple[Charge, ...]:
        """Charges recorded after ``snapshot`` was taken, in order."""
        start = dict(snapshot.positions).get(self.node_name, 0)
        return tuple(self._charges[start:])

    def __iter__(self) -> Iterator[Charge]:
        return iter(self._charges)

    def __len__(self) -> int:
        return len(self._charges)

    def total_seconds(self) -> float:
        """Total simulated wall time of all charges."""
        return self._total_seconds

    def seconds(self, *categories: CostCategory) -> float:
        if len(categories) == 1:
            # The running per-category total accumulates in exactly the order
            # a filtered scan would visit, so the fast path is bit-identical.
            return self._category_seconds.get(categories[0], 0.0)
        # Multiple categories interleave in the charge stream; summing the
        # per-category totals would reassociate the float additions, so keep
        # the scan for the (cold) multi-category calls.
        wanted = set(categories)
        return sum(c.seconds for c in self._charges if c.category in wanted)

    def serialization_seconds(self) -> float:
        return self.seconds(*SERIALIZATION_CATEGORIES)

    def cpu_seconds(self, domain: Optional[CpuDomain] = None) -> float:
        if domain is None:
            return self._cpu_seconds_all
        return self._domain_seconds.get(domain, 0.0)

    @property
    def copied_bytes(self) -> int:
        """Bytes that were physically copied."""
        return self._copied_bytes

    @property
    def reference_bytes(self) -> int:
        """Bytes moved by reference (zero-copy paths)."""
        return self._reference_bytes

    @property
    def syscalls(self) -> int:
        return self._syscalls

    @property
    def context_switches(self) -> int:
        return self._context_switches

    def peak_memory_bytes(self) -> int:
        """Sum of per-sandbox memory peaks."""
        return sum(m.peak_bytes for m in self._meters.values())

    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes() / (1024.0 * 1024.0)

    def meters(self) -> Dict[str, MemoryMeter]:
        return dict(self._meters)

    def breakdown(self) -> Dict[str, float]:
        """Seconds per category name (stable keys for reports)."""
        # _category_seconds shares both the first-seen key order and the
        # per-key accumulation order of the old full scan.
        return {
            category.value: seconds
            for category, seconds in self._category_seconds.items()
        }

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's charges into this one (no clock interaction)."""
        for c in other.charges:
            self._charges.append(c)
            self._account(c)
        for name, meter in other.meters().items():
            mine = self.meter(name)
            mine.allocate(meter.peak_bytes)

    def reset(self) -> None:
        self._charges.clear()
        self._meters.clear()
        self._copied_bytes = 0
        self._reference_bytes = 0
        self._syscalls = 0
        self._context_switches = 0
        self._total_seconds = 0.0
        self._category_seconds.clear()
        self._domain_seconds.clear()
        self._cpu_seconds_all = 0.0
        self.clock.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CostLedger(name=%r, charges=%d, total=%.6fs)" % (
            self.name,
            len(self._charges),
            self.total_seconds(),
        )


@dataclass(frozen=True)
class LedgerSnapshot:
    """Positions into each shard's charge stream at one instant.

    Taken before a measured interval and handed back to
    :meth:`CostLedger.charges_since` /
    :meth:`ClusterLedger.charges_since`, it brackets exactly the charges
    recorded inside the interval regardless of which shard they landed on —
    the sharded replacement for slicing one global append log.
    """

    positions: Tuple[Tuple[str, int], ...]


def _merge_key(charge: Charge) -> Tuple[float, str, int]:
    """The deterministic total order of the merged cluster timeline."""
    return (charge.timestamp, charge.node, charge.seq)


class NodeLedger(CostLedger):
    """One node's cost shard.

    A :class:`NodeLedger` is a plain :class:`CostLedger` that knows which
    node it accounts for: every charge is stamped with the node name and a
    per-shard sequence number, so shards filled independently (even by
    concurrent workers) merge into one deterministic cluster timeline.
    Shard names are ``ledger:<node>`` and must be unique within a cluster.
    """

    def __init__(
        self,
        node_name: str,
        clock: Optional[SimClock] = None,
        name: Optional[str] = None,
    ) -> None:
        if not node_name:
            raise LedgerError("a node ledger needs a non-empty node name")
        super().__init__(clock=clock, name=name if name is not None else "ledger:%s" % node_name)
        self.node_name = node_name


class ClusterLedger:
    """The mergeable cluster view over per-node ledger shards.

    The cluster ledger *is not* an append log: every node charges its own
    :class:`NodeLedger` (no contention on one append path), and this view
    aggregates on demand.  ``charges`` presents the merged timeline in the
    deterministic ``(timestamp, node, seq)`` order; totals, CPU splits,
    byte counters and memory peaks sum across shards.  Cluster-scoped work
    that belongs to no node (ingress routing, gateway bookkeeping) charges
    the built-in ``cluster`` shard, which is also where the pre-shard
    ``CostLedger`` API (``charge``/``meter``/``count_syscalls``) lands, so
    existing callers keep working against ``Cluster.ledger`` unchanged.

    Parameters
    ----------
    clock:
        Simulated clock shared by every shard (serial simulation).  Shards
        built elsewhere with forked clocks can be folded in via
        :meth:`merge`, which re-synchronizes this clock to the furthest
        shard.
    backing:
        Optional existing :class:`CostLedger` to adopt as the cluster
        shard — how a cluster wraps a caller-supplied ledger so charges the
        caller records on their handle stay visible in the merged view.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        name: str = "cluster",
        backing: Optional[CostLedger] = None,
    ) -> None:
        self.name = name
        if backing is not None:
            self.clock = backing.clock
            if not backing.node_name:
                backing.node_name = "cluster"
            self._cluster_shard = backing
        else:
            self.clock = clock if clock is not None else SimClock()
            self._cluster_shard = CostLedger(clock=self.clock, name="%s:cluster" % name)
            self._cluster_shard.node_name = "cluster"
        self._shards: Dict[str, NodeLedger] = {}
        self._merged_cache: Tuple[Charge, ...] = ()
        self._merged_cache_len = 0

    # -- shard management --------------------------------------------------------

    def shard(self, node_name: str) -> NodeLedger:
        """Create (and register) the shard for ``node_name``.

        Shard names are unique: two nodes can never silently share one
        accounting namespace.
        """
        self._check_unique(node_name)
        shard = NodeLedger(node_name=node_name, clock=self.clock)
        self._shards[node_name] = shard
        return shard

    def merge(self, *shards: NodeLedger) -> None:
        """Fold externally-filled shards into the view (deterministic).

        Used after a parallel section: workers fill detached shards (each
        with a forked clock), and the merge adopts them, asserts shard-name
        uniqueness and advances the shared clock to the furthest shard.
        Merging is commutative — any adoption order yields the same view,
        because ordering lives in the ``(timestamp, node, seq)`` keys.
        """
        for shard in shards:
            self._check_unique(shard.node_name)
        for shard in shards:
            self._shards[shard.node_name] = shard
            if shard.clock is not self.clock:
                self.clock.sync_to(shard.clock)

    def _check_unique(self, node_name: str) -> None:
        if not node_name:
            raise LedgerError("a cluster shard needs a non-empty node name")
        if node_name == self._cluster_shard.node_name:
            raise LedgerError("shard name %r is reserved for the cluster shard" % node_name)
        if node_name in self._shards:
            raise LedgerError(
                "duplicate ledger shard %r: two nodes cannot share one "
                "accounting namespace" % node_name
            )

    @property
    def cluster_shard(self) -> CostLedger:
        """The shard for cluster-scoped (node-less) charges."""
        return self._cluster_shard

    def shards(self) -> Dict[str, NodeLedger]:
        """Per-node shards keyed by node name (the cluster shard excluded)."""
        return dict(self._shards)

    def node_shard(self, node_name: str) -> NodeLedger:
        if node_name not in self._shards:
            raise LedgerError("no ledger shard for node %r" % node_name)
        return self._shards[node_name]

    def _all_shards(self) -> List[CostLedger]:
        return [self._cluster_shard] + list(self._shards.values())

    # -- recording (cluster-scoped; the pre-shard CostLedger surface) -------------

    def charge(self, *args, **kwargs) -> Charge:
        return self._cluster_shard.charge(*args, **kwargs)

    def count_syscalls(self, count: int) -> None:
        self._cluster_shard.count_syscalls(count)

    def meter(self, name: str, baseline_bytes: int = 0) -> MemoryMeter:
        return self._cluster_shard.meter(name, baseline_bytes)

    # -- merged queries ----------------------------------------------------------

    @property
    def charges(self) -> Tuple[Charge, ...]:
        """The merged timeline, ordered by ``(timestamp, node, seq)``."""
        total = len(self)
        if total != self._merged_cache_len:
            merged: List[Charge] = []
            for shard in self._all_shards():
                merged.extend(shard.charges)
            merged.sort(key=_merge_key)
            self._merged_cache = tuple(merged)
            self._merged_cache_len = total
        return self._merged_cache

    def merged_charges(self) -> Tuple[Charge, ...]:
        return self.charges

    def __iter__(self) -> Iterator[Charge]:
        return iter(self.charges)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._all_shards())

    def snapshot(self) -> LedgerSnapshot:
        return LedgerSnapshot(
            positions=tuple(
                (shard.node_name, len(shard)) for shard in self._all_shards()
            )
        )

    def charges_since(self, snapshot: LedgerSnapshot) -> Tuple[Charge, ...]:
        """Merged charges recorded after ``snapshot``, in timeline order.

        Shards created after the snapshot contribute from their beginning.
        """
        positions = dict(snapshot.positions)
        fresh: List[Charge] = []
        for shard in self._all_shards():
            fresh.extend(shard.charges[positions.get(shard.node_name, 0):])
        fresh.sort(key=_merge_key)
        return tuple(fresh)

    def total_seconds(self) -> float:
        return sum(shard.total_seconds() for shard in self._all_shards())

    def seconds(self, *categories: CostCategory) -> float:
        return sum(shard.seconds(*categories) for shard in self._all_shards())

    def serialization_seconds(self) -> float:
        return self.seconds(*SERIALIZATION_CATEGORIES)

    def cpu_seconds(self, domain: Optional[CpuDomain] = None) -> float:
        return sum(shard.cpu_seconds(domain) for shard in self._all_shards())

    @property
    def copied_bytes(self) -> int:
        return sum(shard.copied_bytes for shard in self._all_shards())

    @property
    def reference_bytes(self) -> int:
        return sum(shard.reference_bytes for shard in self._all_shards())

    @property
    def syscalls(self) -> int:
        return sum(shard.syscalls for shard in self._all_shards())

    @property
    def context_switches(self) -> int:
        return sum(shard.context_switches for shard in self._all_shards())

    def peak_memory_bytes(self) -> int:
        """Cluster RAM: per-node peaks aggregate (sum of shard peaks)."""
        return sum(shard.peak_memory_bytes() for shard in self._all_shards())

    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes() / (1024.0 * 1024.0)

    def peak_memory_by_node(self) -> Dict[str, int]:
        """Per-shard memory peaks (cluster shard under its own label)."""
        return {
            shard.node_name: shard.peak_memory_bytes() for shard in self._all_shards()
        }

    def meters(self) -> Dict[str, MemoryMeter]:
        out: Dict[str, MemoryMeter] = {}
        for shard in self._all_shards():
            out.update(shard.meters())
        return out

    def breakdown(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for shard in self._all_shards():
            for key, value in shard.breakdown().items():
                out[key] = out.get(key, 0.0) + value
        return out

    def node_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Seconds per category, per shard (the per-node metric series)."""
        return {shard.node_name: shard.breakdown() for shard in self._all_shards()}

    def reset(self) -> None:
        for shard in self._all_shards():
            shard.reset()  # resetting the shared clock repeatedly is harmless
        self._merged_cache = ()
        self._merged_cache_len = 0
        self.clock.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ClusterLedger(name=%r, shards=%d, charges=%d)" % (
            self.name,
            len(self._shards),
            len(self),
        )
