"""Simulated monotonic clock.

The reproduction does not measure wall-clock time: Python overheads would
drown the effects the paper studies.  Instead, components advance a shared
:class:`SimClock` by the modelled duration of each operation.  The clock is
deliberately tiny; its value is that every latency number in the experiments
has a single, auditable source.
"""

from __future__ import annotations


class ClockError(ValueError):
    """Raised when the clock is advanced by a negative duration."""


class SimClock:
    """A monotonically increasing simulated clock measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError("clock cannot start before t=0, got %r" % start)
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ClockError("cannot advance clock by negative duration %r" % seconds)
        self._now += seconds
        return self._now

    def advance_to(self, deadline: float) -> float:
        """Advance the clock to ``deadline`` if it lies in the future.

        Advancing to a time that already passed is a no-op; this mirrors how
        an event loop fast-forwards to the next scheduled event.
        """
        if deadline > self._now:
            self._now = deadline
        return self._now

    def fork(self) -> "SimClock":
        """An independent clock starting at this clock's current time.

        Parallel node simulation gives each worker a forked clock so nodes
        advance without sharing (and contending on) one timeline; the
        partitions re-synchronize at cross-node boundaries via
        :meth:`sync_to`.
        """
        return SimClock(start=self._now)

    def sync_to(self, *clocks: "SimClock") -> float:
        """Advance this clock to the furthest of ``clocks`` (a merge barrier).

        Synchronization points — a network transfer landing on another node,
        per-node shards folding into the cluster ledger — advance the shared
        timeline to the maximum of the partitioned ones.  Clocks never move
        backwards, so syncing is monotonic and idempotent.
        """
        for clock in clocks:
            if clock.now > self._now:
                self._now = clock.now
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, e.g. between benchmark iterations."""
        if start < 0:
            raise ClockError("clock cannot be reset before t=0, got %r" % start)
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SimClock(now=%.9f)" % self._now
