"""A small discrete-event loop plus a parallel-track makespan helper.

Most of the reproduction is sequential accounting on a shared ledger, but two
places need genuine concurrency semantics:

* the fan-out experiments (Figs. 9 and 10), where one source function feeds
  N targets and the runtimes differ in how much of that work can overlap;
* the network link, where transmissions from different connections share
  bandwidth.

:class:`EventLoop` is a classic time-ordered event queue.  For fan-out we use
the simpler :class:`ParallelTracks` helper, which computes the makespan of N
per-branch duration profiles under a bounded concurrency model — this mirrors
how a 4-core node executes N sandboxes, or how a single-threaded Wasm VM
serialises all branches.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple


class EngineError(RuntimeError):
    """Raised for scheduling errors (e.g. events in the past)."""


@dataclass(order=True)
class Event:
    """An event scheduled at an absolute simulated time."""

    time: float
    order: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventLoop:
    """Minimal discrete-event simulator.

    Events are executed in non-decreasing time order; ties break by insertion
    order so behaviour is deterministic.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._executed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def executed_events(self) -> int:
        return self._executed

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` seconds from the current time."""
        if delay < 0:
            raise EngineError("cannot schedule an event in the past (delay=%r)" % delay)
        event = Event(time=self._now + delay, order=next(self._counter), action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute time ``time``."""
        if time < self._now:
            raise EngineError(
                "cannot schedule an event at t=%r before now=%r" % (time, self._now)
            )
        event = Event(time=time, order=next(self._counter), action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or ``until`` is reached.

        Returns the simulated time after the run.
        """
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self._now = until
                return self._now
            event = heapq.heappop(self._queue)
            self._now = event.time
            event.action()
            self._executed += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> Optional[Event]:
        """Execute exactly one event; return it (or None if the queue is empty)."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self._now = event.time
        event.action()
        self._executed += 1
        return event

    def pending(self) -> int:
        return len(self._queue)


class ParallelTracks:
    """Makespan of N independent duration tracks under bounded concurrency.

    Each track is a pair ``(cpu_seconds, wait_seconds)``:

    * ``cpu_seconds`` competes for the ``workers`` available execution slots
      (cores, or 1 for a single-threaded Wasm VM);
    * ``wait_seconds`` is pure waiting (wire time, kernel DMA) that overlaps
      freely across tracks.

    The model is a conservative list-scheduling bound: CPU work is spread
    over the workers (longest-processing-time order) and each track's wait
    extends its own finish time.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise EngineError("workers must be >= 1, got %r" % workers)
        self.workers = workers
        self._tracks: List[Tuple[float, float]] = []

    def add(self, cpu_seconds: float, wait_seconds: float = 0.0) -> None:
        if cpu_seconds < 0 or wait_seconds < 0:
            raise EngineError("track durations must be non-negative")
        self._tracks.append((cpu_seconds, wait_seconds))

    def extend(self, tracks: Sequence[Tuple[float, float]]) -> None:
        for cpu, wait in tracks:
            self.add(cpu, wait)

    @property
    def tracks(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(self._tracks)

    def completion_times(self) -> List[float]:
        """Per-track completion times under list scheduling.

        Tracks are scheduled longest-first onto the earliest-available worker;
        a track's completion time is when its CPU slice finishes plus its own
        wait.  The list is returned in scheduling order.
        """
        if not self._tracks:
            return []
        ordered = sorted(self._tracks, key=lambda t: t[0] + t[1], reverse=True)
        worker_busy = [0.0] * self.workers
        completions: List[float] = []
        for cpu, wait in ordered:
            # Assign to the earliest-available worker.
            idx = min(range(self.workers), key=worker_busy.__getitem__)
            start = worker_busy[idx]
            worker_busy[idx] = start + cpu
            completions.append(start + cpu + wait)
        return completions

    def makespan(self) -> float:
        """Finish time of the last track under list scheduling."""
        completions = self.completion_times()
        return max(completions) if completions else 0.0

    def mean_completion(self) -> float:
        """Mean per-track completion time (the per-request latency a client sees)."""
        completions = self.completion_times()
        if not completions:
            return 0.0
        return sum(completions) / len(completions)

    def total_cpu_seconds(self) -> float:
        return sum(cpu for cpu, _ in self._tracks)

    def total_wait_seconds(self) -> float:
        return sum(wait for _, wait in self._tracks)
