"""Discrete-event loops plus a parallel-track makespan helper.

Most of the reproduction is sequential accounting on a shared ledger, but
several places need genuine concurrency semantics:

* the fan-out experiments (Figs. 9 and 10), where one source function feeds
  N targets and the runtimes differ in how much of that work can overlap;
* the network link, where transmissions from different connections share
  bandwidth;
* multi-node simulation, where per-node work charges per-node ledger shards
  and whole nodes can execute concurrently on the host.

:class:`EventLoop` is a classic time-ordered event queue.
:class:`PartitionedEventLoop` extends it with node partitions: events tagged
with a partition run their node-local stage concurrently (thread phases)
while cross-node boundaries — gateway dispatch, network transfers, anything
scheduled on the global partition — stay serialized in exact time order, so
a parallel run is event-for-event identical to a serial one.  For fan-out we
use the simpler :class:`ParallelTracks` helper, which computes the makespan
of N per-branch duration profiles under a bounded concurrency model — this
mirrors how a 4-core node executes N sandboxes, or how a single-threaded
Wasm VM serialises all branches.
"""

from __future__ import annotations

import atexit
import heapq
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

#: Partition label of events that must run serialized (cross-node work).
GLOBAL_PARTITION = ""


class EngineError(RuntimeError):
    """Raised for scheduling errors (e.g. events in the past)."""


@dataclass
class Event:
    """An event scheduled at an absolute simulated time.

    ``action`` may return a callable: a *join* executed at the same event
    slot.  In a serial run the join fires immediately after the action; in a
    partitioned run the node-local action may have run early (concurrently)
    while the join is still executed at the event's exact place in the
    global time order — that split is what lets whole nodes simulate in
    parallel without reordering any cross-node effect.

    ``args`` are passed positionally to ``action`` when the event fires.
    Hot callers schedule one shared function with per-event ``args`` instead
    of allocating a closure per event.
    """

    time: float
    order: int
    action: Callable[..., Any]
    label: str = ""
    partition: str = GLOBAL_PARTITION
    args: Tuple = ()


#: Heap entries are ``(time, order, event)`` so the heap compares plain
#: floats and ints at C speed instead of dataclass ``__lt__`` per sift.
_HeapEntry = Tuple[float, int, Event]


class EventLoop:
    """Minimal discrete-event simulator.

    Events are executed in non-decreasing time order; ties break by insertion
    order so behaviour is deterministic.
    """

    def __init__(self) -> None:
        self._queue: List[_HeapEntry] = []
        self._order = 0
        self._now = 0.0
        self._executed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def executed_events(self) -> int:
        return self._executed

    def reserve_orders(self, count: int) -> int:
        """Reserve ``count`` consecutive tie-break slots; return the first.

        Lets a caller pin the relative order of events it will schedule
        *later* (lazily) against events scheduled in between — the traffic
        engine reserves one slot per arrival up front, then materializes
        arrival events on demand without disturbing tie-breaking.
        """
        if count < 0:
            raise EngineError("cannot reserve a negative order block")
        base = self._order
        self._order += count
        return base

    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        label: str = "",
        partition: str = GLOBAL_PARTITION,
        args: Tuple = (),
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from the current time."""
        if delay < 0:
            raise EngineError("cannot schedule an event in the past (delay=%r)" % delay)
        return self.schedule_at(
            self._now + delay, action, label=label, partition=partition, args=args
        )

    def schedule_at(
        self,
        time: float,
        action: Callable[..., Any],
        label: str = "",
        partition: str = GLOBAL_PARTITION,
        args: Tuple = (),
        order: Optional[int] = None,
    ) -> Event:
        """Schedule ``action`` at absolute time ``time``.

        ``order`` pins an explicit tie-break slot previously obtained from
        :meth:`reserve_orders`; by default the next slot is taken.
        """
        if time < self._now:
            raise EngineError(
                "cannot schedule an event at t=%r before now=%r" % (time, self._now)
            )
        if order is None:
            order = self._order
            self._order += 1
        event = Event(
            time=time,
            order=order,
            action=action,
            label=label,
            partition=partition,
            args=args,
        )
        heapq.heappush(self._queue, (time, order, event))
        return event

    def _execute(self, event: Event) -> None:
        """Run one event in place: its action, then any join it returned."""
        result = event.action(*event.args)
        if callable(result):
            result()

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or ``until`` is reached.

        Returns the simulated time after the run.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            if until is not None and queue[0][0] > until:
                self._now = until
                return self._now
            time, _, event = pop(queue)
            self._now = time
            result = event.action(*event.args)
            if callable(result):
                result()
            self._executed += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> Optional[Event]:
        """Execute exactly one event; return it (or None if the queue is empty)."""
        if not self._queue:
            return None
        time, _, event = heapq.heappop(self._queue)
        self._now = time
        self._execute(event)
        self._executed += 1
        return event

    def pending(self) -> int:
        return len(self._queue)


class PartitionedEventLoop(EventLoop):
    """An event loop whose node-partitioned events can execute concurrently.

    Events scheduled with a non-empty ``partition`` (a node name) promise
    that their *action* touches only state owned by that partition — per-node
    ledger shards, per-replica bookkeeping — plus values captured at schedule
    time.  Cross-node effects go into the *join* the action returns, or into
    events on the global partition.

    ``run_parallel`` pops maximal runs of consecutive events that sit on
    distinct node partitions, executes their node-local actions concurrently
    in a thread phase, then re-enqueues each event's join at its original
    ``(time, order)`` slot.  Joins and global events therefore interleave in
    exactly the serial order — a parallel run is deterministic and produces
    results identical to :meth:`run` — while node-local work (and its ledger
    charges, which land on per-node shards) overlaps across host threads.
    A global event is the synchronization boundary: batch collection stops
    there, mirroring how gateway dispatch and network transfers serialize
    cross-node state.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        self.max_workers = max_workers
        self.parallel_batches = 0

    def _collect_batch(self, until: Optional[float]) -> List[Event]:
        """Pop a maximal run of same-phase events on distinct partitions."""
        batch: List[Event] = []
        seen = set()
        while self._queue:
            head = self._queue[0][2]
            if until is not None and head.time > until:
                break
            if head.partition == GLOBAL_PARTITION or head.partition in seen:
                break
            batch.append(heapq.heappop(self._queue)[2])
            seen.add(head.partition)
        return batch

    def run_parallel(self, until: Optional[float] = None) -> float:
        """Like :meth:`run`, with node partitions executing in thread phases."""
        workers = self.max_workers or min(32, os.cpu_count() or 1)
        pool: Optional[ThreadPoolExecutor] = None
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self._now = until
                    return self._now
                batch = self._collect_batch(until)
                if not batch:
                    _, _, event = heapq.heappop(self._queue)
                    self._now = event.time
                    self._execute(event)
                    self._executed += 1
                    continue
                if len(batch) == 1:
                    event = batch[0]
                    self._now = event.time
                    self._execute(event)
                    self._executed += 1
                    continue
                if pool is None:
                    pool = ThreadPoolExecutor(max_workers=workers)
                self.parallel_batches += 1
                joins = list(pool.map(lambda event: event.action(*event.args), batch))
                # Re-enqueue each event's join at its original slot so joins
                # interleave with later (and newly scheduled) global events
                # in exactly the serial order.
                for event, join in zip(batch, joins):
                    heapq.heappush(
                        self._queue,
                        (
                            event.time,
                            event.order,
                            Event(
                                time=event.time,
                                order=event.order,
                                action=join if callable(join) else _noop,
                                label=event.label,
                                partition=GLOBAL_PARTITION,
                            ),
                        ),
                    )
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        if until is not None and until > self._now:
            self._now = until
        return self._now


def _noop() -> None:
    return None


#: Long-lived worker pool shared by every default-sized :func:`parallel_map`
#: call, so repeated comparisons (``run_comparison``, policy sweeps) stop
#: paying process spin-up per invocation.  Recreated on demand after a
#: worker crash; shut down at interpreter exit.
_shared_pool: Optional[ProcessPoolExecutor] = None


def _discard_shared_pool() -> None:
    global _shared_pool
    pool, _shared_pool = _shared_pool, None
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def _get_shared_pool() -> ProcessPoolExecutor:
    global _shared_pool
    if _shared_pool is None:
        _shared_pool = ProcessPoolExecutor(max_workers=os.cpu_count() or 1)
        atexit.register(_discard_shared_pool)
    return _shared_pool


def parallel_map(
    fn: Callable[..., Any],
    items: Sequence[Tuple],
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Run ``fn(*item)`` for every item, concurrently, results in input order.

    The process-pool path is for *independent simulations* — each call must
    be self-contained (its own cluster, ledger shards and clock) and both
    the arguments and the result must pickle.  Falls back to a serial map
    when there is nothing to parallelize or worker processes cannot be
    spawned, so callers never need a fallback of their own; either way the
    result list is deterministic and ordered like ``items``.

    Calls without an explicit ``max_workers`` share one long-lived process
    pool across the interpreter; passing ``max_workers`` runs a one-off pool
    of exactly that size.
    """
    if len(items) <= 1 or max_workers == 1 or (os.cpu_count() or 1) < 2:
        return [fn(*item) for item in items]
    try:
        # The function and its arguments must cross the process boundary; a
        # lambda or closure-based factory degrades to the serial path rather
        # than failing the run.
        pickle.dumps((fn, tuple(items)))
    except Exception:
        return [fn(*item) for item in items]
    if max_workers is None:
        try:
            return list(_get_shared_pool().map(fn, *zip(*items)))
        except (OSError, BrokenProcessPool):
            # A dead worker poisons the whole executor: drop it so the next
            # call starts fresh, and finish this one serially.  Exceptions
            # raised by ``fn`` itself still propagate to the caller.
            _discard_shared_pool()
            return [fn(*item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(fn, *zip(*items)))
    except (OSError, BrokenProcessPool):
        return [fn(*item) for item in items]


class ParallelTracks:
    """Makespan of N independent duration tracks under bounded concurrency.

    Each track is a pair ``(cpu_seconds, wait_seconds)``:

    * ``cpu_seconds`` competes for the ``workers`` available execution slots
      (cores, or 1 for a single-threaded Wasm VM);
    * ``wait_seconds`` is pure waiting (wire time, kernel DMA) that overlaps
      freely across tracks.

    The model is a conservative list-scheduling bound: CPU work is spread
    over the workers (longest-processing-time order) and each track's wait
    extends its own finish time.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise EngineError("workers must be >= 1, got %r" % workers)
        self.workers = workers
        self._tracks: List[Tuple[float, float]] = []

    def add(self, cpu_seconds: float, wait_seconds: float = 0.0) -> None:
        if cpu_seconds < 0 or wait_seconds < 0:
            raise EngineError("track durations must be non-negative")
        self._tracks.append((cpu_seconds, wait_seconds))

    def extend(self, tracks: Sequence[Tuple[float, float]]) -> None:
        for cpu, wait in tracks:
            self.add(cpu, wait)

    @property
    def tracks(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(self._tracks)

    def completion_times(self) -> List[float]:
        """Per-track completion times under list scheduling.

        Tracks are scheduled longest-first onto the earliest-available worker;
        a track's completion time is when its CPU slice finishes plus its own
        wait.  The list is returned in scheduling order.
        """
        if not self._tracks:
            return []
        ordered = sorted(self._tracks, key=lambda t: t[0] + t[1], reverse=True)
        worker_busy = [0.0] * self.workers
        completions: List[float] = []
        for cpu, wait in ordered:
            # Assign to the earliest-available worker.
            idx = min(range(self.workers), key=worker_busy.__getitem__)
            start = worker_busy[idx]
            worker_busy[idx] = start + cpu
            completions.append(start + cpu + wait)
        return completions

    def makespan(self) -> float:
        """Finish time of the last track under list scheduling."""
        completions = self.completion_times()
        return max(completions) if completions else 0.0

    def mean_completion(self) -> float:
        """Mean per-track completion time (the per-request latency a client sees)."""
        completions = self.completion_times()
        if not completions:
            return 0.0
        return sum(completions) / len(completions)

    def total_cpu_seconds(self) -> float:
        return sum(cpu for cpu, _ in self._tracks)

    def total_wait_seconds(self) -> float:
        return sum(wait for _, wait in self._tracks)
