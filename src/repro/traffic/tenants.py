"""Multi-tenant traffic: tenant specs, capacity arbitration, rollups.

Middleware's defining concern is fair multiplexing of concurrent
applications over shared infrastructure; this module gives the traffic
engine the vocabulary for it.  A :class:`TenantSpec` names one tenant: the
function it invokes, the runtime mode serving it, the arrival process
generating its requests and the weight the gateway's fair queue grants it.
A :class:`CapacityArbiter` splits the shared cluster's execution slots
(cores) across tenants in weight proportion, so one tenant's autoscaler
cannot starve another's guaranteed share.  A :class:`MultiTenantSummary`
holds the per-tenant :class:`~repro.traffic.slo.TrafficSummary` rollups plus
a cluster-wide aggregate, ready for the report and the CSV/JSON exporters.

Seeds: tenants that do not pin an explicit seed derive one from the run's
base seed and their name (:func:`derived_seed`), so every tenant sees an
independent, reproducible stream and adding a tenant never perturbs the
arrivals of the others.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.platform.gateway import TenantQueueStats
from repro.traffic.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    Request,
)
from repro.traffic.classes import RequestClass, assign_classes, parse_classes, validate_mix
from repro.traffic.slo import TrafficSummary


class TenantError(ValueError):
    """Raised for invalid tenant specifications or configs."""


def derived_seed(base_seed: int, name: str) -> int:
    """A per-tenant seed derived deterministically from a base seed.

    CRC32 of the tenant name folded with the base seed: stable across
    processes and Python versions (unlike ``hash``), and distinct names give
    independent streams while the pair (base seed, name) always reproduces
    the same one.
    """
    return (zlib.crc32(name.encode("utf-8")) ^ (base_seed * 0x9E3779B1)) & 0x7FFFFFFF


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a shared-cluster traffic run."""

    name: str
    #: Runtime mode serving this tenant (one of ``TRAFFIC_MODES``).
    mode: str = "roadrunner-user"
    #: Fair-queueing weight at the gateway (share under saturation).
    weight: int = 1
    #: Arrival process generating the tenant's request stream, or ...
    arrivals: Optional[ArrivalProcess] = None
    #: ... an explicit request list (exactly one of the two must be set).
    requests: Optional[Tuple[Request, ...]] = None
    #: Function name the tenant invokes; defaults to the tenant name.
    function: Optional[str] = None
    #: Pattern label for reports; defaults to the arrival process's name.
    pattern: Optional[str] = None
    #: Scheduling-class mix stamped onto the stream (empty = single class).
    classes: Tuple[RequestClass, ...] = ()
    #: Per-replica RSS override in MB (``None`` = the runtime profile's
    #: default baseline; only meaningful when the memory model is active).
    rss_mb: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TenantError("tenant name must be non-empty")
        if self.weight < 1:
            raise TenantError("tenant %r: weight must be >= 1" % self.name)
        if self.rss_mb is not None and self.rss_mb <= 0:
            raise TenantError("tenant %r: rss_mb must be positive" % self.name)
        if (self.arrivals is None) == (self.requests is None):
            raise TenantError(
                "tenant %r needs exactly one of arrivals or requests" % self.name
            )
        object.__setattr__(self, "classes", validate_mix(self.classes))

    @property
    def function_name(self) -> str:
        return self.function or self.name

    @property
    def pattern_name(self) -> str:
        if self.pattern:
            return self.pattern
        if self.arrivals is not None:
            return self.arrivals.name
        return "trace"

    @property
    def class_names(self) -> Tuple[str, ...]:
        """Declared class names (for zero-request rows in the SLO rollup)."""
        return tuple(cls.name for cls in self.classes)

    def generate(self) -> List[Request]:
        """The tenant's request stream, retagged with its function name.

        A declared class mix is stamped on deterministically: the class
        RNG seed derives from the arrival seed (or zero for explicit
        request lists) and the tenant name, so identical specs always
        produce identically classed streams.
        """
        base = list(self.requests) if self.requests is not None else self.arrivals.generate()
        function = self.function_name
        stream = [
            request if request.function == function else replace(request, function=function)
            for request in base
        ]
        if self.classes:
            seed = derived_seed(getattr(self.arrivals, "seed", 0) or 0, self.name + "/classes")
            stream = assign_classes(stream, self.classes, seed=seed)
        return stream


class CapacityArbiter:
    """Weight-proportional split of the cluster's schedulable replica slots.

    ``capacity`` is the number of replicas the cluster will host — its core
    count, possibly oversubscribed (replicas are cheap processes; cores are
    the contended execution resource).  Guarantees are the largest-remainder
    apportionment of ``capacity`` by weight, so they sum exactly to capacity.

    Reservations follow *demand*: a tenant's unmet guarantee is only held
    back from others while that tenant has work wanting replicas, so an
    idle tenant's share is lendable (work conservation) and a tenant whose
    guarantee rounded to zero can still borrow unclaimed slots.  Because
    replicas are never preempted, a waking tenant reclaims its guarantee
    gradually — as borrowers' keep-alives expire — rather than instantly;
    with more tenants than slots, zero-guarantee tenants are served only
    opportunistically.  Without a demand map, ``grant`` falls back to
    reserving every unmet guarantee (the conservative hard split).
    """

    def __init__(self, capacity: int, weights: Mapping[str, int]) -> None:
        if capacity < 1:
            raise TenantError("capacity must be >= 1")
        if not weights:
            raise TenantError("need at least one tenant weight")
        if any(weight < 1 for weight in weights.values()):
            raise TenantError("tenant weights must be >= 1")
        self.capacity = capacity
        self.weights = dict(weights)
        # Largest-remainder apportionment: floor shares first, then the
        # leftover slots one by one to the largest fractional remainders
        # (ties to the heavier, then earlier-registered tenant).  Guarantees
        # sum exactly to capacity and are independent of dict order.
        total = sum(self.weights.values())
        order = list(self.weights)
        self.guaranteed: Dict[str, int] = {
            name: (capacity * self.weights[name]) // total for name in order
        }
        leftover = capacity - sum(self.guaranteed.values())
        by_remainder = sorted(
            order,
            key=lambda name: (
                -((capacity * self.weights[name]) % total),
                -self.weights[name],
                order.index(name),
            ),
        )
        for name in by_remainder[:leftover]:
            self.guaranteed[name] += 1

    def grant(
        self,
        tenant: str,
        requested: int,
        current: Mapping[str, int],
        demand: Optional[Mapping[str, int]] = None,
    ) -> int:
        """How many of ``requested`` new slots ``tenant`` may claim now.

        ``demand`` maps each tenant to the replicas its load currently
        wants (queued + in flight); a tenant's unmet guarantee is reserved
        only up to its demand.  ``None`` reserves every unmet guarantee.
        """
        if tenant not in self.weights:
            raise TenantError("unknown tenant %r" % tenant)
        if requested <= 0:
            return 0
        used = sum(current.values())
        free = max(0, self.capacity - used)
        if free == 0:
            return 0
        mine = current.get(tenant, 0)
        within = max(0, self.guaranteed[tenant] - mine)
        reserved = 0
        for name in self.weights:
            if name == tenant:
                continue
            claim = self.guaranteed[name]
            if demand is not None:
                claim = min(claim, demand.get(name, 0))
            reserved += max(0, claim - current.get(name, 0))
        granted = min(requested, free, within)
        extra = min(requested - granted, max(0, free - granted - reserved))
        return granted + max(0, extra)


@dataclass(frozen=True)
class NodeUsage:
    """One ledger shard's slice of a traffic run (the per-node cost rollup).

    The engine reads these off the cluster ledger's per-node shards after a
    run: how many charges a node recorded, the simulated seconds and CPU
    seconds it accounted, and its memory peak.  The ``cluster`` row holds
    node-less work (ingress routing at the gateway).
    """

    node: str
    charges: int
    total_seconds: float
    cpu_seconds: float
    peak_memory_mb: float


@dataclass(frozen=True)
class MultiTenantSummary:
    """Everything one shared-cluster multi-tenant run produced."""

    fairness: str
    weights: Mapping[str, int]
    #: Per-tenant rollups, keyed by tenant name.
    tenants: Dict[str, TrafficSummary]
    #: Cluster-wide aggregate over every tenant's requests and replicas.
    cluster: TrafficSummary
    #: Gateway admission accounting per tenant (drops/timeouts happen there).
    queue_stats: Dict[str, TenantQueueStats] = field(default_factory=dict)
    #: Per-node cost rollups from the sharded cluster ledger, keyed by node.
    nodes: Dict[str, NodeUsage] = field(default_factory=dict)
    #: Gateway middleware counters per stage ({} when no pipeline ran).
    middleware: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def tenant(self, name: str) -> TrafficSummary:
        if name not in self.tenants:
            raise TenantError(
                "no tenant %r in this run (have: %s)" % (name, ", ".join(sorted(self.tenants)))
            )
        return self.tenants[name]


# -- config parsing (the ``repro traffic --tenants`` format) ------------------------

#: Recognised keys of one tenant object in a ``--tenants`` config.
_TENANT_KEYS = frozenset(
    {
        "name", "pattern", "rps", "duration", "payload_mb", "seed", "weight",
        "mode", "burst_on", "burst_off", "period", "trough_rps", "classes",
        "rss_mb",
    }
)


def parse_tenants(
    source: str,
    default_mode: str = "roadrunner-user",
    base_seed: int = 0,
    default_duration: float = 30.0,
    default_classes: Tuple[RequestClass, ...] = (),
) -> List[TenantSpec]:
    """Parse a ``--tenants`` config: a JSON array, inline or a file path.

    Each element describes one tenant::

        {"name": "steady", "pattern": "poisson", "rps": 20, "duration": 30,
         "weight": 1, "mode": "roadrunner-user", "payload_mb": 1.0}

    ``pattern`` is ``poisson`` (default), ``bursty`` (``burst_on``/
    ``burst_off`` windows) or ``diurnal`` (``period``, ``trough_rps``).
    ``seed`` is optional: omitted, it derives from ``base_seed`` and the
    tenant name, so streams stay independent and reproducible.
    ``classes`` is an optional scheduling-class mix in the ``--classes``
    format (see :func:`repro.traffic.classes.parse_classes`); tenants
    without one inherit ``default_classes``.
    """
    text = source
    if os.path.exists(source):
        try:
            with open(source, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise TenantError("cannot read tenants config %r: %s" % (source, exc))
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TenantError("tenants config is not valid JSON: %s" % exc)
    if not isinstance(raw, list) or not raw:
        raise TenantError("tenants config must be a non-empty JSON array")
    specs: List[TenantSpec] = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise TenantError("tenant #%d must be a JSON object" % index)
        unknown = sorted(set(entry) - _TENANT_KEYS)
        if unknown:
            raise TenantError("tenant #%d has unknown keys: %s" % (index, ", ".join(unknown)))
        if "name" not in entry:
            raise TenantError("tenant #%d is missing 'name'" % index)
        name = str(entry["name"])
        pattern = str(entry.get("pattern", "poisson"))
        try:
            rps = float(entry.get("rps", 20.0))
            duration = float(entry.get("duration", default_duration))
            payload_mb = float(entry.get("payload_mb", 1.0))
            seed = int(entry.get("seed", derived_seed(base_seed, name)))
            weight = int(entry.get("weight", 1))
            burst_on = float(entry.get("burst_on", 5.0))
            burst_off = float(entry.get("burst_off", 15.0))
            period = float(entry.get("period", 60.0))
            trough_rps = float(entry.get("trough_rps", min(rps, max(rps / 10.0, 0.1))))
            rss_mb = None if entry.get("rss_mb") is None else float(entry["rss_mb"])
        except (TypeError, ValueError) as exc:
            raise TenantError("tenant %r has a malformed numeric value: %s" % (name, exc))
        if pattern == "poisson":
            arrivals: ArrivalProcess = PoissonArrivals(
                rate_rps=rps, duration_s=duration, function=name, payload_mb=payload_mb, seed=seed
            )
        elif pattern == "bursty":
            arrivals = BurstyArrivals(
                on_rate_rps=rps,
                duration_s=duration,
                on_s=burst_on,
                off_s=burst_off,
                function=name,
                payload_mb=payload_mb,
                seed=seed,
            )
        elif pattern == "diurnal":
            arrivals = DiurnalArrivals(
                peak_rps=rps,
                trough_rps=trough_rps,
                duration_s=duration,
                period_s=period,
                function=name,
                payload_mb=payload_mb,
                seed=seed,
            )
        else:
            raise TenantError(
                "tenant %r: unknown pattern %r (use poisson, bursty or diurnal)" % (name, pattern)
            )
        classes = default_classes
        if entry.get("classes") is not None:
            raw_classes = entry["classes"]
            try:
                # A string is the --classes format itself (inline JSON or a
                # file path); an inline array re-serialises into it.
                classes = parse_classes(
                    raw_classes if isinstance(raw_classes, str) else json.dumps(raw_classes)
                )
            except ValueError as exc:
                raise TenantError("tenant %r: invalid classes: %s" % (name, exc))
        specs.append(
            TenantSpec(
                name=name,
                mode=str(entry.get("mode", default_mode)),
                weight=weight,
                arrivals=arrivals,
                classes=classes,
                rss_mb=rss_mb,
            )
        )
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise TenantError("tenant names must be unique, got %s" % names)
    if "cluster" in names:
        raise TenantError("tenant name 'cluster' is reserved for the cluster-wide rollup")
    return specs
