"""Traffic: sustained multi-client load over the Roadrunner platform.

The paper's evaluation measures individual transfers; this subsystem
measures the platform under *sustained* load, the regime the ROADMAP's
"heavy traffic from millions of users" north star cares about:

* :mod:`repro.traffic.arrivals` — seeded Poisson / bursty / diurnal /
  trace-driven arrival processes producing timestamped request streams;
* :mod:`repro.traffic.engine` — a discrete-event engine that admits
  requests through the :class:`~repro.platform.gateway.IngressGateway`,
  queues them while replicas are busy or cold-starting, and executes them
  with bounded per-replica and per-node concurrency;
* :mod:`repro.traffic.autoscaler` — a control loop (target-concurrency /
  fixed / none / step / predictive policies) that grows replica pools by
  paying each runtime's modelled cold start and reclaims replicas idle
  past their keep-alive;
* :mod:`repro.traffic.classes` — scheduling classes: deadline and priority
  mixes stamped deterministically onto a tenant's stream, dispatched
  earliest-deadline-first within the tenant's queue when enabled;
* :mod:`repro.traffic.policies` — scaling-policy comparison harness: the
  same seeded arrivals under every candidate policy, one summary each;
* :mod:`repro.traffic.slo` — per-request accounting rolled into p50/p95/p99
  latency, queueing delay, timeout/drop counts, goodput and per-class
  deadline-met ratios;
* :mod:`repro.traffic.tenants` — multi-tenant runs: tenant specs with
  weights, class mixes and derived seeds, weight-proportional capacity
  arbitration, and the per-tenant/cluster rollup shared-cluster runs
  produce;
* :mod:`repro.traffic.report` — the plain-text reports
  ``python -m repro traffic`` prints.

This opens scenario axes the paper never swept: load level x arrival
pattern x runtime under identical seeded arrival streams, tenant mix x
gateway fairness policy over one contended cluster (noisy neighbours),
class mix x intra-tenant ordering (EDF vs FIFO), and arrival pattern x
scaling policy (reactive vs step vs predictive).
"""

from repro.traffic.arrivals import (
    ArrivalError,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    Request,
    TraceArrivals,
    load_azure_trace,
)
from repro.traffic.autoscaler import (
    Autoscaler,
    AutoscalerError,
    FixedReplicasPolicy,
    LoadSample,
    NoScalingPolicy,
    PredictiveScalingPolicy,
    ScalingDecision,
    ScalingPolicy,
    StepScalingPolicy,
    TargetConcurrencyPolicy,
)
from repro.platform.gateway import (
    FairnessPolicy,
    FairQueue,
    IntraTenantOrder,
    TenantQueueStats,
)
from repro.traffic.classes import (
    RequestClass,
    RequestClassError,
    assign_classes,
    parse_classes,
)
from repro.traffic.engine import (
    TRAFFIC_MODES,
    MultiTenantTrafficEngine,
    TrafficConfig,
    TrafficEngine,
    TrafficEngineError,
    run_comparison,
)
from repro.traffic.federation import (
    ROUTER_POLICIES,
    ClusterSpec,
    FederatedTrafficEngine,
    FederationError,
    FederationSummary,
    GlobalRouter,
    RouterStats,
    parse_clusters,
    parse_fail_spec,
)
from repro.traffic.policies import (
    SCALING_POLICIES,
    autoscaler_factory,
    compare_scaling_policies,
    make_scaling_policy,
    policy_cluster_summaries,
)
from repro.traffic.slo import (
    SERVED_OUTCOMES,
    ClassSummary,
    RequestOutcome,
    RequestRecord,
    TrafficSummary,
    summarize,
    summarize_classes,
)
from repro.traffic.tenants import (
    CapacityArbiter,
    MultiTenantSummary,
    NodeUsage,
    TenantError,
    TenantSpec,
    derived_seed,
    parse_tenants,
)
from repro.traffic.report import (
    render_class_table,
    render_federation_report,
    render_middleware_table,
    render_multi_tenant_report,
    render_policy_comparison,
    render_router_table,
    render_traffic_report,
    render_waterfall_table,
)

__all__ = [
    "ArrivalError",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "load_azure_trace",
    "Request",
    "Autoscaler",
    "AutoscalerError",
    "LoadSample",
    "ScalingDecision",
    "ScalingPolicy",
    "TargetConcurrencyPolicy",
    "FixedReplicasPolicy",
    "NoScalingPolicy",
    "StepScalingPolicy",
    "PredictiveScalingPolicy",
    "SCALING_POLICIES",
    "make_scaling_policy",
    "autoscaler_factory",
    "compare_scaling_policies",
    "policy_cluster_summaries",
    "RequestClass",
    "RequestClassError",
    "assign_classes",
    "parse_classes",
    "ClassSummary",
    "summarize_classes",
    "IntraTenantOrder",
    "TRAFFIC_MODES",
    "TrafficConfig",
    "TrafficEngine",
    "MultiTenantTrafficEngine",
    "TrafficEngineError",
    "run_comparison",
    "ROUTER_POLICIES",
    "ClusterSpec",
    "FederatedTrafficEngine",
    "FederationError",
    "FederationSummary",
    "GlobalRouter",
    "RouterStats",
    "parse_clusters",
    "parse_fail_spec",
    "RequestOutcome",
    "RequestRecord",
    "SERVED_OUTCOMES",
    "TrafficSummary",
    "summarize",
    "FairnessPolicy",
    "FairQueue",
    "TenantQueueStats",
    "TenantSpec",
    "TenantError",
    "CapacityArbiter",
    "MultiTenantSummary",
    "NodeUsage",
    "derived_seed",
    "parse_tenants",
    "render_traffic_report",
    "render_federation_report",
    "render_router_table",
    "render_middleware_table",
    "render_multi_tenant_report",
    "render_class_table",
    "render_policy_comparison",
    "render_waterfall_table",
]
