"""Traffic: sustained multi-client load over the Roadrunner platform.

The paper's evaluation measures individual transfers; this subsystem
measures the platform under *sustained* load, the regime the ROADMAP's
"heavy traffic from millions of users" north star cares about:

* :mod:`repro.traffic.arrivals` — seeded Poisson / bursty / diurnal /
  trace-driven arrival processes producing timestamped request streams;
* :mod:`repro.traffic.engine` — a discrete-event engine that admits
  requests through the :class:`~repro.platform.gateway.IngressGateway`,
  queues them while replicas are busy or cold-starting, and executes them
  with bounded per-replica and per-node concurrency;
* :mod:`repro.traffic.autoscaler` — a control loop (target-concurrency /
  fixed / none policies) that grows replica pools by paying each runtime's
  modelled cold start and reclaims replicas idle past their keep-alive;
* :mod:`repro.traffic.slo` — per-request accounting rolled into p50/p95/p99
  latency, queueing delay, timeout/drop counts and goodput;
* :mod:`repro.traffic.tenants` — multi-tenant runs: tenant specs with
  weights and derived seeds, weight-proportional capacity arbitration, and
  the per-tenant/cluster rollup shared-cluster runs produce;
* :mod:`repro.traffic.report` — the plain-text reports
  ``python -m repro traffic`` prints.

This opens scenario axes the paper never swept: load level x arrival
pattern x runtime under identical seeded arrival streams, and tenant mix x
gateway fairness policy over one contended cluster (noisy neighbours).
"""

from repro.traffic.arrivals import (
    ArrivalError,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    Request,
    TraceArrivals,
)
from repro.traffic.autoscaler import (
    Autoscaler,
    AutoscalerError,
    FixedReplicasPolicy,
    LoadSample,
    NoScalingPolicy,
    ScalingDecision,
    ScalingPolicy,
    TargetConcurrencyPolicy,
)
from repro.platform.gateway import FairnessPolicy, FairQueue, TenantQueueStats
from repro.traffic.engine import (
    TRAFFIC_MODES,
    MultiTenantTrafficEngine,
    TrafficConfig,
    TrafficEngine,
    TrafficEngineError,
    run_comparison,
)
from repro.traffic.slo import RequestOutcome, RequestRecord, TrafficSummary, summarize
from repro.traffic.tenants import (
    CapacityArbiter,
    MultiTenantSummary,
    TenantError,
    TenantSpec,
    derived_seed,
    parse_tenants,
)
from repro.traffic.report import render_multi_tenant_report, render_traffic_report

__all__ = [
    "ArrivalError",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "Request",
    "Autoscaler",
    "AutoscalerError",
    "LoadSample",
    "ScalingDecision",
    "ScalingPolicy",
    "TargetConcurrencyPolicy",
    "FixedReplicasPolicy",
    "NoScalingPolicy",
    "TRAFFIC_MODES",
    "TrafficConfig",
    "TrafficEngine",
    "MultiTenantTrafficEngine",
    "TrafficEngineError",
    "run_comparison",
    "RequestOutcome",
    "RequestRecord",
    "TrafficSummary",
    "summarize",
    "FairnessPolicy",
    "FairQueue",
    "TenantQueueStats",
    "TenantSpec",
    "TenantError",
    "CapacityArbiter",
    "MultiTenantSummary",
    "derived_seed",
    "parse_tenants",
    "render_traffic_report",
    "render_multi_tenant_report",
]
