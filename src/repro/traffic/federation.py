"""Multi-region federation: N clusters behind one global front door.

The single-cluster engine (:mod:`repro.traffic.engine`) drives one
:class:`~repro.traffic.cluster_runtime.ClusterRuntime`; this module drives
*several* over one shared :class:`~repro.sim.engine.PartitionedEventLoop`
and one :class:`~repro.sim.clock.SimClock`, which is what makes the
federation a single coherent simulation: cross-region placements, WAN
transfers and regional failures interleave with every cluster's dispatch
and scaling events in exact time order, and a seeded run is byte-for-byte
reproducible.

The pieces:

* :class:`ClusterSpec` — one region's shape (name, nodes, memory budget,
  initial pool, which tenants call it home);
* the WAN — a full-mesh :class:`~repro.net.topology.Topology` with one
  node per region, so a cross-region placement pays the link's seeded
  propagation plus payload transmission time before it may even queue;
* :class:`GlobalRouter` — per-request placement with pluggable policies
  (``locality``, ``least-loaded``, ``warmth``, ``data-gravity``,
  ``random``), deterministic tie-breaks (home region first, then cluster
  registration order) and spillover whenever the preferred region is
  saturated or failed;
* :class:`FederatedTrafficEngine` — the driver: it generates the global
  arrival streams, routes each request, delivers it (possibly over the
  WAN), injects regional failures (``fail_at``), and rolls every region up
  into one :class:`FederationSummary`.

Failure semantics: a failed region halts its control plane and admits no
new work; its in-flight requests drain gracefully (completions still fire
and account normally) while its *queued* requests are evacuated and
re-routed to surviving regions — each re-placement pays the WAN hop out of
the failed region and counts as a failover.  A request already in WAN
transit toward a region that dies before it lands is bounced onward the
same way.

A federation of exactly one cluster whose region name matches the engine's
node prefix (``"traffic"``) reproduces the unfederated engine request for
request: same events, same tie-breaks, same floats (a property test pins
this).
"""

from __future__ import annotations

import json
import random

from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.net.topology import Topology
from repro.platform.gateway import FairnessPolicy, IntraTenantOrder
from repro.sim.clock import SimClock
from repro.sim.engine import PartitionedEventLoop, parallel_map
from repro.traffic.arrivals import Request
from repro.traffic.autoscaler import Autoscaler, TargetConcurrencyPolicy
from repro.traffic.cluster_runtime import (
    ClusterRuntime,
    _measure_service_time,
    _merge_timelines,
    _spec_for_mode,
    _TenantState,
)
from repro.traffic.engine import (
    TRAFFIC_MODES,
    TrafficConfig,
    TrafficEngineError,
    schedule_arrivals,
)
from repro.traffic.slo import RequestRecord, TrafficSummary, summarize
from repro.traffic.tenants import MultiTenantSummary, TenantSpec

if TYPE_CHECKING:  # pragma: no cover - lazy to avoid the obs import cycle
    from repro.gateway.middleware import MiddlewarePipeline
    from repro.obs.telemetry import Telemetry


class FederationError(TrafficEngineError):
    """Raised for invalid federation configurations."""


#: Placement policies :class:`GlobalRouter` understands.
ROUTER_POLICIES: Tuple[str, ...] = (
    "locality",
    "least-loaded",
    "warmth",
    "data-gravity",
    "random",
)


@dataclass(frozen=True)
class ClusterSpec:
    """One region of the federation: a cluster's shape and its home tenants."""

    #: Region name; becomes the cluster's node prefix (``region-0`` ...) and
    #: its ledger shard name, and labels every per-region output.
    region: str
    #: Nodes in this region's serving cluster.
    nodes: int = 4
    #: Per-node RSS budget in MB (``None`` = the base config's budget).
    node_memory_mb: Optional[float] = None
    #: Initial replicas per *home* tenant (``None`` = the base config's).
    initial_replicas: Optional[int] = None
    #: Per-replica concurrency override (``None`` = the base config's).
    per_replica_concurrency: Optional[int] = None
    #: Tenants homed here: their clients enter the federation at this
    #: region's front door and their initial pools boot here.  Tenants
    #: listed nowhere are homed in the first cluster.
    tenants: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.region:
            raise FederationError("cluster region name must be non-empty")
        if self.nodes < 1:
            raise FederationError("region %r needs at least one node" % self.region)
        if self.node_memory_mb is not None and self.node_memory_mb < 0:
            raise FederationError("region %r: node_memory_mb must be non-negative" % self.region)
        if self.initial_replicas is not None and self.initial_replicas < 0:
            raise FederationError("region %r: initial_replicas must be non-negative" % self.region)
        if self.per_replica_concurrency is not None and self.per_replica_concurrency < 1:
            raise FederationError(
                "region %r: per_replica_concurrency must be >= 1" % self.region
            )

    def config_for(self, base: TrafficConfig) -> TrafficConfig:
        """The base run config specialized to this region's shape."""
        overrides: Dict[str, object] = {"nodes": self.nodes}
        if self.node_memory_mb is not None:
            overrides["node_memory_mb"] = self.node_memory_mb
        if self.initial_replicas is not None:
            overrides["initial_replicas"] = self.initial_replicas
        if self.per_replica_concurrency is not None:
            overrides["per_replica_concurrency"] = self.per_replica_concurrency
        return replace(base, **overrides)


#: Recognised keys of one cluster object in a ``--clusters`` config.
_CLUSTER_KEYS = frozenset(
    {"region", "nodes", "memory_mb", "initial_replicas", "concurrency", "tenants"}
)


def parse_clusters(source) -> Tuple[ClusterSpec, ...]:
    """Parse the ``repro traffic --clusters`` format.

    ``source`` is a JSON array (or an already-decoded list) of objects::

        [{"region": "us-east", "nodes": 4, "memory_mb": 512,
          "initial_replicas": 2, "concurrency": 1, "tenants": ["checkout"]}]

    Only ``region`` is required; unknown keys are rejected so typos fail
    loudly instead of silently running the default shape.
    """
    if isinstance(source, str):
        try:
            source = json.loads(source)
        except ValueError as exc:
            raise FederationError("invalid --clusters JSON: %s" % exc) from exc
    if not isinstance(source, list) or not source:
        raise FederationError("--clusters must be a non-empty JSON array of objects")
    specs: List[ClusterSpec] = []
    for entry in source:
        if not isinstance(entry, dict):
            raise FederationError("each cluster must be a JSON object, got %r" % (entry,))
        unknown = set(entry) - _CLUSTER_KEYS
        if unknown:
            raise FederationError(
                "unknown cluster keys %s (known: %s)"
                % (sorted(unknown), ", ".join(sorted(_CLUSTER_KEYS)))
            )
        if "region" not in entry:
            raise FederationError("each cluster needs a 'region' name")
        specs.append(
            ClusterSpec(
                region=entry["region"],
                nodes=int(entry.get("nodes", 4)),
                node_memory_mb=(
                    float(entry["memory_mb"]) if "memory_mb" in entry else None
                ),
                initial_replicas=(
                    int(entry["initial_replicas"]) if "initial_replicas" in entry else None
                ),
                per_replica_concurrency=(
                    int(entry["concurrency"]) if "concurrency" in entry else None
                ),
                tenants=tuple(entry.get("tenants", ())),
            )
        )
    return tuple(specs)


def parse_fail_spec(source: str) -> Tuple[str, float]:
    """Parse one ``--fail-region name@seconds`` spec."""
    name, sep, at = source.partition("@")
    if not sep or not name:
        raise FederationError(
            "--fail-region wants 'region@seconds', got %r" % source
        )
    try:
        time_s = float(at)
    except ValueError as exc:
        raise FederationError(
            "--fail-region %r: %r is not a time in seconds" % (source, at)
        ) from exc
    if time_s < 0:
        raise FederationError("--fail-region %r: time must be non-negative" % source)
    return name, time_s


@dataclass
class RouterStats:
    """What the global router did over one run."""

    policy: str
    #: Requests placed into each region (first placement, not failovers).
    placements: Dict[str, int] = field(default_factory=dict)
    #: Placements into the tenant's home region.
    local: int = 0
    #: Placements into any other region (includes spillovers).
    remote: int = 0
    #: Remote placements forced by an unavailable home (saturated/failed).
    spillovers: int = 0
    #: Requests re-routed out of a failed region (evacuations + bounces).
    failovers: int = 0
    #: WAN time paid by all cross-region transfers, in seconds.
    wan_seconds: float = 0.0
    #: Payload bytes shipped across regions.
    wan_bytes: int = 0


class GlobalRouter:
    """Per-request placement across the federation's regions.

    Every decision is deterministic: candidate regions are scanned in
    cluster registration order, the tenant's home region wins ties, and
    the only randomness (the ``random`` baseline policy) draws from its
    own seeded generator.  Failed regions are always skipped; saturated
    regions (next enqueue would be dropped) are skipped while any
    non-saturated candidate exists — that skip *is* the spillover.
    """

    def __init__(
        self,
        policy: str,
        regions: Sequence[str],
        home: Mapping[str, str],
        runtimes: Mapping[str, ClusterRuntime],
        seed: int = 0,
    ) -> None:
        if policy not in ROUTER_POLICIES:
            raise FederationError(
                "unknown router policy %r (known: %s)" % (policy, ", ".join(ROUTER_POLICIES))
            )
        self.policy = policy
        self._regions = list(regions)
        self._index = {region: index for index, region in enumerate(self._regions)}
        self._home = dict(home)
        self._runtimes = runtimes
        self._rng = random.Random(seed)
        #: data-gravity stickiness: (tenant, payload key) -> region.
        self._sticky: Dict[Tuple[str, int], str] = {}
        self.stats = RouterStats(
            policy=policy, placements={region: 0 for region in self._regions}
        )

    def _choose(
        self, tenant: str, request: Request, now: float, exclude: Optional[str]
    ) -> Optional[str]:
        runtimes = self._runtimes
        candidates = [
            region
            for region in self._regions
            if region != exclude and not runtimes[region].halted
        ]
        if not candidates:
            return None
        home = self._home[tenant]
        unsaturated = [
            region for region in candidates if not runtimes[region].saturated(tenant)
        ]
        pool = unsaturated or candidates
        policy = self.policy
        if policy == "locality":
            return home if home in pool else pool[0]
        if policy == "least-loaded":
            return min(
                pool,
                key=lambda region: (
                    runtimes[region].load(),
                    0 if region == home else 1,
                    self._index[region],
                ),
            )
        if policy == "warmth":
            return min(
                pool,
                key=lambda region: (
                    -runtimes[region].warm_ready(tenant, now),
                    0 if region == home else 1,
                    self._index[region],
                ),
            )
        if policy == "data-gravity":
            key = (tenant, request.payload_bytes)
            stuck = self._sticky.get(key)
            if stuck is not None and stuck in pool:
                return stuck
            chosen = home if home in pool else pool[0]
            self._sticky[key] = chosen
            return chosen
        # "random": the placement baseline the locality demo beats.
        return pool[self._rng.randrange(len(pool))]

    def place(self, tenant: str, request: Request, now: float) -> Optional[str]:
        """First placement of one request; accounts the decision."""
        region = self._choose(tenant, request, now, exclude=None)
        if region is None:
            return None
        home = self._home[tenant]
        stats = self.stats
        stats.placements[region] += 1
        if region == home:
            stats.local += 1
        else:
            stats.remote += 1
            runtime = self._runtimes[home]
            if runtime.halted or runtime.saturated(tenant):
                stats.spillovers += 1
        return region

    def reroute(
        self, tenant: str, request: Request, now: float, exclude: str
    ) -> Optional[str]:
        """Re-placement out of a failed region; accounted as a failover."""
        region = self._choose(tenant, request, now, exclude=exclude)
        self.stats.failovers += 1
        return region


@dataclass
class FederationSummary:
    """Everything one federated run produced."""

    fairness: str
    #: The router's policy and placement/WAN accounting.
    router: RouterStats
    #: Per-region rollups, keyed by region name (each a full
    #: :class:`~repro.traffic.tenants.MultiTenantSummary`).
    regions: Dict[str, MultiTenantSummary]
    #: Federation-wide per-tenant rollups (across every region).
    tenants: Dict[str, TrafficSummary]
    #: Federation-wide aggregate over all tenants and regions.
    cluster: TrafficSummary
    #: Regions failed during the run (injection order).
    failed_regions: Tuple[str, ...] = ()
    #: Tenant name -> home region (where its clients enter the federation).
    home: Dict[str, str] = field(default_factory=dict)

    def region(self, name: str) -> MultiTenantSummary:
        if name not in self.regions:
            raise FederationError(
                "no region %r in this run (have: %s)"
                % (name, ", ".join(sorted(self.regions)))
            )
        return self.regions[name]


class FederatedTrafficEngine:
    """Drives every tenant's stream across N WAN-linked regional clusters."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        clusters: Sequence[ClusterSpec],
        config: Optional[TrafficConfig] = None,
        fairness: FairnessPolicy = FairnessPolicy.WFQ,
        starvation_guard: int = 32,
        autoscaler_factory: Optional[Callable[[], Autoscaler]] = None,
        oversubscription: float = 2.0,
        intra: IntraTenantOrder = IntraTenantOrder.FIFO,
        router: str = "locality",
        router_seed: int = 0,
        wan_rtt_s: Optional[float] = None,
        wan_bandwidth_Bps: Optional[float] = None,
        telemetry_factory: Optional[Callable[[str], "Telemetry"]] = None,
        middleware_factory: Optional[Callable[[str], "MiddlewarePipeline"]] = None,
        fail_at: Optional[Mapping[str, float]] = None,
        service_cache: Optional[Dict[Tuple[str, int], float]] = None,
    ) -> None:
        if not tenants:
            raise FederationError("need at least one tenant")
        if not clusters:
            raise FederationError("need at least one cluster")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise FederationError("tenant names must be unique, got %s" % names)
        if "cluster" in names:
            raise FederationError(
                "tenant name 'cluster' is reserved for the cluster-wide rollup"
            )
        functions = [tenant.function_name for tenant in tenants]
        if len(set(functions)) != len(functions):
            raise FederationError("tenant functions must be unique, got %s" % functions)
        for tenant in tenants:
            if tenant.mode not in TRAFFIC_MODES:
                raise FederationError(
                    "tenant %r: unknown traffic mode %r (known: %s)"
                    % (tenant.name, tenant.mode, ", ".join(TRAFFIC_MODES))
                )
        regions = [cluster.region for cluster in clusters]
        if len(set(regions)) != len(regions):
            raise FederationError("region names must be unique, got %s" % regions)
        known = set(names)
        homed: Dict[str, str] = {}
        for cluster in clusters:
            for tenant_name in cluster.tenants:
                if tenant_name not in known:
                    raise FederationError(
                        "region %r homes unknown tenant %r" % (cluster.region, tenant_name)
                    )
                if tenant_name in homed:
                    raise FederationError(
                        "tenant %r is homed in both %r and %r"
                        % (tenant_name, homed[tenant_name], cluster.region)
                    )
                homed[tenant_name] = cluster.region
        # Tenants listed nowhere are homed in the first cluster.
        for name in names:
            homed.setdefault(name, regions[0])
        if router not in ROUTER_POLICIES:
            raise FederationError(
                "unknown router policy %r (known: %s)" % (router, ", ".join(ROUTER_POLICIES))
            )
        if fail_at:
            unknown_regions = set(fail_at) - set(regions)
            if unknown_regions:
                raise FederationError(
                    "--fail-region names unknown regions: %s" % sorted(unknown_regions)
                )

        self.tenants = list(tenants)
        self.clusters = list(clusters)
        self.regions = regions
        self.home = homed
        self.config = config or TrafficConfig()
        self.fairness = fairness
        self.starvation_guard = starvation_guard
        self.intra = intra
        self.oversubscription = oversubscription
        self.autoscaler_factory = autoscaler_factory or (
            lambda: Autoscaler(TargetConcurrencyPolicy(1.0))
        )
        self.router_policy = router
        self.router_seed = router_seed
        self.wan_rtt_s = wan_rtt_s
        self.wan_bandwidth_Bps = wan_bandwidth_Bps
        self.telemetry_factory = telemetry_factory
        self.middleware_factory = middleware_factory
        self.fail_at = dict(fail_at or {})
        self.clock = SimClock()
        self._service_cache: Dict[Tuple[str, int], float] = (
            service_cache if service_cache is not None else {}
        )
        #: Per-region per-tenant records of the last run (retained mode).
        self.records: Dict[str, Dict[str, List[RequestRecord]]] = {}
        #: Per-region OOM evictions of the last run.
        self.evictions: Dict[str, List[Tuple[float, str, str]]] = {}
        #: The router of the last run (placement + WAN accounting).
        self.router: Optional[GlobalRouter] = None
        #: Per-region telemetry sinks of the last run (for the CLI to drain).
        self.telemetries: Dict[str, "Telemetry"] = {}

    # -- service times ---------------------------------------------------------------

    def _service_time(self, mode: str, payload_bytes: int) -> float:
        key = (mode, payload_bytes)
        cached = self._service_cache.get(key)
        if cached is None:
            cached = _measure_service_time(mode, payload_bytes, self.config.cost_model)
            self._service_cache[key] = cached
        return cached

    def _prefill_service_cache(self, streams: Mapping[str, List[Request]]) -> None:
        wanted = {
            (tenant.mode, request.payload_bytes)
            for tenant in self.tenants
            for request in streams[tenant.name]
        }
        needed = sorted(wanted - set(self._service_cache))
        if not needed:
            return
        results = parallel_map(
            _measure_service_time,
            [(mode, payload, self.config.cost_model) for mode, payload in needed],
        )
        for key, value in zip(needed, results):
            self._service_cache[key] = value

    # -- the run ---------------------------------------------------------------------

    def run(self) -> FederationSummary:
        """Route, deliver, execute and account every tenant's stream."""
        streams: Dict[str, List[Request]] = {
            tenant.name: tenant.generate() for tenant in self.tenants
        }
        total_requests = sum(len(stream) for stream in streams.values())
        if total_requests == 0:
            raise FederationError("cannot run with zero requests across all tenants")
        retain = self.config.retain_records
        if self.config.parallel_nodes:
            self._prefill_service_cache(streams)

        self.clock.reset()
        loop = PartitionedEventLoop()
        counter = [total_requests]
        regions = self.regions
        single_region = len(regions) == 1

        # Global (cross-region) rollup accumulators for sketch mode, fed by
        # each runtime's on_record hook; record.function keys the tenant.
        tenant_streams = cluster_stream = None
        by_function = {tenant.function_name: tenant.name for tenant in self.tenants}
        observers: Dict[str, Optional[Callable[[RequestRecord], None]]] = {
            region: None for region in regions
        }
        if not retain:
            from repro.obs.streaming import StreamingTrafficStats

            tenant_streams = {
                tenant.name: StreamingTrafficStats(declared_classes=tenant.class_names)
                for tenant in self.tenants
            }
            cluster_stream = StreamingTrafficStats()

            def observe_global(record: RequestRecord) -> None:
                tenant_streams[by_function[record.function]].observe(record)
                cluster_stream.observe(record)

            observers = {region: observe_global for region in regions}

        # One runtime per region, all over the shared clock and loop.
        runtimes: Dict[str, ClusterRuntime] = {}
        region_states: Dict[str, List[_TenantState]] = {}
        self.telemetries = {}
        for spec in self.clusters:
            region = spec.region
            cfg = spec.config_for(self.config)
            states = [
                _TenantState(
                    spec=tenant,
                    function_spec=_spec_for_mode(
                        tenant.mode, tenant.function_name, tenant.name
                    ),
                    autoscaler=self.autoscaler_factory(),
                    requests=[],  # the driver owns the global streams
                )
                for tenant in self.tenants
            ]
            region_cluster_stream = None
            if not retain:
                from repro.obs.streaming import StreamingTrafficStats

                for state in states:
                    state.stream = StreamingTrafficStats(
                        declared_classes=state.spec.class_names
                    )
                region_cluster_stream = StreamingTrafficStats()
            telemetry = (
                self.telemetry_factory(region) if self.telemetry_factory else None
            )
            if telemetry is not None:
                self.telemetries[region] = telemetry
            pipeline = (
                self.middleware_factory(region) if self.middleware_factory else None
            )
            runtimes[region] = ClusterRuntime(
                states=states,
                config=cfg,
                fairness=self.fairness,
                starvation_guard=self.starvation_guard,
                intra=self.intra,
                oversubscription=self.oversubscription,
                clock=self.clock,
                loop=loop,
                service_time=self._service_time,
                service_cache=self._service_cache,
                counter=counter,
                total_requests=total_requests,
                telemetry=telemetry,
                pipeline=pipeline,
                cluster_stream=region_cluster_stream,
                region=region,
                node_prefix=region,
                on_record=observers[region],
            )
            region_states[region] = states
        self.evictions = {region: runtimes[region].evictions for region in regions}

        # The WAN: a full mesh, one topology node per region.  A federation
        # of one region never crosses it and never builds a link.
        topology = Topology(cost_model=self.config.cost_model)
        for region in regions:
            topology.add_node(region)
        for left_index, left in enumerate(regions):
            for right in regions[left_index + 1 :]:
                topology.connect(
                    left,
                    right,
                    bandwidth=self.wan_bandwidth_Bps,
                    rtt=self.wan_rtt_s,
                )

        router = GlobalRouter(
            self.router_policy,
            regions,
            self.home,
            runtimes,
            seed=self.router_seed,
        )
        self.router = router
        stats = router.stats
        home = self.home
        failed_regions: List[str] = []

        last_arrival = max(
            (request.arrival_s for stream in streams.values() for request in stream),
            default=0.0,
        )
        for region, telemetry in self.telemetries.items():
            telemetry.on_run_start(total_requests, duration_hint_s=last_arrival)

        # Bootstrap each region before any arrival: home tenants get their
        # initial pool where their clients enter; everyone else scales from
        # zero on demand (warmth/locality make that visible).
        for spec in self.clusters:
            region = spec.region
            initial = (
                spec.initial_replicas
                if spec.initial_replicas is not None
                else self.config.initial_replicas
            )
            runtimes[region].bootstrap(
                {
                    tenant.name: (initial if home[tenant.name] == region else 0)
                    for tenant in self.tenants
                }
            )

        def deliver(region: str, tenant_name: str, request: Request) -> None:
            """Land one request in ``region`` (possibly after WAN transit).

            A region that failed while the request was in flight bounces it
            onward: one more WAN hop out of the dead region, one more
            failover.  With every region down it lands anyway — the dead
            region's queue timeout is what finally rejects it.
            """
            runtime = runtimes[region]
            if runtime.halted:
                target = router.reroute(tenant_name, request, loop.now, exclude=region)
                if target is not None and target != region:
                    hop = topology.link_between(region, target)
                    delay = hop.transfer_seconds(request.payload_bytes)
                    stats.wan_seconds += delay
                    stats.wan_bytes += request.payload_bytes
                    loop.schedule_at(
                        loop.now + delay,
                        deliver,
                        label="wan",
                        args=(target, tenant_name, request),
                    )
                    return
            runtime.admit(runtime.by_tenant[tenant_name], request)

        def route(tenant_name: str, request: Request) -> None:
            """The front door: place one arrival and start its delivery."""
            if single_region:
                # One region: no routing decision exists and no WAN is
                # crossed — the fast path is exactly the engine's admit.
                deliver(regions[0], tenant_name, request)
                return
            now = loop.now
            region = router.place(tenant_name, request, now)
            origin = home[tenant_name]
            if region is None:
                # Every region is down; land at home and let its queue
                # timeout account the rejection.
                stats.placements[origin] += 1
                deliver(origin, tenant_name, request)
                return
            if region == origin:
                deliver(region, tenant_name, request)
                return
            link = topology.link_between(origin, region)
            delay = link.transfer_seconds(request.payload_bytes)
            stats.wan_seconds += delay
            stats.wan_bytes += request.payload_bytes
            loop.schedule_at(
                now + delay, deliver, label="wan", args=(region, tenant_name, request)
            )

        def fail_region(region: str) -> None:
            runtime = runtimes[region]
            if runtime.halted:
                return
            failed_regions.append(region)
            now = loop.now
            for state, request in runtime.fail(now):
                target = router.reroute(state.name, request, now, exclude=region)
                if target is None or target == region:
                    # Nowhere alive to go: re-admit locally; the queue
                    # timeout (patience already spent) rejects it.
                    runtime.admit(state, request)
                    continue
                hop = topology.link_between(region, target)
                delay = hop.transfer_seconds(request.payload_bytes)
                stats.wan_seconds += delay
                stats.wan_bytes += request.payload_bytes
                loop.schedule_at(
                    now + delay,
                    deliver,
                    label="wan",
                    args=(target, state.name, request),
                )

        # The driver-side arrival merge reuses the engine's scheduling
        # discipline verbatim (reserved order slots, lazy chaining); its
        # admit hook is the router instead of a cluster.
        route_states = [
            _RouteState(name=tenant.name, requests=streams[tenant.name])
            for tenant in self.tenants
        ]
        schedule_arrivals(
            loop,
            route_states,
            lambda route_state, request: route(route_state.name, request),
            total_requests,
        )
        for region, time_s in sorted(self.fail_at.items(), key=lambda item: item[1]):
            loop.schedule_at(
                time_s, fail_region, label="fail:%s" % region, args=(region,)
            )
        for region in regions:
            runtimes[region].start_ticks()
        if self.config.parallel_nodes:
            loop.run_parallel()
        else:
            loop.run()

        if counter[0] != 0:
            raise FederationError(
                "federation finished with %d unresolved requests" % counter[0]
            )
        duration = max(
            [last_arrival] + [runtimes[region].last_event_s for region in regions]
        )
        for region in regions:
            runtimes[region].finalize(duration)
        for region, telemetry in self.telemetries.items():
            telemetry.on_run_end(
                duration,
                total_requests,
                sum(len(state.replicas) for state in region_states[region]),
            )
        region_summaries = {
            region: runtimes[region].snapshot(duration) for region in regions
        }
        self.records = {region: runtimes[region].records for region in regions}

        return FederationSummary(
            fairness=self.fairness.value,
            router=stats,
            regions=region_summaries,
            tenants=self._global_tenants(duration, region_states, tenant_streams),
            cluster=self._global_cluster(
                duration, region_states, cluster_stream
            ),
            failed_regions=tuple(failed_regions),
            home=dict(home),
        )

    # -- global rollups --------------------------------------------------------------

    def _global_tenants(
        self,
        duration: float,
        region_states: Mapping[str, List[_TenantState]],
        tenant_streams,
    ) -> Dict[str, TrafficSummary]:
        """Per-tenant rollups across every region."""
        out: Dict[str, TrafficSummary] = {}
        for index, tenant in enumerate(self.tenants):
            states = [region_states[region][index] for region in self.regions]
            aggregates = dict(
                cold_starts=sum(state.cold_starts for state in states),
                cold_start_seconds=sum(state.cold_start_seconds for state in states),
                replica_timeline=_merge_timelines([state.timeline for state in states]),
                declared_classes=tenant.class_names,
                oom_evictions=sum(state.oom_evictions for state in states),
                rss_mb_seconds=sum(state.rss_mb_seconds for state in states),
                cpu_seconds=sum(state.cpu_seconds for state in states),
            )
            if tenant_streams is not None:
                out[tenant.name] = tenant_streams[tenant.name].summary(
                    mode=tenant.mode,
                    pattern=tenant.pattern_name,
                    duration_s=duration,
                    **aggregates,
                )
            else:
                records = sorted(
                    (record for state in states for record in state.records),
                    key=lambda record: record.request_id,
                )
                out[tenant.name] = summarize(
                    mode=tenant.mode,
                    pattern=tenant.pattern_name,
                    duration_s=duration,
                    records=records,
                    **aggregates,
                )
        return out

    def _global_cluster(
        self,
        duration: float,
        region_states: Mapping[str, List[_TenantState]],
        cluster_stream,
    ) -> TrafficSummary:
        """The federation-wide aggregate over all tenants and regions."""
        states = [
            state for region in self.regions for state in region_states[region]
        ]
        declared = sorted(
            {name for tenant in self.tenants for name in tenant.class_names}
        )
        aggregates = dict(
            cold_starts=sum(state.cold_starts for state in states),
            cold_start_seconds=sum(state.cold_start_seconds for state in states),
            replica_timeline=_merge_timelines([state.timeline for state in states]),
            declared_classes=declared,
            oom_evictions=sum(state.oom_evictions for state in states),
            rss_mb_seconds=sum(state.rss_mb_seconds for state in states),
            cpu_seconds=sum(state.cpu_seconds for state in states),
        )
        if cluster_stream is not None:
            return cluster_stream.summary(
                mode="federation",
                pattern="multi-region",
                duration_s=duration,
                **aggregates,
            )
        records = sorted(
            (record for state in states for record in state.records),
            key=lambda record: record.request_id,
        )
        return summarize(
            mode="federation",
            pattern="multi-region",
            duration_s=duration,
            records=records,
            **aggregates,
        )


@dataclass
class _RouteState:
    """The driver-side stand-in :func:`schedule_arrivals` iterates over."""

    name: str
    requests: List[Request]
