"""Plain-text rendering of sustained-load runs.

One table of SLO numbers per compared runtime (or per tenant of a shared
cluster), one latency-distribution table (shared formatting with every
other latency report in the reproduction), and a replica-count-over-time
strip per mode so autoscaler behaviour is visible without plotting.  Runs
with scheduling classes add a per-class table (volume, deadline-met ratio,
tail latency per class), and policy-comparison runs get a dedicated table
lining up p99, deadline attainment, cold starts and replica-seconds across
scaling policies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

from repro.metrics.report import format_latency_summaries, format_table
from repro.traffic.slo import TrafficSummary
from repro.traffic.tenants import MultiTenantSummary

if TYPE_CHECKING:  # pragma: no cover - type-only; repro.obs imports this package
    from repro.obs.spans import WaterfallRow
    from repro.traffic.federation import FederationSummary


def render_summary_table(
    results: Mapping[str, TrafficSummary],
    title: str = "Traffic summary",
    label: str = "mode",
) -> str:
    """The headline table: volume, goodput, scaling, cold starts.

    Rows are labelled by the mapping's keys — runtime modes for a
    comparison run, tenant names for a shared-cluster run.
    """
    middleware = _has_middleware(results)
    memory = _has_memory(results)
    headers = [
        label,
        "offered",
        "completed",
        "timed out",
        "dropped",
        "shed",
    ]
    if middleware:
        # Middleware columns appear only when a pipeline actually resolved
        # requests, so pipeline-free reports keep their exact byte shape.
        headers += ["cached", "coalesced", "rate limited", "rejected"]
    headers += [
        "duration (s)",
        "goodput (rps)",
        "mean replicas",
        "max replicas",
        "cold starts",
        "cold start (s)",
    ]
    if memory:
        # Memory economics appear only when a memory model ran (same
        # conditional-rendering discipline as the middleware columns).
        headers += ["evicted", "RSS-MB/1k", "CPU-s/1k"]
    rows = []
    for key, summary in results.items():
        row = [
            key,
            summary.offered,
            summary.completed,
            summary.timed_out,
            summary.dropped,
            summary.shed,
        ]
        if middleware:
            row += [
                summary.cached,
                summary.coalesced,
                summary.rate_limited,
                summary.rejected,
            ]
        row += [
            summary.duration_s,
            summary.goodput_rps,
            summary.mean_replicas,
            summary.max_replicas,
            summary.cold_starts,
            summary.cold_start_seconds,
        ]
        if memory:
            row += [
                summary.oom_evictions,
                summary.rss_mb_per_1k,
                summary.cpu_seconds_per_1k,
            ]
        rows.append(row)
    return format_table(headers, rows, title=title)


def render_latency_tables(results: Mapping[str, TrafficSummary], label: str = "mode") -> str:
    """End-to-end latency and queueing-delay distributions, one row per key."""
    latency = {key: summary.latency for key, summary in results.items()}
    queueing = {key: summary.queueing for key, summary in results.items()}
    service = {key: summary.service for key, summary in results.items()}
    return "\n\n".join(
        [
            format_latency_summaries(latency, title="End-to-end latency", label=label),
            format_latency_summaries(queueing, title="Queueing delay", label=label),
            format_latency_summaries(service, title="Service time", label=label),
        ]
    )


def render_replica_timeline(
    summary: TrafficSummary, buckets: int = 12, width: int = 40, label: str = ""
) -> str:
    """An ASCII strip chart of pool size over the run for one mode/tenant."""
    name = label or summary.mode
    if not summary.replica_timeline or summary.duration_s <= 0:
        return "%s: no replica timeline" % name
    samples = _bucketize(summary.replica_timeline, summary.duration_s, buckets)
    peak = max(count for _, count in samples) or 1
    lines = ["replicas over time — %s" % name]
    for start, count in samples:
        bar = "#" * max(1 if count > 0 else 0, int(round(width * count / peak)))
        lines.append("  t=%7.1fs  %3d  %s" % (start, count, bar))
    return "\n".join(lines)


def _bucketize(
    timeline: Sequence[Tuple[float, int]], duration_s: float, buckets: int
) -> List[Tuple[float, int]]:
    """Collapse the (time, count) step function into per-bucket maxima.

    Each bucket reports the largest pool size active at any point during
    its interval — a short-lived peak between two bucket boundaries still
    shows up, so the strip chart never contradicts the table's
    ``max_replicas``.
    """
    step = duration_s / buckets
    samples: List[Tuple[float, int]] = []
    for index in range(buckets):
        start, end = index * step, (index + 1) * step
        entering = 0
        peak = None
        for time_s, value in timeline:
            if time_s <= start:
                entering = value
            elif time_s < end:
                peak = value if peak is None else max(peak, value)
            else:
                break
        peak = entering if peak is None else max(peak, entering)
        samples.append((start, peak))
    return samples


def render_class_table(
    results: Mapping[str, TrafficSummary],
    title: str = "Scheduling classes",
    label: str = "tenant",
) -> str:
    """Per-class SLO attainment: one row per (tenant/mode, class).

    A class with no completions has no latency distribution; its p50/p99
    cells render as ``n/a`` rather than a misleading zero.
    """
    headers = [
        label,
        "class",
        "offered",
        "completed",
        "timed out",
        "dropped",
        "shed",
        "deadline met",
        "deadline total",
        "met ratio",
        "p50 (s)",
        "p99 (s)",
    ]
    rows = [
        [
            key,
            cls.name,
            cls.offered,
            cls.completed,
            cls.timed_out,
            cls.dropped,
            cls.shed,
            cls.deadline_met,
            cls.deadline_total,
            cls.deadline_met_ratio,
            cls.latency.p50_s if cls.completed else "n/a",
            cls.latency.p99_s if cls.completed else "n/a",
        ]
        for key, summary in results.items()
        for cls in summary.classes
    ]
    return format_table(headers, rows, title=title)


def render_waterfall_table(
    rows: Sequence["WaterfallRow"],
    title: str = "Latency waterfall (where completed requests spent their time)",
) -> str:
    """The per-tenant/per-class stage decomposition of end-to-end latency.

    One row per (tenant-or-mode, class): mean and p95 of the pure queue
    wait, the cold-start wait, and the service time, plus the end-to-end
    total they roll up into.  Rows come from
    :func:`repro.obs.spans.waterfall_from_records` (exact) or the streaming
    accumulators (sketch mode) — the table doesn't care which.
    """
    if not rows:
        return "%s\n(no completed requests)" % title
    headers = [
        "scope",
        "class",
        "completed",
        "queue mean (s)",
        "queue p95 (s)",
        "cold mean (s)",
        "cold p95 (s)",
        "service mean (s)",
        "service p95 (s)",
        "total mean (s)",
        "total p95 (s)",
    ]
    table_rows = [
        [
            row.label,
            row.request_class,
            row.completed,
            row.queue_mean_s,
            row.queue_p95_s,
            row.cold_mean_s,
            row.cold_p95_s,
            row.service_mean_s,
            row.service_p95_s,
            row.total_mean_s,
            row.total_p95_s,
        ]
        for row in rows
    ]
    return format_table(headers, table_rows, title=title)


def _has_class_structure(results: Mapping[str, TrafficSummary]) -> bool:
    """Whether any run carries more than the implicit single default class."""
    return any(
        len(summary.classes) > 1 or summary.deadline_total > 0
        for summary in results.values()
    )


def _has_middleware(results: Mapping[str, TrafficSummary]) -> bool:
    """Whether any run had requests resolved by gateway middleware."""
    return any(
        summary.cached or summary.coalesced or summary.rate_limited or summary.rejected
        for summary in results.values()
    )


def _has_memory(results: Mapping[str, TrafficSummary]) -> bool:
    """Whether any run modelled memory (RSS-seconds accrued or OOM fired)."""
    return any(
        summary.rss_mb_seconds or summary.oom_evictions or summary.cpu_seconds
        for summary in results.values()
    )


def render_middleware_table(
    stats: Mapping[str, Mapping[str, int]],
    title: str = "Gateway middleware (per-stage counters)",
) -> str:
    """Per-stage middleware counters: one row per (stage, event).

    ``stats`` is :meth:`repro.gateway.MiddlewarePipeline.stats` (or the
    engine's ``middleware_stats``): stages in registration order, each
    mapping event names (hits, misses, parked, fired...) to counts.
    """
    headers = ["stage", "event", "count"]
    rows = [
        [stage, event, count]
        for stage, counters in stats.items()
        for event, count in counters.items()
    ]
    if not rows:
        return "%s\n(no middleware events)" % title
    return format_table(headers, rows, title=title)


def render_policy_comparison(results: Mapping[str, TrafficSummary]) -> str:
    """The policy-comparison headline: SLO vs provisioning cost per policy."""
    headers = [
        "policy",
        "completed",
        "p99 (s)",
        "deadline met ratio",
        "cold starts",
        "cold start (s)",
        "replica-seconds",
        "max replicas",
        "goodput (rps)",
    ]
    rows = [
        [
            policy,
            summary.completed,
            summary.latency.p99_s,
            summary.deadline_met_ratio,
            summary.cold_starts,
            summary.cold_start_seconds,
            summary.replica_seconds,
            summary.max_replicas,
            summary.goodput_rps,
        ]
        for policy, summary in results.items()
    ]
    parts = [
        format_table(
            headers, rows, title="Scaling-policy comparison (same seeded arrivals)"
        )
    ]
    if _has_class_structure(results):
        parts.extend(["", render_class_table(results, label="policy")])
    return "\n".join(parts)


def render_fairness_table(summary: MultiTenantSummary) -> str:
    """Gateway admission accounting: weights, dispatches, drops, timeouts, sheds."""
    headers = ["tenant", "weight", "enqueued", "dispatched", "dropped", "timed out", "shed"]
    rows = [
        [
            stats.tenant,
            stats.weight,
            stats.enqueued,
            stats.dispatched,
            stats.dropped,
            stats.timed_out,
            stats.shed,
        ]
        for stats in summary.queue_stats.values()
    ]
    return format_table(headers, rows, title="Gateway fair queue (%s)" % summary.fairness)


def render_node_table(summary: MultiTenantSummary) -> str:
    """Per-node ledger usage: what each shard of the cluster accounted."""
    headers = ["node", "charges", "total (s)", "cpu (s)", "peak RAM (MB)"]
    rows = [
        [
            usage.node,
            usage.charges,
            usage.total_seconds,
            usage.cpu_seconds,
            usage.peak_memory_mb,
        ]
        for usage in summary.nodes.values()
    ]
    return format_table(headers, rows, title="Per-node ledger shards")


def render_multi_tenant_report(summary: MultiTenantSummary) -> str:
    """The shared-cluster report: per-tenant tables, fairness, cluster rollup."""
    labelled = dict(summary.tenants)
    parts = [
        "Multi-tenant load: %d tenants sharing one cluster, fairness=%s (simulated time)"
        % (len(summary.tenants), summary.fairness),
        "",
        render_summary_table(labelled, title="Per-tenant summary", label="tenant"),
        "",
        render_fairness_table(summary),
        "",
    ]
    if any(summary.middleware.values()):
        parts.extend([render_middleware_table(summary.middleware), ""])
    if _has_class_structure(labelled):
        parts.extend([render_class_table(labelled), ""])
    parts.extend([
        render_latency_tables(labelled, label="tenant"),
        "",
        render_summary_table({"cluster": summary.cluster}, title="Cluster rollup", label="scope"),
        "",
    ])
    if summary.nodes:
        parts.extend([render_node_table(summary), ""])
    parts.extend(
        render_replica_timeline(tenant_summary, label=name)
        for name, tenant_summary in summary.tenants.items()
    )
    return "\n".join(parts)


def render_router_table(summary: "FederationSummary") -> str:
    """The global router's placement accounting, one row per region."""
    stats = summary.router
    headers = ["region", "placed", "home tenants", "status"]
    homes: Dict[str, List[str]] = {region: [] for region in summary.regions}
    for tenant, region in summary.home.items():
        homes.setdefault(region, []).append(tenant)
    rows = [
        [
            region,
            stats.placements.get(region, 0),
            ", ".join(sorted(homes.get(region, []))) or "-",
            "FAILED" if region in summary.failed_regions else "up",
        ]
        for region in summary.regions
    ]
    parts = [
        format_table(
            headers,
            rows,
            title="Global router (%s): %d local, %d remote, %d spillovers, %d failovers"
            % (stats.policy, stats.local, stats.remote, stats.spillovers, stats.failovers),
        )
    ]
    if stats.wan_bytes:
        parts.append(
            "WAN: %.1f MB shipped cross-region, %.3f s of transfer time paid"
            % (stats.wan_bytes / 1e6, stats.wan_seconds)
        )
    return "\n".join(parts)


def render_federation_report(summary: "FederationSummary") -> str:
    """The multi-region report: router, per-region and global rollups."""
    region_rollups = {
        region: region_summary.cluster
        for region, region_summary in summary.regions.items()
    }
    parts = [
        "Federated load: %d regions behind one global router, policy=%s, fairness=%s"
        " (simulated time)"
        % (len(summary.regions), summary.router.policy, summary.fairness),
        "",
        render_router_table(summary),
        "",
        render_summary_table(
            region_rollups, title="Per-region rollup", label="region"
        ),
        "",
        render_summary_table(
            summary.tenants, title="Per-tenant summary (all regions)", label="tenant"
        ),
        "",
        render_latency_tables(region_rollups, label="region"),
        "",
        render_summary_table(
            {"federation": summary.cluster}, title="Federation rollup", label="scope"
        ),
        "",
    ]
    for region, region_summary in summary.regions.items():
        parts.extend(
            [
                "=== region %s ===" % region,
                "",
                render_multi_tenant_report(region_summary),
            ]
        )
    return "\n".join(parts)


def render_traffic_report(results: Mapping[str, TrafficSummary]) -> str:
    """The full report the CLI prints: summary, distributions, timelines."""
    if not results:
        return "Sustained load: no runs to report"
    first = next(iter(results.values()))
    # Each mode's run ends when its last request resolves, so durations are
    # per mode (the summary table); only the arrival stream is shared.
    parts = [
        "Sustained load: pattern=%s, %d requests offered per mode (simulated time)"
        % (first.pattern, first.offered),
        "",
        render_summary_table(results),
        "",
    ]
    if _has_class_structure(results):
        parts.extend([render_class_table(results, label="mode"), ""])
    parts.extend([
        render_latency_tables(results),
        "",
    ])
    parts.extend(render_replica_timeline(summary) for summary in results.values())
    return "\n".join(parts)
