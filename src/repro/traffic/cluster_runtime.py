"""One serving cluster's runtime: the reusable core of the traffic engine.

:class:`ClusterRuntime` owns everything that belongs to *one* cluster —
the :class:`~repro.platform.gateway.IngressGateway` and its
:class:`~repro.platform.gateway.FairQueue`, the per-tenant autoscalers and
the capacity arbiter, the optional :class:`~repro.traffic.memory.NodeMemoryModel`,
the gateway middleware pipeline, the cluster's ledger shards, and all
replica/dispatch bookkeeping — behind a narrow interface:

* :attr:`admit` — one request enters the cluster (queue, shed or drop);
* :attr:`dispatch` — move queued work onto eligible replicas;
* :attr:`complete` — one request's completion event;
* :attr:`tick` — one tenant's autoscaler control interval;
* :meth:`snapshot` — the cluster's :class:`~repro.traffic.tenants.MultiTenantSummary`.

The single-cluster :class:`~repro.traffic.engine.MultiTenantTrafficEngine`
is now a thin driver over one runtime; the federation layer
(:mod:`repro.traffic.federation`) instantiates several over one shared
:class:`~repro.sim.engine.PartitionedEventLoop` behind a global router.

The request path is deliberately closure-based: every hot name is bound
once per run into local cells (the million-request regime pays for every
attribute chase), and the extraction keeps single-cluster runs
byte-identical to the pre-split engine.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.experiments.environment import build_pair_setup
from repro.platform.deployment import DeployedFunction
from repro.platform.cluster import Cluster
from repro.platform.function import FunctionSpec
from repro.platform.gateway import IngressGateway
from repro.platform.orchestrator import Orchestrator
from repro.sim.costs import CostModel
from repro.sim.ledger import CostCategory, CostLedger
from repro.traffic.arrivals import Request
from repro.traffic.autoscaler import Autoscaler, LoadSample
from repro.traffic.slo import RequestOutcome, RequestRecord, TrafficSummary, summarize
from repro.traffic.tenants import CapacityArbiter, MultiTenantSummary, NodeUsage, TenantSpec
from repro.wasm.runtime import RuntimeKind
from repro.workloads.generators import make_payload

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy to avoid
    # a cycle through repro.obs (whose modules import repro.traffic.slo).
    from repro.gateway.middleware import MiddlewarePipeline, RequestContext
    from repro.obs.spans import WaterfallRow
    from repro.obs.streaming import StreamingTrafficStats
    from repro.obs.telemetry import Telemetry

MB = 1024 * 1024


def _measure_service_time(mode: str, payload_bytes: int, cost_model: CostModel) -> float:
    """Workflow latency of one (mode, payload size): one isolated simulation.

    Module-level (and self-contained: fresh cluster, fresh ledger shards,
    fresh clock) so worker processes can run measurements concurrently for
    the parallel-nodes path; the result is deterministic either way.
    """
    setup = build_pair_setup(mode, cost_model=cost_model)
    payload = make_payload(payload_bytes / MB)
    return setup.invoker.invoke(setup.workflow, payload).total_latency_s


def _spec_for_mode(mode: str, function: str, tenant: str = "tenant-1") -> FunctionSpec:
    if mode == "runc-http":
        kind = RuntimeKind.RUNC
    elif mode == "wasmedge-http":
        kind = RuntimeKind.WASMEDGE
    else:
        kind = RuntimeKind.ROADRUNNER
    return FunctionSpec(
        name=function,
        runtime=kind,
        requires_wasi=kind is not RuntimeKind.RUNC,
        workflow="traffic",
        tenant=tenant,
    )


@dataclass
class _Replica:
    """Engine-side view of one gateway replica.

    Only warm-up and idleness live here; in-flight counts stay in the
    gateway (the load balancer's bookkeeping is the single source of
    truth — the engine samples it through the admission hooks).
    """

    deployed: DeployedFunction
    ready_at: float
    cold_s: float = 0.0
    idle_since: float = 0.0
    #: Modelled resident-set footprint (0.0 when the memory model is off).
    rss_mb: float = 0.0
    #: Registration time, for RSS-seconds (footprint x residency) accounting.
    born_s: float = 0.0
    #: The gateway's load-balancer state for this replica — held directly so
    #: the hot path reads in-flight counts and releases without pool scans.
    gw_state: Optional[object] = None
    #: ``deployed.node_name`` cached as a plain attribute (property calls on
    #: the deployment object showed up in million-request profiles).
    node: str = ""


@dataclass
class _TenantState:
    """Everything the runtime tracks for one tenant during a run."""

    spec: TenantSpec
    function_spec: FunctionSpec
    autoscaler: Autoscaler
    requests: List[Request]
    replicas: List[_Replica] = field(default_factory=list)
    by_name: Dict[str, _Replica] = field(default_factory=dict)
    records: List[RequestRecord] = field(default_factory=list)
    #: Streaming accumulators, built instead of ``records`` in sketch mode.
    stream: Optional[StreamingTrafficStats] = None
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    cold_starts: int = 0
    cold_start_seconds: float = 0.0
    # Arrival-rate sampling for predictive scaling policies.
    arrivals_since_tick: int = 0
    last_tick_s: float = 0.0
    # Memory model (all stay zero when the model is off).
    rss_mb: float = 0.0          # resolved per-replica footprint
    oom_evictions: int = 0
    rss_mb_seconds: float = 0.0  # integral of RSS over replica residency
    cpu_seconds: float = 0.0     # replica-busy seconds (hedged losers too)
    # Spec-derived names, materialized once: these were properties, but the
    # request path reads them several times per request.
    name: str = field(init=False)
    function: str = field(init=False)

    def __post_init__(self) -> None:
        self.name = self.spec.name
        self.function = self.spec.function_name


def _merge_timelines(
    timelines: Sequence[Sequence[Tuple[float, int]]],
) -> List[Tuple[float, int]]:
    """Sum per-tenant (time, pool size) step functions into a cluster total."""
    # Each tenant's timeline is appended in event order (non-decreasing
    # time), so an N-way merge replaces the global sort.  The per-stream
    # sort is near-free on the almost-sorted input; it only reorders
    # same-instant entries by count, reproducing the full-tuple order the
    # replaced ``sorted()`` imposed (cross-stream ties already fall to the
    # tenant index inside each entry).
    events = heapq.merge(
        *(
            sorted((time_s, index, count) for time_s, count in timeline)
            for index, timeline in enumerate(timelines)
        )
    )
    current = [0] * len(timelines)
    merged: List[Tuple[float, int]] = []
    for time_s, index, count in events:
        current[index] = count
        total = sum(current)
        if merged and merged[-1][0] == time_s:
            merged[-1] = (time_s, total)
        else:
            merged.append((time_s, total))
    return merged


class ClusterRuntime:
    """One cluster's gateway, pools, scaling loop and accounting.

    Built over a shared clock and event loop, so several runtimes can
    coexist in one simulation (the federation layer); with exactly one
    runtime the behaviour — every event, every tie-break, every float — is
    identical to the pre-extraction engine.
    """

    def __init__(
        self,
        *,
        states: Sequence[_TenantState],
        config,
        fairness,
        starvation_guard: int,
        intra,
        oversubscription: float,
        clock,
        loop,
        service_time: Callable[[str, int], float],
        service_cache: Dict[Tuple[str, int], float],
        counter: List[int],
        total_requests: int,
        telemetry: Optional[Telemetry] = None,
        pipeline: Optional[MiddlewarePipeline] = None,
        cluster_stream: Optional[StreamingTrafficStats] = None,
        region: str = "",
        node_prefix: str = "traffic",
        on_record: Optional[Callable[[RequestRecord], None]] = None,
    ) -> None:
        self.states = list(states)
        self.config = config
        self.fairness = fairness
        self.clock = clock
        self.loop = loop
        self.region = region
        self.by_tenant = {state.name: state for state in self.states}
        #: OOM evictions in firing order: (time, tenant, replica name).
        self.evictions: List[Tuple[float, str, str]] = []
        #: Per-tenant records of the last run (filled by :meth:`snapshot`).
        self.records: Dict[str, List[RequestRecord]] = {}
        #: Latency-waterfall rows of the last run (filled by :meth:`snapshot`).
        self.waterfall: List[WaterfallRow] = []
        #: Per-stage middleware counters (filled by :meth:`finalize`).
        self.middleware_stats: Dict[str, Dict[str, int]] = {}
        self._cluster_stream = cluster_stream
        self._pipeline = pipeline
        self._telemetry = telemetry

        # The shared serving cluster: every tenant's pool lives behind one
        # gateway, every charge lands on one ledger timestamped on the
        # engine's simulated clock, and every replica competes for the same
        # node cores.
        cluster = Cluster(
            cost_model=config.cost_model,
            ledger=CostLedger(clock=clock, name=node_prefix),
        )
        for index in range(config.nodes):
            cluster.add_node("%s-%d" % (node_prefix, index))
        self.cluster = cluster
        orchestrator = Orchestrator(cluster)
        # The memory model: None unless a node budget was configured, and
        # every use below is guarded on that — a memory-free run touches
        # none of it and stays byte-identical to the pre-model engine.
        memory = None
        if config.memory_enabled:
            from repro.traffic.memory import NodeMemoryModel, default_replica_rss_mb

            memory = NodeMemoryModel(
                budget_mb=config.node_memory_mb,
                knee=config.pressure_knee,
                slope=config.pressure_slope,
                ledger=cluster.ledger,
            )
            for state in self.states:
                state.rss_mb = (
                    state.spec.rss_mb
                    or config.replica_rss_mb
                    or default_replica_rss_mb(state.spec.mode, config.cost_model)
                )
        self.memory = memory
        gateway = IngressGateway(
            orchestrator,
            policy=config.routing,
            fairness=fairness,
            starvation_guard=starvation_guard,
            intra=intra,
            pipeline=pipeline,
        )
        for state in self.states:
            gateway.queue.register_tenant(state.name, state.spec.weight)
        self.gateway = gateway

        states = self.states
        by_tenant = self.by_tenant
        evictions = self.evictions
        #: In-pipeline requests: (tenant, request_id) -> RequestContext.
        #: Parked requests (coalesced followers) live only here and in their
        #: stage until the leader's completion fans them back out.
        contexts: Dict[Tuple[str, int], "RequestContext"] = {}
        self._contexts = contexts
        # Cores bound execution; replica *slots* may oversubscribe them.
        # With oversubscription 1.0 pools partition the cores and queueing
        # order is moot; above 1.0 pools overlap on cores and the fair
        # queue decides who gets a freed core — the contended regime
        # noisy-neighbour scenarios study.
        capacity = sum(cluster.node(name).cores for name in cluster.nodes)
        slots = max(capacity, int(capacity * oversubscription))
        arbiter = CapacityArbiter(slots, {state.name: state.spec.weight for state in states})
        self.arbiter = arbiter
        last_event_s = 0.0
        halted = False
        # Hot-path locals: every name hoisted here saves an attribute chase
        # per request in the million-request regime.
        retain = config.retain_records
        queue = gateway.queue
        per_replica_concurrency = config.per_replica_concurrency
        parallel_nodes = config.parallel_nodes
        max_queue = config.max_queue
        queue_timeout_s = config.queue_timeout_s
        cores = {name: cluster.node(name).cores for name in cluster.nodes}
        cluster_stream = self._cluster_stream
        #: Busy requests per node across all tenants, maintained incrementally
        #: (+1 at every replica selection, -1 at every release) instead of
        #: being rebuilt from gateway pool scans on every dispatch pass.
        node_busy = {name: 0 for name in cluster.nodes}

        def note(now: float) -> None:
            nonlocal last_event_s
            if now > last_event_s:
                last_event_s = now
            clock.advance_to(loop.now)

        def finish(state: _TenantState, record: RequestRecord, node: str = "") -> None:
            """One request reached a terminal outcome: account it exactly once.

            The single funnel for all four outcome paths — retained as a
            record or folded into the streaming accumulators, counted down,
            and fanned out to the telemetry sinks.  Always called from a
            serialized context (the join stage for completions; arrivals,
            expiries and sheds are never node-partitioned), so sketch
            updates and telemetry stay deterministic under parallel nodes.
            """
            if retain:
                state.records.append(record)
            else:
                state.stream.observe(record)
                if cluster_stream is not state.stream:
                    cluster_stream.observe(record)
            if on_record is not None:
                on_record(record)
            counter[0] -= 1
            if telemetry is not None:
                telemetry.on_request(state.name, record, node)
                if telemetry.progress is not None:
                    telemetry.on_progress(
                        loop.now,
                        total_requests - counter[0],
                        sum(len(s.replicas) for s in states),
                    )

        def resolve(state: _TenantState, record: RequestRecord, node: str = "") -> None:
            """Account one terminal outcome, then unwind its middleware.

            The pipeline's completion hooks run in reverse admission order
            (cache fills, coalesce fan-out); any follow-on records they
            release — parked duplicates resolved by this outcome — recurse
            through the same funnel, so each follower is accounted exactly
            like a request of its own.
            """
            finish(state, record, node)
            if pipeline is None:
                return
            ctx = contexts.pop((state.name, record.request_id), None)
            if ctx is None:
                return
            for follow_ctx, follow_record in pipeline.complete(ctx, record, loop.now):
                if follow_record.completion_s is not None:
                    note(follow_record.completion_s)
                resolve(by_tenant[follow_ctx.tenant], follow_record, node)

        def pool_sizes() -> Dict[str, int]:
            return {state.name: len(state.replicas) for state in states}

        def demand_snapshot() -> Dict[str, int]:
            """Replicas each tenant's load wants right now (queued + in flight).

            The arbiter reserves unmet guarantees only up to this demand, so
            idle tenants lend their share instead of stranding slots.
            """
            return {
                state.name: gateway.queue.depth(state.name)
                + (gateway.total_in_flight(state.function) if state.replicas else 0)
                for state in states
            }

        def warm_dispatch() -> None:
            """A replica finished warming: queued work may now be servable."""
            dispatch(loop.now)

        def add_replicas(state: _TenantState, count: int, now: float) -> None:
            """Register ``count`` replicas, each paying its modelled cold start.

            Replicas never share a VM here: after a scale-to-zero the next
            scale-up must pay the full cold start again, so a cached warm VM
            would flatter whichever runtime got to keep it.
            """
            cold_before = state.cold_start_seconds
            for _ in range(count):
                before = cluster.ledger.seconds(CostCategory.COLD_START)
                deployed = gateway.register(state.function_spec, replicas=1, charge_cold_start=True)[0]
                cold = cluster.ledger.seconds(CostCategory.COLD_START) - before
                state.cold_starts += 1
                state.cold_start_seconds += cold
                replica = _Replica(
                    deployed=deployed,
                    ready_at=now + cold,
                    cold_s=cold,
                    idle_since=now + cold,
                    rss_mb=state.rss_mb,
                    born_s=now,
                    node=deployed.node_name,
                )
                # Bind the gateway's load-balancer state both ways: the
                # dispatch loop reads in-flight counts off the replica and
                # maps selection results back without any name lookups.
                gw_state = gateway.pool_states(state.function)[-1]
                gw_state.handle = replica
                replica.gw_state = gw_state
                state.replicas.append(replica)
                state.by_name[deployed.name] = replica
                if memory is not None:
                    memory.allocate(deployed.node_name, state.rss_mb)
                loop.schedule_at(now + cold, warm_dispatch, label="warm")
            if telemetry is not None and count > 0:
                telemetry.on_scale(
                    state.name,
                    count,
                    len(state.replicas),
                    now,
                    cold_starts=count,
                    cold_seconds=state.cold_start_seconds - cold_before,
                )
            if memory is not None and count > 0:
                evict_over_budget(now)

        def drop_replica(state: _TenantState, replica: _Replica, now: float) -> None:
            """Deregister one warm replica (reclaim and eviction share this)."""
            gateway.remove_replica(state.function, replica.deployed)
            state.replicas.remove(replica)
            del state.by_name[replica.deployed.name]
            if memory is not None:
                state.rss_mb_seconds += replica.rss_mb * max(0.0, now - replica.born_s)
                memory.free(replica.deployed.node_name, replica.rss_mb)

        def evict_over_budget(now: float) -> None:
            """Kill the coldest idle replica on every node over its budget.

            Runs only from serialized stages (scale-ups are never
            node-partitioned), so the eviction order is deterministic: per
            over-budget node, the idle warm replica with the smallest
            ``idle_since`` goes first, ties broken by tenant registration
            order and then replica name.  A node whose budget excess is
            pinned by busy replicas stays over budget — nothing to kill —
            and pays through service-time inflation instead.  Each eviction
            is a forced future cold start: the tenant's next scale-up pays
            the full warm-up again.
            """
            while True:
                evicted = False
                for node in sorted(node for node in cluster.nodes if memory.over_budget(node)):
                    best = None
                    for index, state in enumerate(states):
                        for replica in state.replicas:
                            if replica.node != node:
                                continue
                            if replica.gw_state.in_flight != 0 or replica.ready_at > now:
                                continue
                            key = (replica.idle_since, index, replica.deployed.name)
                            if best is None or key < best[0]:
                                best = (key, state, replica)
                    if best is None:
                        continue
                    _, victim_state, victim = best
                    drop_replica(victim_state, victim, now)
                    victim_state.oom_evictions += 1
                    evictions.append((now, victim_state.name, victim.deployed.name))
                    if telemetry is not None:
                        telemetry.on_oom_evict(
                            victim_state.name, node, victim.deployed.name, now
                        )
                    evicted = True
                if not evicted:
                    return

        def finish_completion(
            state: _TenantState,
            record: RequestRecord,
            replica: _Replica,
            loser: Optional[_Replica],
            completion: float,
        ) -> None:
            # Cross-node stage, serialized in exact time order: gateway
            # bookkeeping and re-dispatch.
            gateway.release_state(state.function, replica.gw_state)
            node_busy[replica.node] -= 1
            replica.idle_since = completion
            if memory is not None:
                # Replica-busy CPU: the loser of a hedge burned the same
                # wall interval before its cancellation, so it pays too.
                state.cpu_seconds += record.service_s
            if loser is not None:
                # The hedge's losing attempt is cancelled now: its replica
                # frees the moment the winner answers the client.
                gateway.release_state(state.function, loser.gw_state)
                node_busy[loser.node] -= 1
                loser.idle_since = completion
                if memory is not None:
                    state.cpu_seconds += record.service_s
            resolve(state, record, node=replica.node)
            dispatch(loop.now)

        def complete_event(
            state: _TenantState,
            request: Request,
            replica: _Replica,
            loser: Optional[_Replica],
            dispatched: float,
            completion: float,
            cold_wait: float,
        ) -> None:
            # Serial completion path: one shared function fed per-event
            # ``args`` — no closure pair allocated per request.
            record = RequestRecord(
                request_id=request.request_id,
                function=state.function,
                outcome=RequestOutcome.COMPLETED,
                arrival_s=request.arrival_s,
                dispatch_s=dispatched,
                completion_s=completion,
                replica=replica.deployed.name,
                cold_start_wait_s=cold_wait,
                request_class=request.request_class,
                deadline_s=request.deadline_s,
            )
            finish_completion(state, record, replica, loser, completion)

        def dispatch(now: float) -> None:
            """Move queued requests onto available replicas.

            The gateway's fair queue decides which tenant to try first; a
            tenant whose pool has no eligible replica is passed over (work
            conservation) without losing its place in the fair order.  A
            head request with a *hard* deadline that can no longer be met
            is shed here — admission control refuses to burn a replica on
            output nobody can use.
            """
            if halted:
                # A failed region assigns no new work: in-flight requests
                # drain and account normally, anything queued (re-admitted
                # with nowhere alive to go) rejects via its queue timeout.
                return
            while True:
                served = False
                for tenant_name in queue.dispatch_order():
                    state = by_tenant[tenant_name]
                    candidates = [
                        replica
                        for replica in state.replicas
                        if replica.ready_at <= now
                        and replica.gw_state.in_flight < per_replica_concurrency
                        and node_busy[replica.node] < cores[replica.node]
                    ]
                    if not candidates:
                        continue
                    request = queue.peek(tenant_name)
                    key = (state.spec.mode, request.payload_bytes)
                    service = service_cache.get(key)
                    if service is None:
                        service = service_time(key[0], key[1])
                    if (
                        request.hard
                        and request.deadline_s is not None
                        and now + service > request.deadline_s
                    ):
                        queue.shed_head(tenant_name)
                        resolve(
                            state,
                            RequestRecord(
                                request_id=request.request_id,
                                function=state.function,
                                outcome=RequestOutcome.SHED,
                                arrival_s=request.arrival_s,
                                request_class=request.request_class,
                                deadline_s=request.deadline_s,
                            ),
                        )
                        served = True
                        break  # re-evaluate: the tenant's next head may serve
                    queue.pop(tenant_name)
                    # Give the pipeline's dispatch hooks a say: the hedge
                    # stage applies its seeded straggler jitter and decides
                    # whether a backup attempt races on a spare replica.
                    plan = None
                    if pipeline is not None:
                        ctx = contexts.get((tenant_name, request.request_id))
                        if ctx is not None:
                            plan = pipeline.plan_dispatch(
                                ctx, now, service, spare_replica=len(candidates) > 1
                            )
                            service = plan.service_s
                    loser: Optional[_Replica] = None
                    if plan is not None and plan.hedged and len(candidates) > 1:
                        primary_gw = gateway.select_replica(
                            state.function,
                            [replica.gw_state for replica in candidates],
                        )
                        primary = primary_gw.handle
                        hedge_gw = gateway.select_replica(
                            state.function,
                            [
                                replica.gw_state
                                for replica in candidates
                                if replica.gw_state is not primary_gw
                            ],
                        )
                        hedge = hedge_gw.handle
                        node_busy[primary.node] += 1
                        node_busy[hedge.node] += 1
                        primary_done, hedge_offset = plan.completion_offsets()
                        if memory is not None:
                            # Each attempt slows by its own node's pressure.
                            primary_done *= memory.inflation(primary.node)
                            hedge_offset *= memory.inflation(hedge.node)
                        # First finisher wins; the loser is cancelled (and
                        # its replica released) at the winner's completion.
                        if now + hedge_offset < now + primary_done:
                            replica, loser = hedge, primary
                            completion = now + hedge_offset
                        else:
                            replica, loser = primary, hedge
                            completion = now + primary_done
                    else:
                        chosen = gateway.select_replica(
                            state.function,
                            [replica.gw_state for replica in candidates],
                        )
                        replica = chosen.handle
                        node_busy[replica.node] += 1
                        if memory is not None:
                            # Memory pressure on the chosen node slows the
                            # service; the EWMA below sees the inflated time,
                            # so scaling decisions feel the pressure too.
                            service = service * memory.inflation(replica.node)
                        completion = now + service
                    # Feed the measured service time back into the queue's
                    # per-tenant EWMA: later enqueues snapshot it as their
                    # wfq-cost tag advance, and the autoscaler reads it as
                    # the Little's-law service-time estimate.
                    queue.record_service_cost(tenant_name, service)
                    # The part of this request's wait actually spent watching
                    # its replica cold-start: the overlap of [arrival,
                    # dispatch] with the warm-up window, not the whole delay.
                    cold_wait = max(0.0, min(replica.cold_s, replica.ready_at - request.arrival_s))
                    note(completion)

                    if parallel_nodes:
                        # Parallel nodes need the action/join split: the
                        # record is built node-locally (concurrently), the
                        # gateway bookkeeping joins in global time order.
                        # Both paths produce the identical record.
                        def complete(
                            state: _TenantState = state,
                            request: Request = request,
                            replica: _Replica = replica,
                            loser: Optional[_Replica] = loser,
                            dispatched: float = now,
                            completion: float = completion,
                            cold_wait: float = cold_wait,
                        ):
                            # Node-local stage: build the completion record
                            # from values captured at dispatch, charging
                            # (and touching) nothing shared.
                            record = RequestRecord(
                                request_id=request.request_id,
                                function=state.function,
                                outcome=RequestOutcome.COMPLETED,
                                arrival_s=request.arrival_s,
                                dispatch_s=dispatched,
                                completion_s=completion,
                                replica=replica.deployed.name,
                                cold_start_wait_s=cold_wait,
                                request_class=request.request_class,
                                deadline_s=request.deadline_s,
                            )

                            def join() -> None:
                                finish_completion(
                                    state, record, replica, loser, completion
                                )

                            return join

                        loop.schedule_at(
                            completion,
                            complete,
                            label="complete",
                            partition=replica.node,
                        )
                    else:
                        loop.schedule_at(
                            completion,
                            complete_event,
                            label="complete",
                            args=(state, request, replica, loser, now, completion, cold_wait),
                        )
                    served = True
                    break  # re-evaluate fair order after every dispatch
                if not served:
                    return

        def arrive(state: _TenantState, request: Request) -> None:
            note(request.arrival_s)
            state.arrivals_since_tick += 1
            priority = request.priority
            deadline = request.deadline_s
            if pipeline is not None:
                from repro.gateway.middleware import AdmitAction

                ctx = pipeline.context(state.name, request)
                decision = pipeline.admit(ctx, request.arrival_s)
                contexts[(state.name, request.request_id)] = ctx
                if decision.action is AdmitAction.SHORT_CIRCUIT:
                    # Terminal at the gateway: a cache hit (served, with a
                    # completion instant) or a refusal (rate limit / auth).
                    completion = decision.completion_s
                    if completion is not None:
                        note(completion)
                    resolve(
                        state,
                        RequestRecord(
                            request_id=request.request_id,
                            function=state.function,
                            outcome=decision.outcome,
                            arrival_s=request.arrival_s,
                            completion_s=completion,
                            request_class=request.request_class,
                            deadline_s=request.deadline_s,
                        ),
                    )
                    return
                if decision.action is AdmitAction.PARK:
                    # Parked behind an identical in-flight request: no queue
                    # slot, no timeout event — the leader's completion (or
                    # failure) resolves it through the pipeline unwind.
                    return
                # Transformed requests dispatch under their overridden keys.
                priority = ctx.data.get("priority", priority)
                deadline = ctx.data.get("deadline_s", deadline)
            admitted = queue.enqueue(
                state.name,
                request.request_id,
                request,
                limit=max_queue,
                priority=priority,
                deadline=deadline,
            )
            if not admitted:
                resolve(
                    state,
                    RequestRecord(
                        request_id=request.request_id,
                        function=state.function,
                        outcome=RequestOutcome.DROPPED,
                        arrival_s=request.arrival_s,
                        request_class=request.request_class,
                        deadline_s=request.deadline_s,
                    ),
                )
                return
            # The timeout event is only materialized if the request is still
            # waiting after the dispatch pass — most requests dispatch
            # immediately and never need one.  Its tie-break slot is
            # reserved *before* dispatching, so when it is scheduled it
            # sorts exactly where an eagerly scheduled timeout would have.
            timeout_order = loop.reserve_orders(1)
            dispatch(loop.now)
            if queue.is_queued(state.name, request.request_id):
                timeout_at = request.arrival_s + queue_timeout_s
                if timeout_at < loop.now:
                    # A request handed over a WAN link arrives with part of
                    # its patience already spent; an exhausted budget times
                    # out immediately rather than scheduling into the past.
                    timeout_at = loop.now
                loop.schedule_at(
                    timeout_at,
                    expire,
                    label="timeout",
                    args=(state, request),
                    order=timeout_order,
                )

        def expire(state: _TenantState, request: Request) -> None:
            """Time out a request still waiting when its patience ran out."""
            if not queue.cancel(state.name, request.request_id):
                return
            resolve(
                state,
                RequestRecord(
                    request_id=request.request_id,
                    function=state.function,
                    outcome=RequestOutcome.TIMED_OUT,
                    arrival_s=request.arrival_s,
                    request_class=request.request_class,
                    deadline_s=request.deadline_s,
                ),
            )
            note(loop.now)

        def control_tick(state: _TenantState) -> None:
            if halted or counter[0] <= 0:
                return
            now = loop.now
            interval = now - state.last_tick_s
            rate = state.arrivals_since_tick / interval if interval > 0 else 0.0
            state.arrivals_since_tick = 0
            state.last_tick_s = now
            estimate = gateway.queue.cost_estimate(state.name)
            sample = LoadSample(
                time_s=now,
                in_flight=gateway.total_in_flight(state.function) if state.replicas else 0,
                queued=gateway.queue.depth(state.name),
                replicas=len(state.replicas),
                arrival_rate_rps=rate,
                service_time_s=estimate if estimate is not None else 0.0,
            )
            decision = state.autoscaler.evaluate(sample)
            if telemetry is not None:
                forecast = getattr(state.autoscaler.policy, "forecast_rps", None)
                telemetry.on_tick(
                    state.name, sample, forecast() if callable(forecast) else None
                )
                if telemetry.progress is not None:
                    telemetry.on_progress(
                        now,
                        total_requests - counter[0],
                        sum(len(s.replicas) for s in states),
                    )
            if decision.scale_up:
                add_replicas(
                    state,
                    arbiter.grant(
                        state.name, decision.scale_up, pool_sizes(), demand_snapshot()
                    ),
                    now,
                )
            elif decision.scale_down:
                reclaim(state, decision.scale_down, now)
            state.timeline.append((now, len(state.replicas)))
            dispatch(now)
            loop.schedule(
                state.autoscaler.control_interval_s,
                lambda: control_tick(state),
                label="tick:%s" % state.name,
            )

        def reclaim(state: _TenantState, count: int, now: float) -> None:
            """Remove up to ``count`` warm replicas idle past their keep-alive.

            With the memory model on, each replica's keep-alive window is
            discounted by its node's memory pressure — holding a warm pool
            costs RSS-seconds, and that is only worth paying while the
            node's memory is cheap.
            """
            # ``nsmallest(count, ...)`` is documented equivalent to
            # ``sorted(...)[:count]`` (stable for ties), so the reclaim
            # order is unchanged — it just stops sorting the whole pool to
            # drop a couple of replicas.
            removed = heapq.nsmallest(
                count,
                (
                    replica
                    for replica in state.replicas
                    if replica.gw_state.in_flight == 0
                    and replica.ready_at <= now
                    and state.autoscaler.reclaimable(
                        now,
                        replica.idle_since,
                        memory_pressure=(
                            memory.pressure(replica.node)
                            if memory is not None
                            else 0.0
                        ),
                    )
                ),
                key=lambda replica: replica.idle_since,
            )
            for replica in removed:
                drop_replica(state, replica, now)
            if telemetry is not None and removed:
                telemetry.on_scale(state.name, -len(removed), len(state.replicas), now)

        def halt() -> None:
            nonlocal halted
            halted = True

        def last_event() -> float:
            return last_event_s

        # The narrow public interface.
        self.admit = arrive
        self.dispatch = dispatch
        self.complete = complete_event
        self.tick = control_tick
        self.add_replicas = add_replicas
        self._halt = halt
        self.halted = False
        self._last_event = last_event
        self._pool_sizes = pool_sizes

    # -- driver hooks ----------------------------------------------------------------

    def bootstrap(self, initial_replicas, now: float = 0.0) -> None:
        """Register every tenant's initial pool (arbitrated like growth).

        ``initial_replicas`` is an int applied to every tenant, or a
        mapping ``tenant name -> count`` (the federation layer homes each
        tenant's initial pool in one region).
        """
        for state in self.states:
            count = (
                initial_replicas.get(state.name, 0)
                if hasattr(initial_replicas, "get")
                else initial_replicas
            )
            if count:
                self.add_replicas(
                    state,
                    self.arbiter.grant(state.name, count, self._pool_sizes()),
                    now,
                )
            state.timeline.append((now, len(state.replicas)))

    def start_ticks(self) -> None:
        """Schedule every tenant's first autoscaler control tick."""
        for state in self.states:
            self.loop.schedule(
                state.autoscaler.control_interval_s,
                lambda state=state: self.tick(state),
                label="tick:%s" % state.name,
            )

    # -- federation probes -----------------------------------------------------------

    def queue_depth(self, tenant: str) -> int:
        return self.gateway.queue.depth(tenant)

    def load(self) -> int:
        """In-flight + queued across every tenant (the least-loaded signal)."""
        total = 0
        for state in self.states:
            total += self.gateway.queue.depth(state.name)
            if state.replicas:
                total += self.gateway.total_in_flight(state.function)
        return total

    def warm_ready(self, tenant: str, now: float) -> int:
        """Warm replicas of ``tenant`` with spare concurrency right now."""
        state = self.by_tenant[tenant]
        limit = self.config.per_replica_concurrency
        return sum(
            1
            for replica in state.replicas
            if replica.ready_at <= now and replica.gw_state.in_flight < limit
        )

    def saturated(self, tenant: str) -> bool:
        """Whether the next enqueue for ``tenant`` would be dropped."""
        return self.gateway.queue.depth(tenant) >= self.config.max_queue

    def fail(self, now: float) -> List[Tuple[_TenantState, Request]]:
        """Take this region out: halt its control plane, evacuate its queues.

        In-flight work drains gracefully (completions still fire and
        account normally); queued requests are removed — without touching
        the fair queue's drop/timeout counters, the federation router
        accounts each failover itself — and returned in dispatch order for
        re-placement.  Warm replicas are left registered so the drain can
        finish; no new work is admitted because the router skips failed
        regions and the halted control loop stops scaling.
        """
        self._halt()
        self.halted = True
        evacuated: List[Tuple[_TenantState, Request]] = []
        for state in self.states:
            for _, request in self.gateway.queue.drain(state.name):
                evacuated.append((state, request))
        return evacuated

    # -- run finalization ------------------------------------------------------------

    @property
    def last_event_s(self) -> float:
        return self._last_event()

    def finalize(self, duration: float) -> None:
        """Settle deferred charges and emit the end-of-run telemetry rollups."""
        # The routing fast path accumulated its per-request ingress
        # overheads instead of charging each one; settle them now, before
        # any ledger rollup is read.
        self.gateway.flush_deferred_ingress()
        if self.memory is not None:
            # Survivors' RSS-seconds: replicas still warm at the end of the
            # run occupied their footprint until the run's last event.
            for state in self.states:
                for replica in state.replicas:
                    state.rss_mb_seconds += replica.rss_mb * max(
                        0.0, duration - replica.born_s
                    )
        self.middleware_stats = (
            self._pipeline.stats() if self._pipeline is not None else {}
        )
        telemetry = self._telemetry
        if telemetry is not None:
            if self.middleware_stats:
                telemetry.observe_middleware(self.middleware_stats)
            telemetry.observe_queue_stats(self.gateway.queue.all_stats())
            telemetry.observe_node_usage(self.node_usage())
            if self.memory is not None:
                telemetry.observe_memory(
                    {
                        state.name: (
                            state.oom_evictions,
                            state.rss_mb_seconds,
                            state.cpu_seconds,
                        )
                        for state in self.states
                    }
                )

    def node_usage(self) -> Dict[str, NodeUsage]:
        """Per-node cost rollups read off the cluster ledger's shards."""
        ledger = self.cluster.ledger
        shards = [ledger.cluster_shard] + list(ledger.shards().values())
        return {
            shard.node_name: NodeUsage(
                node=shard.node_name,
                charges=len(shard),
                total_seconds=shard.total_seconds(),
                cpu_seconds=shard.cpu_seconds(),
                peak_memory_mb=shard.peak_memory_bytes() / MB,
            )
            for shard in shards
        }

    # -- summaries -------------------------------------------------------------------

    def snapshot(self, duration: float) -> MultiTenantSummary:
        """Roll the run up into per-tenant and cluster summaries.

        Also materializes :attr:`records` (per tenant, sorted by request
        id) and :attr:`waterfall` for the driver to re-expose.
        """
        from repro.obs.spans import waterfall_from_records

        states = self.states
        tenants: Dict[str, TrafficSummary] = {}
        all_records: List[RequestRecord] = []
        declared_union: List[str] = []
        waterfall: List[WaterfallRow] = []
        retain = self.config.retain_records
        self.records = {}
        for state in states:
            declared_union.extend(state.spec.class_names)
            if retain:
                state.records.sort(key=lambda record: record.request_id)
                self.records[state.name] = state.records
                all_records.extend(state.records)
                tenants[state.name] = summarize(
                    mode=state.spec.mode,
                    pattern=state.spec.pattern_name,
                    duration_s=duration,
                    records=state.records,
                    cold_starts=state.cold_starts,
                    cold_start_seconds=state.cold_start_seconds,
                    replica_timeline=state.timeline,
                    declared_classes=state.spec.class_names,
                    oom_evictions=state.oom_evictions,
                    rss_mb_seconds=state.rss_mb_seconds,
                    cpu_seconds=state.cpu_seconds,
                )
                waterfall.extend(waterfall_from_records(state.name, state.records))
            else:
                self.records[state.name] = []
                tenants[state.name] = state.stream.summary(
                    mode=state.spec.mode,
                    pattern=state.spec.pattern_name,
                    duration_s=duration,
                    cold_starts=state.cold_starts,
                    cold_start_seconds=state.cold_start_seconds,
                    replica_timeline=state.timeline,
                    declared_classes=state.spec.class_names,
                    oom_evictions=state.oom_evictions,
                    rss_mb_seconds=state.rss_mb_seconds,
                    cpu_seconds=state.cpu_seconds,
                )
                waterfall.extend(state.stream.waterfall(state.name))
        if retain:
            cluster = summarize(
                mode="cluster",
                pattern="multi-tenant",
                duration_s=duration,
                records=all_records,
                cold_starts=sum(state.cold_starts for state in states),
                cold_start_seconds=sum(state.cold_start_seconds for state in states),
                replica_timeline=_merge_timelines([state.timeline for state in states]),
                declared_classes=sorted(set(declared_union)),
                oom_evictions=sum(state.oom_evictions for state in states),
                rss_mb_seconds=sum(state.rss_mb_seconds for state in states),
                cpu_seconds=sum(state.cpu_seconds for state in states),
            )
            if len(states) > 1:
                waterfall.extend(waterfall_from_records("cluster", all_records))
        else:
            cluster = self._cluster_stream.summary(
                mode="cluster",
                pattern="multi-tenant",
                duration_s=duration,
                cold_starts=sum(state.cold_starts for state in states),
                cold_start_seconds=sum(state.cold_start_seconds for state in states),
                replica_timeline=_merge_timelines([state.timeline for state in states]),
                declared_classes=sorted(set(declared_union)),
                oom_evictions=sum(state.oom_evictions for state in states),
                rss_mb_seconds=sum(state.rss_mb_seconds for state in states),
                cpu_seconds=sum(state.cpu_seconds for state in states),
            )
            if len(states) > 1:
                waterfall.extend(self._cluster_stream.waterfall("cluster"))
        self.waterfall = waterfall
        return MultiTenantSummary(
            fairness=self.fairness.value,
            weights=self.gateway.queue.weights(),
            tenants=tenants,
            cluster=cluster,
            queue_stats=self.gateway.queue.all_stats(),
            nodes=self.node_usage(),
            middleware=self.middleware_stats,
        )
