"""Replica autoscaling: closing the loop on observed load.

Each control interval the autoscaler samples the per-function load (requests
in flight plus requests queued at the gateway) and recommends a pool size.
Scaling *up* pays each new replica's cold start — the paper's Fig. 2a costs,
charged through the gateway — and the replica only starts serving once that
cold start completes.  Scaling *down* reclaims replicas that have been idle
for the keep-alive window, mirroring how FaaS platforms hold instances warm
for a grace period before deprovisioning.

Policies are pluggable:

* :class:`TargetConcurrencyPolicy` — Knative-style: keep roughly
  ``target_concurrency`` requests per replica;
* :class:`FixedReplicasPolicy` — a static pool (what the paper's fan-out
  experiments implicitly assume);
* :class:`NoScalingPolicy` — never change the pool (pure queueing).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple


class AutoscalerError(ValueError):
    """Raised for invalid scaling parameters."""


@dataclass(frozen=True)
class LoadSample:
    """What the autoscaler observes at one control tick."""

    time_s: float
    in_flight: int
    queued: int
    replicas: int

    @property
    def demand(self) -> int:
        """Requests wanting a replica right now."""
        return self.in_flight + self.queued


class ScalingPolicy(ABC):
    """Maps one load sample to a desired replica count (before clamping)."""

    name: str = "abstract"

    @abstractmethod
    def desired_replicas(self, sample: LoadSample) -> int:
        """The pool size this policy wants, given the observed load."""


class TargetConcurrencyPolicy(ScalingPolicy):
    """Knative-style: size the pool for ``target_concurrency`` per replica."""

    name = "target-concurrency"

    def __init__(self, target_concurrency: float = 1.0) -> None:
        if target_concurrency <= 0:
            raise AutoscalerError("target_concurrency must be positive")
        self.target_concurrency = target_concurrency

    def desired_replicas(self, sample: LoadSample) -> int:
        return int(math.ceil(sample.demand / self.target_concurrency))


class FixedReplicasPolicy(ScalingPolicy):
    """A static pool of ``replicas`` instances regardless of load."""

    name = "fixed"

    def __init__(self, replicas: int) -> None:
        if replicas < 1:
            raise AutoscalerError("a fixed pool needs at least one replica")
        self.replicas = replicas

    def desired_replicas(self, sample: LoadSample) -> int:
        return self.replicas


class NoScalingPolicy(ScalingPolicy):
    """Keep whatever pool exists; excess load queues."""

    name = "none"

    def desired_replicas(self, sample: LoadSample) -> int:
        return sample.replicas


@dataclass(frozen=True)
class ScalingDecision:
    """The autoscaler's output for one control tick."""

    time_s: float
    current: int
    desired: int

    @property
    def scale_up(self) -> int:
        return max(0, self.desired - self.current)

    @property
    def scale_down(self) -> int:
        return max(0, self.current - self.desired)


class Autoscaler:
    """Per-function control loop over a :class:`ScalingPolicy`.

    The autoscaler only *decides*; the traffic engine applies decisions
    (registering replicas through the gateway, which charges cold starts,
    and reclaiming idle ones).  That split keeps the policy logic testable
    without a cluster.
    """

    def __init__(
        self,
        policy: ScalingPolicy,
        min_replicas: int = 1,
        max_replicas: int = 64,
        keep_alive_s: float = 30.0,
        control_interval_s: float = 1.0,
    ) -> None:
        if min_replicas < 0:
            raise AutoscalerError("min_replicas must be non-negative")
        if max_replicas < max(1, min_replicas):
            raise AutoscalerError("max_replicas must be >= max(1, min_replicas)")
        if keep_alive_s < 0:
            raise AutoscalerError("keep_alive_s must be non-negative")
        if control_interval_s <= 0:
            raise AutoscalerError("control_interval_s must be positive")
        self.policy = policy
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.keep_alive_s = keep_alive_s
        self.control_interval_s = control_interval_s
        self.decisions: List[ScalingDecision] = []

    def evaluate(self, sample: LoadSample) -> ScalingDecision:
        """Clamp the policy's desire to [min_replicas, max_replicas]."""
        desired = self.policy.desired_replicas(sample)
        desired = max(self.min_replicas, min(self.max_replicas, desired))
        decision = ScalingDecision(time_s=sample.time_s, current=sample.replicas, desired=desired)
        self.decisions.append(decision)
        return decision

    def reclaimable(self, now: float, idle_since: float) -> bool:
        """Whether a replica idle since ``idle_since`` is past its keep-alive."""
        return now - idle_since >= self.keep_alive_s
