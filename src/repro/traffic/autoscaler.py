"""Replica autoscaling: closing the loop on observed load.

Each control interval the autoscaler samples the per-function load (requests
in flight plus requests queued at the gateway) and recommends a pool size.
Scaling *up* pays each new replica's cold start — the paper's Fig. 2a costs,
charged through the gateway — and the replica only starts serving once that
cold start completes.  Scaling *down* reclaims replicas that have been idle
for the keep-alive window, mirroring how FaaS platforms hold instances warm
for a grace period before deprovisioning.

Policies are pluggable:

* :class:`TargetConcurrencyPolicy` — Knative-style: keep roughly
  ``target_concurrency`` requests per replica;
* :class:`FixedReplicasPolicy` — a static pool (what the paper's fan-out
  experiments implicitly assume);
* :class:`NoScalingPolicy` — never change the pool (pure queueing);
* :class:`StepScalingPolicy` — AWS-style threshold bands: step the pool up
  when utilisation leaves the band, with a cooldown between actions so a
  constant load never makes it thrash;
* :class:`PredictiveScalingPolicy` — a Holt (level + trend) forecast of the
  arrival rate sized via Little's law, pre-warming replicas ``horizon_s``
  ahead of a diurnal ramp instead of paying the cold starts at its crest.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional


class AutoscalerError(ValueError):
    """Raised for invalid scaling parameters."""


@dataclass(frozen=True)
class LoadSample:
    """What the autoscaler observes at one control tick."""

    time_s: float
    in_flight: int
    queued: int
    replicas: int
    #: Mean arrival rate since the previous tick (0.0 when unknown).
    arrival_rate_rps: float = 0.0
    #: EWMA of measured service times, fed back from the engine (0.0 = no data).
    service_time_s: float = 0.0

    @property
    def demand(self) -> int:
        """Requests wanting a replica right now."""
        return self.in_flight + self.queued


class ScalingPolicy(ABC):
    """Maps one load sample to a desired replica count (before clamping)."""

    name: str = "abstract"

    @abstractmethod
    def desired_replicas(self, sample: LoadSample) -> int:
        """The pool size this policy wants, given the observed load."""


class TargetConcurrencyPolicy(ScalingPolicy):
    """Knative-style: size the pool for ``target_concurrency`` per replica."""

    name = "target-concurrency"

    def __init__(self, target_concurrency: float = 1.0) -> None:
        if target_concurrency <= 0:
            raise AutoscalerError("target_concurrency must be positive")
        self.target_concurrency = target_concurrency

    def desired_replicas(self, sample: LoadSample) -> int:
        return int(math.ceil(sample.demand / self.target_concurrency))


class FixedReplicasPolicy(ScalingPolicy):
    """A static pool of ``replicas`` instances regardless of load."""

    name = "fixed"

    def __init__(self, replicas: int) -> None:
        if replicas < 1:
            raise AutoscalerError("a fixed pool needs at least one replica")
        self.replicas = replicas

    def desired_replicas(self, sample: LoadSample) -> int:
        return self.replicas


class NoScalingPolicy(ScalingPolicy):
    """Keep whatever pool exists; excess load queues."""

    name = "none"

    def desired_replicas(self, sample: LoadSample) -> int:
        return sample.replicas


class StepScalingPolicy(ScalingPolicy):
    """Threshold bands with a cooldown: step up/down, never thrash.

    Utilisation is demand per replica.  Above ``high_utilisation`` the pool
    grows by ``step`` replicas, below ``low_utilisation`` it shrinks by
    ``step`` — but never twice within ``cooldown_s``, so one load change
    ripples through as a staircase instead of an overshooting jump, and a
    constant load inside the band never moves the pool at all.

    The policy is stateful (it remembers its last action time); give each
    engine run a fresh instance, as the autoscaler factories do.
    """

    name = "step"

    def __init__(
        self,
        high_utilisation: float = 2.0,
        low_utilisation: float = 0.5,
        step: int = 1,
        cooldown_s: float = 10.0,
    ) -> None:
        if high_utilisation <= low_utilisation:
            raise AutoscalerError("high_utilisation must exceed low_utilisation")
        if low_utilisation < 0:
            raise AutoscalerError("low_utilisation must be non-negative")
        if step < 1:
            raise AutoscalerError("step must be >= 1")
        if cooldown_s < 0:
            raise AutoscalerError("cooldown_s must be non-negative")
        self.high_utilisation = high_utilisation
        self.low_utilisation = low_utilisation
        self.step = step
        self.cooldown_s = cooldown_s
        self._last_action_s: Optional[float] = None
        self._replicas_at_action: Optional[int] = None

    def desired_replicas(self, sample: LoadSample) -> int:
        if (
            self._last_action_s is not None
            and sample.replicas == self._replicas_at_action
        ):
            # The recommended change never took effect (clamped at the
            # autoscaler's min/max or denied by the capacity arbiter): a
            # no-op starts no cooldown, or a pool pinned at a bound would
            # keep deferring its next *real* action by a full cooldown.
            self._last_action_s = None
        if (
            self._last_action_s is not None
            and sample.time_s - self._last_action_s < self.cooldown_s
        ):
            return sample.replicas
        utilisation = sample.demand / max(1, sample.replicas)
        if utilisation > self.high_utilisation:
            self._note_action(sample)
            return sample.replicas + self.step
        if utilisation < self.low_utilisation and sample.replicas > 1:
            self._note_action(sample)
            return sample.replicas - self.step
        return sample.replicas

    def _note_action(self, sample: LoadSample) -> None:
        self._last_action_s = sample.time_s
        self._replicas_at_action = sample.replicas


class PredictiveScalingPolicy(ScalingPolicy):
    """Holt's linear forecast of the arrival rate, sized via Little's law.

    Each tick folds the observed arrival rate into a smoothed level and
    trend, extrapolates ``horizon_s`` ahead, and sizes the pool for the
    *forecast* rate: ``forecast × service_time / target_concurrency``
    replicas (Little's law).  On a diurnal ramp the positive trend makes
    the forecast lead the actual rate, so replicas are registered — and
    their cold starts paid — *before* the crest arrives; a purely reactive
    policy pays them at the crest, while the backlog is already growing.
    The reactive demand floor keeps a backlog from outwaiting a bad
    forecast.

    Stateful like :class:`StepScalingPolicy`: one instance per run.
    """

    name = "predictive"

    def __init__(
        self,
        horizon_s: float = 10.0,
        alpha: float = 0.5,
        beta: float = 0.3,
        target_concurrency: float = 1.0,
    ) -> None:
        if horizon_s < 0:
            raise AutoscalerError("horizon_s must be non-negative")
        if not 0.0 < alpha <= 1.0 or not 0.0 < beta <= 1.0:
            raise AutoscalerError("alpha and beta must be in (0, 1]")
        if target_concurrency <= 0:
            raise AutoscalerError("target_concurrency must be positive")
        self.horizon_s = horizon_s
        self.alpha = alpha
        self.beta = beta
        self.target_concurrency = target_concurrency
        self._level: Optional[float] = None
        self._trend = 0.0
        self._last_time_s: Optional[float] = None

    def forecast_rps(self) -> float:
        """The rate the policy currently expects ``horizon_s`` from now."""
        if self._level is None:
            return 0.0
        return max(0.0, self._level + self._trend * self.horizon_s)

    def desired_replicas(self, sample: LoadSample) -> int:
        rate = max(0.0, sample.arrival_rate_rps)
        if self._level is None:
            self._level = rate
        else:
            interval = 1.0
            if self._last_time_s is not None and sample.time_s > self._last_time_s:
                interval = sample.time_s - self._last_time_s
            previous = self._level
            self._level = self.alpha * rate + (1.0 - self.alpha) * (
                previous + self._trend * interval
            )
            # Trend is kept per second so the horizon extrapolation is
            # independent of the control interval.
            self._trend = (
                self.beta * ((self._level - previous) / interval)
                + (1.0 - self.beta) * self._trend
            )
        self._last_time_s = sample.time_s
        reactive = int(math.ceil(sample.demand / self.target_concurrency))
        predicted = 0
        if sample.service_time_s > 0:
            predicted = int(
                math.ceil(self.forecast_rps() * sample.service_time_s / self.target_concurrency)
            )
        return max(reactive, predicted)


@dataclass(frozen=True)
class ScalingDecision:
    """The autoscaler's output for one control tick."""

    time_s: float
    current: int
    desired: int

    @property
    def scale_up(self) -> int:
        return max(0, self.desired - self.current)

    @property
    def scale_down(self) -> int:
        return max(0, self.current - self.desired)


class Autoscaler:
    """Per-function control loop over a :class:`ScalingPolicy`.

    The autoscaler only *decides*; the traffic engine applies decisions
    (registering replicas through the gateway, which charges cold starts,
    and reclaiming idle ones).  That split keeps the policy logic testable
    without a cluster.
    """

    def __init__(
        self,
        policy: ScalingPolicy,
        min_replicas: int = 1,
        max_replicas: int = 64,
        keep_alive_s: float = 30.0,
        control_interval_s: float = 1.0,
    ) -> None:
        if min_replicas < 0:
            raise AutoscalerError("min_replicas must be non-negative")
        if max_replicas < max(1, min_replicas):
            raise AutoscalerError("max_replicas must be >= max(1, min_replicas)")
        if keep_alive_s < 0:
            raise AutoscalerError("keep_alive_s must be non-negative")
        if control_interval_s <= 0:
            raise AutoscalerError("control_interval_s must be positive")
        self.policy = policy
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.keep_alive_s = keep_alive_s
        self.control_interval_s = control_interval_s
        self.decisions: List[ScalingDecision] = []

    def evaluate(self, sample: LoadSample) -> ScalingDecision:
        """Clamp the policy's desire to [min_replicas, max_replicas]."""
        desired = self.policy.desired_replicas(sample)
        desired = max(self.min_replicas, min(self.max_replicas, desired))
        decision = ScalingDecision(time_s=sample.time_s, current=sample.replicas, desired=desired)
        self.decisions.append(decision)
        return decision

    def effective_keep_alive_s(self, memory_pressure: float = 0.0) -> float:
        """The keep-alive window, discounted by node memory pressure.

        Holding a warm replica is not free: it occupies its RSS for the
        whole window (``rss_mb x keep_alive_s`` RSS-seconds), which is only
        worth paying while that memory is cheap.  As the replica's node
        fills up (``memory_pressure`` = used/budget, clamped to [0, 1]) the
        window shrinks linearly — at a full node an idle replica is worth
        nothing and is reclaimed immediately, trading a possible future
        cold start for headroom now.  With no memory model (pressure 0.0)
        the configured window applies unchanged.
        """
        pressure = min(1.0, max(0.0, memory_pressure))
        return self.keep_alive_s * (1.0 - pressure)

    def reclaimable(
        self, now: float, idle_since: float, memory_pressure: float = 0.0
    ) -> bool:
        """Whether a replica idle since ``idle_since`` is past its keep-alive.

        The boundary is pinned so a replica that became idle at this very
        sim-time instant is never reclaimed (``elapsed > 0`` required):
        with ``keep_alive_s=0`` a completion and a control tick can land on
        the same timestamp, and the request being dispatched at that
        instant must win the race against the reclaimer.
        """
        elapsed = now - idle_since
        if elapsed <= 0.0:
            return False
        return elapsed >= self.effective_keep_alive_s(memory_pressure)
