"""SLO accounting: per-request records rolled into tail-latency summaries.

The traffic engine emits one :class:`RequestRecord` per admitted request.
This module rolls them into what an operator actually watches: p50/p95/p99
end-to-end latency, queueing delay separated from service time, timeout and
drop counts, and goodput (completed requests per second of simulated time —
dropped or timed-out requests produce no good output, however much CPU they
burned).

Requests carry a scheduling class (:mod:`repro.traffic.classes`), so the
rollup is also per class: each :class:`ClassSummary` tracks the class's
volume counters, its latency distribution and its deadline-met ratio — the
SLO attainment number deadline-aware scheduling (EDF at the gateway) is
supposed to move.  Classes a tenant declared but never exercised still get
a zero row, so exports always carry the full class list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.stats import LatencySummary


class SloError(ValueError):
    """Raised for malformed request records."""


class RequestOutcome(enum.Enum):
    """How one request's life ended."""

    COMPLETED = "completed"
    TIMED_OUT = "timed_out"   # waited in the queue past the admission timeout
    DROPPED = "dropped"       # rejected at admission (queue full)
    SHED = "shed"             # hard deadline unmeetable at dispatch (admission control)
    CACHED = "cached"         # served from the gateway response cache, no backend work
    COALESCED = "coalesced"   # served by fan-out from an identical in-flight request
    RATE_LIMITED = "rate_limited"  # refused by the per-tenant token bucket
    REJECTED = "rejected"     # refused by auth / quota middleware


#: Outcomes where the client got a good response.  CACHED and COALESCED
#: requests never touched a replica (no dispatch, no service time) but are
#: every bit as served as a completed backend invocation.
SERVED_OUTCOMES = frozenset(
    {RequestOutcome.COMPLETED, RequestOutcome.CACHED, RequestOutcome.COALESCED}
)


@dataclass(frozen=True)
class RequestRecord:
    """The full timing of one request through the platform.

    ``dispatch_s`` and ``completion_s`` are ``None`` for requests that never
    reached a replica.  For completed requests::

        queueing delay = dispatch - arrival      (time waiting for a replica)
        service time   = completion - dispatch   (time executing the workflow)
        latency        = completion - arrival    (what the client observes)
    """

    request_id: int
    function: str
    outcome: RequestOutcome
    arrival_s: float
    dispatch_s: Optional[float] = None
    completion_s: Optional[float] = None
    replica: str = ""
    cold_start_wait_s: float = 0.0
    request_class: str = "standard"
    deadline_s: Optional[float] = None  # absolute soft deadline, if any

    def __post_init__(self) -> None:
        if self.outcome is RequestOutcome.COMPLETED:
            if self.dispatch_s is None or self.completion_s is None:
                raise SloError("completed requests need dispatch and completion times")
            if not self.arrival_s <= self.dispatch_s <= self.completion_s:
                raise SloError(
                    "request %d times must be ordered: arrival=%r dispatch=%r completion=%r"
                    % (self.request_id, self.arrival_s, self.dispatch_s, self.completion_s)
                )
        elif self.outcome in SERVED_OUTCOMES:
            # Cached / coalesced responses never reached a replica: no
            # dispatch, but they still completed at a definite instant.
            if self.completion_s is None:
                raise SloError(
                    "%s requests need a completion time" % self.outcome.value
                )
            if self.completion_s < self.arrival_s:
                raise SloError(
                    "request %d completed at %r before arriving at %r"
                    % (self.request_id, self.completion_s, self.arrival_s)
                )

    @property
    def served(self) -> bool:
        """Whether the client got a good response (completed/cached/coalesced)."""
        return self.outcome in SERVED_OUTCOMES

    @property
    def queueing_delay_s(self) -> float:
        if self.dispatch_s is None:
            return 0.0
        return self.dispatch_s - self.arrival_s

    @property
    def service_s(self) -> float:
        if self.dispatch_s is None or self.completion_s is None:
            return 0.0
        return self.completion_s - self.dispatch_s

    @property
    def latency_s(self) -> float:
        if self.completion_s is None:
            return 0.0
        return self.completion_s - self.arrival_s

    @property
    def deadline_met(self) -> Optional[bool]:
        """Whether the deadline was met (``None`` when the request had none).

        A dropped, timed-out or shed request with a deadline missed it by
        definition: it never produced output at all.
        """
        if self.deadline_s is None:
            return None
        return self.served and self.completion_s <= self.deadline_s


@dataclass(frozen=True)
class ClassSummary:
    """One scheduling class's slice of a tenant's (or the cluster's) run."""

    name: str
    offered: int
    completed: int
    timed_out: int
    dropped: int
    #: Requests of this class that carried a deadline / met it.
    deadline_total: int
    deadline_met: int
    latency: LatencySummary
    #: Hard-deadline requests shed by admission control at dispatch time.
    shed: int = 0
    #: Requests resolved by gateway middleware (zero unless a pipeline ran).
    cached: int = 0
    coalesced: int = 0
    rate_limited: int = 0
    rejected: int = 0

    @property
    def served(self) -> int:
        """Requests that got a good response (completed + cached + coalesced)."""
        return self.completed + self.cached + self.coalesced

    @property
    def deadline_missed(self) -> int:
        return self.deadline_total - self.deadline_met

    @property
    def deadline_met_ratio(self) -> float:
        """Fraction of deadline-carrying requests served in time (1.0 if none)."""
        if self.deadline_total == 0:
            return 1.0
        return self.deadline_met / self.deadline_total


def summarize_classes(
    records: Sequence["RequestRecord"],
    declared: Sequence[str] = (),
) -> Tuple[ClassSummary, ...]:
    """Roll records into per-class summaries, sorted by class name.

    ``declared`` lists class names that must appear even with zero
    requests, so a quiet class still exports (and round-trips) its row.
    """
    names = sorted(set(declared) | {record.request_class for record in records})
    summaries = []
    for name in names:
        mine = [record for record in records if record.request_class == name]
        served = [r for r in mine if r.served]
        with_deadline = [r for r in mine if r.deadline_s is not None]
        summaries.append(
            ClassSummary(
                name=name,
                offered=len(mine),
                completed=sum(1 for r in mine if r.outcome is RequestOutcome.COMPLETED),
                timed_out=sum(1 for r in mine if r.outcome is RequestOutcome.TIMED_OUT),
                dropped=sum(1 for r in mine if r.outcome is RequestOutcome.DROPPED),
                shed=sum(1 for r in mine if r.outcome is RequestOutcome.SHED),
                cached=sum(1 for r in mine if r.outcome is RequestOutcome.CACHED),
                coalesced=sum(1 for r in mine if r.outcome is RequestOutcome.COALESCED),
                rate_limited=sum(
                    1 for r in mine if r.outcome is RequestOutcome.RATE_LIMITED
                ),
                rejected=sum(1 for r in mine if r.outcome is RequestOutcome.REJECTED),
                deadline_total=len(with_deadline),
                deadline_met=sum(1 for r in with_deadline if r.deadline_met),
                latency=(
                    LatencySummary.from_samples([r.latency_s for r in served])
                    if served
                    else LatencySummary.empty()
                ),
            )
        )
    return tuple(summaries)


@dataclass(frozen=True)
class TrafficSummary:
    """Everything one sustained-load run produced, per runtime mode."""

    mode: str
    pattern: str
    duration_s: float
    offered: int
    completed: int
    timed_out: int
    dropped: int
    latency: LatencySummary
    queueing: LatencySummary
    service: LatencySummary
    cold_starts: int
    cold_start_seconds: float
    replica_seconds: float
    max_replicas: int
    replica_timeline: Tuple[Tuple[float, int], ...]
    #: Per-scheduling-class rollup (sorted by class name).
    classes: Tuple[ClassSummary, ...] = ()
    #: Hard-deadline requests shed by admission control at dispatch time.
    shed: int = 0
    #: Requests resolved by gateway middleware (zero unless a pipeline ran).
    cached: int = 0
    coalesced: int = 0
    rate_limited: int = 0
    rejected: int = 0
    #: Replicas killed by the OOM evictor (zero unless a memory model ran).
    oom_evictions: int = 0
    #: Integral of replica RSS over residency (MB x seconds); zero without
    #: a memory model.
    rss_mb_seconds: float = 0.0
    #: Replica-busy seconds (hedged losers included: they burned CPU too).
    cpu_seconds: float = 0.0

    @property
    def served(self) -> int:
        """Requests that got a good response (completed + cached + coalesced)."""
        return self.completed + self.cached + self.coalesced

    @property
    def rss_mb_per_1k(self) -> float:
        """RSS MB-seconds consumed per 1000 served requests.

        The density headline: how much resident memory (integrated over
        replica residency) a unit of goodput costs under this mode.
        """
        if self.served == 0:
            return 0.0
        return self.rss_mb_seconds * 1000.0 / self.served

    @property
    def cpu_seconds_per_1k(self) -> float:
        """Replica-busy CPU seconds per 1000 served requests."""
        if self.served == 0:
            return 0.0
        return self.cpu_seconds * 1000.0 / self.served

    @property
    def deadline_total(self) -> int:
        return sum(cls.deadline_total for cls in self.classes)

    @property
    def deadline_met(self) -> int:
        return sum(cls.deadline_met for cls in self.classes)

    @property
    def deadline_met_ratio(self) -> float:
        """Fraction of deadline-carrying requests served in time (1.0 if none)."""
        total = self.deadline_total
        if total == 0:
            return 1.0
        return self.deadline_met / total

    @property
    def goodput_rps(self) -> float:
        """Served requests per second of simulated run time."""
        if self.duration_s <= 0:
            return 0.0
        return self.served / self.duration_s

    @property
    def failure_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        failed = (
            self.timed_out + self.dropped + self.shed
            + self.rate_limited + self.rejected
        )
        return failed / self.offered

    @property
    def mean_replicas(self) -> float:
        """Time-weighted average pool size over the run."""
        if self.duration_s <= 0:
            return 0.0
        return self.replica_seconds / self.duration_s


def summarize(
    mode: str,
    pattern: str,
    duration_s: float,
    records: Sequence[RequestRecord],
    cold_starts: int = 0,
    cold_start_seconds: float = 0.0,
    replica_timeline: Sequence[Tuple[float, int]] = (),
    declared_classes: Sequence[str] = (),
    oom_evictions: int = 0,
    rss_mb_seconds: float = 0.0,
    cpu_seconds: float = 0.0,
) -> TrafficSummary:
    """Roll per-request records into one :class:`TrafficSummary`."""
    if duration_s <= 0:
        raise SloError("duration must be positive")
    completed = [r for r in records if r.outcome is RequestOutcome.COMPLETED]
    served = [r for r in records if r.served]
    timed_out = sum(1 for r in records if r.outcome is RequestOutcome.TIMED_OUT)
    dropped = sum(1 for r in records if r.outcome is RequestOutcome.DROPPED)
    shed = sum(1 for r in records if r.outcome is RequestOutcome.SHED)
    # End-to-end latency covers everything the client saw served (cache
    # hits and coalesced responses included); queueing and service remain
    # backend-only — middleware-resolved requests never held a replica.
    if served:
        latency = LatencySummary.from_samples([r.latency_s for r in served])
    else:
        latency = LatencySummary.empty()
    if completed:
        queueing = LatencySummary.from_samples([r.queueing_delay_s for r in completed])
        service = LatencySummary.from_samples([r.service_s for r in completed])
    else:
        queueing = service = LatencySummary.empty()
    return TrafficSummary(
        mode=mode,
        pattern=pattern,
        duration_s=duration_s,
        offered=len(records),
        completed=len(completed),
        timed_out=timed_out,
        dropped=dropped,
        shed=shed,
        cached=sum(1 for r in records if r.outcome is RequestOutcome.CACHED),
        coalesced=sum(1 for r in records if r.outcome is RequestOutcome.COALESCED),
        rate_limited=sum(
            1 for r in records if r.outcome is RequestOutcome.RATE_LIMITED
        ),
        rejected=sum(1 for r in records if r.outcome is RequestOutcome.REJECTED),
        latency=latency,
        queueing=queueing,
        service=service,
        cold_starts=cold_starts,
        cold_start_seconds=cold_start_seconds,
        replica_seconds=_replica_seconds(replica_timeline, duration_s),
        max_replicas=max((count for _, count in replica_timeline), default=0),
        replica_timeline=tuple(replica_timeline),
        classes=summarize_classes(records, declared=declared_classes),
        oom_evictions=oom_evictions,
        rss_mb_seconds=rss_mb_seconds,
        cpu_seconds=cpu_seconds,
    )


def _replica_seconds(timeline: Sequence[Tuple[float, int]], duration_s: float) -> float:
    """Integrate a step function of (time, pool size) samples over the run."""
    if not timeline:
        return 0.0
    total = 0.0
    for (start, count), (end, _) in zip(timeline, timeline[1:]):
        total += count * max(0.0, min(end, duration_s) - start)
    last_time, last_count = timeline[-1]
    total += last_count * max(0.0, duration_s - last_time)
    return total
