"""Request scheduling classes: deadlines and priority tiers within a tenant.

PR 2 made the gateway fair *across* tenants; this module differentiates
traffic *within* one: a :class:`RequestClass` names one kind of request a
tenant sends (an interactive call with a tight deadline, a batch job with
none), the share of the tenant's stream it makes up, the priority tier it
dispatches in and the relative deadline each of its requests carries.
:func:`assign_classes` stamps a seeded class mix onto a request stream —
deterministically, so two runs compared under different scheduling policies
see byte-identical classed arrivals — and :func:`parse_classes` reads the
``repro traffic --classes`` JSON format.

Deadlines are soft SLOs by default: a request that misses its deadline
still executes and completes, it just counts as a miss in the per-class
deadline-met ratio (:class:`~repro.traffic.slo.ClassSummary`).  A class
with ``hard=True`` opts into admission control instead: the gateway sheds
its requests at dispatch time once the deadline can no longer be met,
because serving a hard-deadline request late produces no value — only
wasted replica seconds.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.traffic.arrivals import Request


class RequestClassError(ValueError):
    """Raised for invalid class definitions or mixes."""


#: Characters banned from class names: they delimit the export encoding.
_RESERVED_CHARS = ("|", "/", ",")


@dataclass(frozen=True)
class RequestClass:
    """One scheduling class of a tenant's traffic mix."""

    name: str
    #: Fraction weight of the tenant's stream this class makes up.
    share: float = 1.0
    #: Dispatch tier under EDF: lower is served first (0 = most urgent).
    priority: int = 0
    #: Relative deadline from arrival, in seconds (``None`` = no deadline).
    deadline_s: Optional[float] = None
    #: Hard deadline: shed at dispatch when the deadline cannot be met,
    #: instead of serving (and counting) a late completion.
    hard: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise RequestClassError("class name must be non-empty")
        for char in _RESERVED_CHARS:
            if char in self.name:
                raise RequestClassError(
                    "class name %r must not contain %r (reserved for exports)"
                    % (self.name, char)
                )
        if self.share <= 0:
            raise RequestClassError("class %r: share must be positive" % self.name)
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise RequestClassError("class %r: deadline must be positive" % self.name)
        if self.hard and self.deadline_s is None:
            raise RequestClassError(
                "class %r: a hard class needs a deadline to enforce" % self.name
            )


def validate_mix(classes: Sequence[RequestClass]) -> Tuple[RequestClass, ...]:
    """Check a class mix for duplicates and return it as a tuple."""
    names = [cls.name for cls in classes]
    if len(set(names)) != len(names):
        raise RequestClassError("class names must be unique, got %s" % names)
    return tuple(classes)


def assign_classes(
    requests: Sequence[Request],
    classes: Sequence[RequestClass],
    seed: int = 0,
) -> List[Request]:
    """Stamp a seeded class mix onto a request stream.

    Each request draws its class share-weighted from ``classes`` using a
    dedicated RNG, so the assignment depends only on (``seed``, request
    count) — never on arrival times — and identical streams get identical
    classes whatever scheduling policy later serves them.  A request's
    absolute deadline is its arrival plus the class's relative deadline.
    """
    mix = validate_mix(classes)
    if not mix:
        return list(requests)
    rng = random.Random(seed)
    shares = [cls.share for cls in mix]
    stamped: List[Request] = []
    for request in requests:
        chosen = rng.choices(mix, weights=shares, k=1)[0]
        stamped.append(
            replace(
                request,
                request_class=chosen.name,
                priority=chosen.priority,
                deadline_s=(
                    request.arrival_s + chosen.deadline_s
                    if chosen.deadline_s is not None
                    else None
                ),
                hard=chosen.hard,
            )
        )
    return stamped


# -- config parsing (the ``repro traffic --classes`` format) ------------------------

#: Recognised keys of one class object in a ``--classes`` config.
_CLASS_KEYS = frozenset({"name", "share", "priority", "deadline", "hard"})


def parse_classes(source: str) -> Tuple[RequestClass, ...]:
    """Parse a ``--classes`` config: a JSON array, inline or a file path.

    Each element describes one class::

        {"name": "interactive", "share": 0.5, "priority": 0, "deadline": 2.0,
         "hard": true}

    ``share`` defaults to 1.0 (equal mix), ``priority`` to 0, ``deadline``
    (relative seconds) to none and ``hard`` (shed at dispatch when the
    deadline cannot be met) to false.
    """
    text = source
    if os.path.exists(source):
        try:
            with open(source, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise RequestClassError("cannot read classes config %r: %s" % (source, exc))
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RequestClassError("classes config is not valid JSON: %s" % exc)
    if not isinstance(raw, list) or not raw:
        raise RequestClassError("classes config must be a non-empty JSON array")
    classes: List[RequestClass] = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise RequestClassError("class #%d must be a JSON object" % index)
        unknown = sorted(set(entry) - _CLASS_KEYS)
        if unknown:
            raise RequestClassError(
                "class #%d has unknown keys: %s" % (index, ", ".join(unknown))
            )
        if "name" not in entry:
            raise RequestClassError("class #%d is missing 'name'" % index)
        try:
            classes.append(
                RequestClass(
                    name=str(entry["name"]),
                    share=float(entry.get("share", 1.0)),
                    priority=int(entry.get("priority", 0)),
                    deadline_s=(
                        float(entry["deadline"]) if entry.get("deadline") is not None else None
                    ),
                    hard=bool(entry.get("hard", False)),
                )
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, RequestClassError):
                raise
            raise RequestClassError("class #%d has a malformed value: %s" % (index, exc))
    return validate_mix(classes)
