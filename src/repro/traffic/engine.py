"""The traffic engine: sustained multi-client load as a discrete-event run.

The paper measures one transfer at a time; this engine measures the
*platform*: seeded arrival streams are admitted through the
:class:`~repro.platform.gateway.IngressGateway`, queued while replicas are
busy or still cold-starting, executed with bounded per-replica and per-node
concurrency, and accounted per request with queueing delay separated from
service time.  An :class:`~repro.traffic.autoscaler.Autoscaler` closes the
loop each control interval, growing the pool (paying the runtime's modelled
cold start through the orchestrator) and reclaiming replicas idle past
their keep-alive.

Runs can be multi-tenant: a :class:`~repro.traffic.tenants.TenantSpec` list
drives several named functions concurrently over *one* shared cluster, so
their replica pools contend for the same node cores.  Queueing lives in the
gateway's :class:`~repro.platform.gateway.FairQueue` — per-tenant queues
dispatched either globally FIFO or by weighted fair queueing — and a
:class:`~repro.traffic.tenants.CapacityArbiter` keeps any one tenant's
autoscaler from absorbing the whole cluster.  The single-stream
:class:`TrafficEngine` is the one-tenant special case of the same machine.

Service times come from the same machinery as every figure in the
reproduction: each distinct (mode, payload size) is invoked once through an
isolated :func:`~repro.experiments.environment.build_pair_setup`
environment and cached — the simulation is deterministic, so the
per-request cost of a given transfer never varies.  Contention is then
modelled by the engine's concurrency bounds rather than by re-simulating
every transfer, which keeps hundred-thousand-request runs cheap.

Everything is driven by one
:class:`~repro.sim.engine.PartitionedEventLoop`, so a seeded run is exactly
reproducible: same arrivals, same scaling decisions, same percentiles.
Cost accounting is sharded per node (each node of the serving cluster
charges its own :class:`~repro.sim.ledger.NodeLedger`), and with
``parallel_nodes`` the engine exploits that: per-node completion work runs
in concurrent thread phases between cross-node synchronization points
(gateway dispatch), the per-(mode, payload) service-time measurements —
each an isolated simulation — are computed in parallel worker processes
up front, and whole compared runs (:func:`run_comparison`,
:func:`~repro.traffic.policies.compare_scaling_policies`) ship entire
cluster simulations to worker processes, which is where multi-core hosts
win their wall-clock.  A parallel run produces summaries and figures
identical to the serial one under the same seeds.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.platform.gateway import (
    FairnessPolicy,
    IntraTenantOrder,
    RoutingPolicy,
)
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import PartitionedEventLoop, parallel_map
from repro.traffic.arrivals import Request

# The per-cluster machinery lives in repro.traffic.cluster_runtime; the
# engine is its single-cluster driver.  The underscored names are
# re-exported here because callers (benchmarks, tests) predate the split.
from repro.traffic.cluster_runtime import (
    MB,
    ClusterRuntime,
    _measure_service_time,
    _merge_timelines,
    _Replica,
    _spec_for_mode,
    _TenantState,
)
from repro.traffic.autoscaler import Autoscaler, TargetConcurrencyPolicy
from repro.traffic.slo import RequestRecord, TrafficSummary
from repro.traffic.tenants import MultiTenantSummary, TenantSpec

if TYPE_CHECKING:  # pragma: no cover - runtime imports are lazy to avoid a
    # cycle: repro.obs.spans imports repro.traffic.slo, whose package
    # __init__ imports this module.
    from repro.gateway.middleware import MiddlewarePipeline
    from repro.obs.spans import WaterfallRow
    from repro.obs.streaming import StreamingTrafficStats
    from repro.obs.telemetry import Telemetry

__all__ = [
    "MB",
    "TRAFFIC_MODES",
    "TrafficEngineError",
    "TrafficConfig",
    "TrafficEngine",
    "MultiTenantTrafficEngine",
    "run_comparison",
]

#: Modes the traffic engine can drive (single-node deployments).
TRAFFIC_MODES: Tuple[str, ...] = (
    "roadrunner-user",
    "roadrunner-kernel",
    "runc-http",
    "wasmedge-http",
)


class TrafficEngineError(RuntimeError):
    """Raised for invalid engine configurations or request streams."""


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of one sustained-load run."""

    #: Nodes in the serving cluster; replicas spread round-robin across them.
    nodes: int = 4
    #: Concurrent requests one replica serves (1 = FaaS single-concurrency).
    per_replica_concurrency: int = 1
    #: Replicas registered (and cold-started) per tenant before the first arrival.
    initial_replicas: int = 1
    #: Admission bound per tenant: arrivals beyond this queue depth are dropped.
    max_queue: int = 10_000
    #: Requests queued longer than this time out (never reach a replica).
    queue_timeout_s: float = 30.0
    #: Load-balancer policy at the gateway.
    routing: RoutingPolicy = RoutingPolicy.LEAST_LOADED
    cost_model: CostModel = DEFAULT_COST_MODEL
    #: Simulate nodes in parallel: pre-measure service times in worker
    #: processes and run per-node completion phases concurrently.  Results
    #: are identical to a serial run under the same seeds.
    parallel_nodes: bool = False
    #: Keep one RequestRecord per request (exact percentiles, O(requests)
    #: memory).  False switches the engine to streaming accumulators and P²
    #: quantile sketches: summaries keep their shape, memory stays constant.
    retain_records: bool = True
    #: Per-node RSS budget in MB.  0 (the default) disables the memory
    #: model entirely: replicas carry no footprint, services never inflate,
    #: the evictor never runs, and every output stays byte-identical to a
    #: run built before the model existed.
    node_memory_mb: float = 0.0
    #: Per-replica RSS override in MB (``None`` = each tenant's runtime
    #: profile default: the container baseline for runc, the Wasm baseline
    #: otherwise).  Tenant specs can override per tenant via ``rss_mb``.
    replica_rss_mb: Optional[float] = None
    #: Fraction of the node budget above which service times inflate.
    pressure_knee: float = 0.85
    #: Inflation slope: the service multiplier reaches ``1 + slope`` when a
    #: node sits exactly at its budget.
    pressure_slope: float = 1.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise TrafficEngineError("need at least one node")
        if self.per_replica_concurrency < 1:
            raise TrafficEngineError("per_replica_concurrency must be >= 1")
        if self.initial_replicas < 0:
            raise TrafficEngineError("initial_replicas must be non-negative")
        if self.max_queue < 1:
            raise TrafficEngineError("max_queue must be >= 1")
        if self.queue_timeout_s <= 0:
            raise TrafficEngineError("queue_timeout_s must be positive")
        if self.node_memory_mb < 0:
            raise TrafficEngineError("node_memory_mb must be non-negative")
        if self.replica_rss_mb is not None and self.replica_rss_mb <= 0:
            raise TrafficEngineError("replica_rss_mb must be positive")
        if not 0.0 < self.pressure_knee < 1.0:
            raise TrafficEngineError("pressure_knee must be in (0, 1)")
        if self.pressure_slope < 0:
            raise TrafficEngineError("pressure_slope must be non-negative")

    @property
    def memory_enabled(self) -> bool:
        """Whether this run models memory at all."""
        return self.node_memory_mb > 0


def schedule_arrivals(
    loop: PartitionedEventLoop,
    states: Sequence[_TenantState],
    admit: Callable[[_TenantState, Request], None],
    total_requests: int,
) -> None:
    """Chain every tenant's arrivals through ``admit``, lazily and in order.

    Arrivals are *not* pre-scheduled: a million heap entries up front
    would dominate the run's memory and heap-sift work.  Instead the
    per-tenant streams — each already in (arrival_s, request_id) order —
    are lazily merged, one order slot per arrival is reserved so
    tie-breaking matches the old pre-scheduled order exactly, and each
    arrival event chains the next one from the merged iterator.
    """

    def tenant_entries(
        index: int, state: _TenantState, requests: Sequence[Request]
    ) -> "Iterator[Tuple[float, int, int, _TenantState, Request]]":
        for request in requests:
            yield (request.arrival_s, index, request.request_id, state, request)

    streams = []
    for index, state in enumerate(states):
        requests = state.requests
        if any(
            (left.arrival_s, left.request_id) > (right.arrival_s, right.request_id)
            for left, right in zip(requests, requests[1:])
        ):
            # Explicit request lists may arrive unordered; generated
            # streams never do and skip the copy.
            requests = sorted(
                requests, key=lambda request: (request.arrival_s, request.request_id)
            )
        streams.append(tenant_entries(index, state, requests))
    # ``heapq.merge`` with already-sorted streams reproduces the old
    # ``sorted(all_entries, key=entry[:3])`` order: keys differ across
    # tenants (the index is part of the key) and within a tenant the
    # stream order is preserved for ties, exactly like a stable sort.
    arrival_iter = heapq.merge(*streams, key=lambda entry: entry[:3])
    arrival_base = loop.reserve_orders(total_requests)
    arrival_slot = 0

    def advance_arrivals() -> None:
        nonlocal arrival_slot
        entry = next(arrival_iter, None)
        if entry is None:
            return
        loop.schedule_at(
            entry[0],
            arrival_event,
            label="arrive",
            args=(entry[3], entry[4]),
            order=arrival_base + arrival_slot,
        )
        arrival_slot += 1

    def arrival_event(state: _TenantState, request: Request) -> None:
        admit(state, request)
        advance_arrivals()

    advance_arrivals()


class MultiTenantTrafficEngine:
    """Drives several tenants' arrival streams over one shared cluster."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        config: Optional[TrafficConfig] = None,
        fairness: FairnessPolicy = FairnessPolicy.WFQ,
        starvation_guard: int = 32,
        autoscaler_factory: Optional[Callable[[], Autoscaler]] = None,
        oversubscription: float = 2.0,
        service_cache: Optional[Dict[Tuple[str, int], float]] = None,
        intra: IntraTenantOrder = IntraTenantOrder.FIFO,
        telemetry: Optional[Telemetry] = None,
        middleware: Optional[MiddlewarePipeline] = None,
    ) -> None:
        if not tenants:
            raise TrafficEngineError("need at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise TrafficEngineError("tenant names must be unique, got %s" % names)
        if "cluster" in names:
            raise TrafficEngineError(
                "tenant name 'cluster' is reserved for the cluster-wide rollup"
            )
        functions = [tenant.function_name for tenant in tenants]
        if len(set(functions)) != len(functions):
            raise TrafficEngineError("tenant functions must be unique, got %s" % functions)
        for tenant in tenants:
            if tenant.mode not in TRAFFIC_MODES:
                raise TrafficEngineError(
                    "tenant %r: unknown traffic mode %r (known: %s)"
                    % (tenant.name, tenant.mode, ", ".join(TRAFFIC_MODES))
                )
        if oversubscription < 1.0:
            raise TrafficEngineError("oversubscription must be >= 1.0")
        if starvation_guard < 1:
            raise TrafficEngineError("starvation_guard must be >= 1")
        self.tenants = list(tenants)
        self.config = config or TrafficConfig()
        self.fairness = fairness
        self.starvation_guard = starvation_guard
        self.intra = intra
        self.oversubscription = oversubscription
        self.autoscaler_factory = autoscaler_factory or (
            lambda: Autoscaler(TargetConcurrencyPolicy(1.0))
        )
        self.clock = SimClock()
        self._service_cache: Dict[Tuple[str, int], float] = (
            service_cache if service_cache is not None else {}
        )
        self.telemetry = telemetry
        #: Optional gateway middleware chain every request is threaded
        #: through (:mod:`repro.gateway.middleware`).  ``None`` — or a
        #: pipeline with no enabled stages — leaves the request path
        #: byte-identical to a run without one.
        self.middleware = middleware
        #: Per-stage middleware counters of the last run ({} without one).
        self.middleware_stats: Dict[str, Dict[str, int]] = {}
        #: Per-tenant records of the last run (sorted by request id).
        #: Empty lists in sketch mode — nothing is retained there.
        self.records: Dict[str, List[RequestRecord]] = {}
        #: OOM evictions of the last run, in firing order: (time, tenant,
        #: replica name).  Empty unless the memory model ran.
        self.evictions: List[Tuple[float, str, str]] = []
        #: Latency-waterfall rows of the last run (per tenant + cluster).
        self.waterfall: List[WaterfallRow] = []
        self._cluster_stream: Optional[StreamingTrafficStats] = None
        #: Memoized (mode, payload) key sets per tenant spec, so repeated
        #: runs of one engine skip re-scanning every request to learn which
        #: service times to pre-measure.  Keyed by spec identity (the stored
        #: spec reference keeps the id stable); sound because a spec's
        #: seeded generation always yields the same payload set.
        self._tenant_keys_cache: Dict[int, Tuple[TenantSpec, frozenset]] = {}
        #: How many key-set derivations actually ran (tests pin the memo).
        self.prefill_key_derivations = 0

    # -- public API -----------------------------------------------------------------

    def run(self) -> MultiTenantSummary:
        """Admit, queue, execute and account every tenant's stream."""
        states = [
            _TenantState(
                spec=tenant,
                function_spec=_spec_for_mode(tenant.mode, tenant.function_name, tenant.name),
                autoscaler=self.autoscaler_factory(),
                requests=tenant.generate(),
            )
            for tenant in self.tenants
        ]
        total_requests = sum(len(state.requests) for state in states)
        if total_requests == 0:
            raise TrafficEngineError("cannot run with zero requests across all tenants")
        self.records = {}
        self.waterfall = []
        retain = self.config.retain_records
        if not retain:
            from repro.obs.streaming import StreamingTrafficStats

            for state in states:
                state.stream = StreamingTrafficStats(
                    declared_classes=state.spec.class_names
                )
            if len(states) == 1 and not states[0].spec.class_names:
                # Single classless tenant: the cluster rollup would observe
                # exactly the tenant's records into an identical accumulator,
                # so share one object and halve the sketch updates per
                # request.  finish() skips the second observe on identity.
                self._cluster_stream = states[0].stream
            else:
                self._cluster_stream = StreamingTrafficStats()
        telemetry = self.telemetry
        if self.config.parallel_nodes:
            self._prefill_service_cache(states)

        self.clock.reset()
        loop = PartitionedEventLoop()
        counter = [total_requests]
        runtime = ClusterRuntime(
            states=states,
            config=self.config,
            fairness=self.fairness,
            starvation_guard=self.starvation_guard,
            intra=self.intra,
            oversubscription=self.oversubscription,
            clock=self.clock,
            loop=loop,
            service_time=self._service_time,
            service_cache=self._service_cache,
            counter=counter,
            total_requests=total_requests,
            telemetry=telemetry,
            pipeline=self.middleware,
            cluster_stream=self._cluster_stream,
        )
        self.evictions = runtime.evictions

        # Bootstrap: initial pools (arbitrated like autoscaled growth),
        # arrival events in deterministic order, one control loop per tenant.
        if telemetry is not None:
            last_arrival_hint = max(
                (request.arrival_s for state in states for request in state.requests),
                default=0.0,
            )
            telemetry.on_run_start(total_requests, duration_hint_s=last_arrival_hint)
        runtime.bootstrap(self.config.initial_replicas)
        schedule_arrivals(loop, states, runtime.admit, total_requests)
        runtime.start_ticks()
        if self.config.parallel_nodes:
            loop.run_parallel()
        else:
            loop.run()

        if counter[0] != 0:
            raise TrafficEngineError(
                "engine finished with %d unresolved requests" % counter[0]
            )
        last_arrival = max(
            (request.arrival_s for state in states for request in state.requests),
            default=0.0,
        )
        duration = max(runtime.last_event_s, last_arrival)
        runtime.finalize(duration)
        self.middleware_stats = runtime.middleware_stats
        if telemetry is not None:
            telemetry.on_run_end(
                duration,
                total_requests,
                sum(len(state.replicas) for state in states),
            )
        summary = runtime.snapshot(duration)
        self.records = runtime.records
        self.waterfall = runtime.waterfall
        return summary

    # -- service times ---------------------------------------------------------------

    def _service_time(self, mode: str, payload_bytes: int) -> float:
        """Workflow latency for one (mode, payload size), measured once and cached.

        The measurement invokes the canonical two-function chain through a
        fresh isolated environment for the tenant's mode — the same path
        every figure in the reproduction uses.
        """
        key = (mode, payload_bytes)
        cached = self._service_cache.get(key)
        if cached is None:
            cached = _measure_service_time(mode, payload_bytes, self.config.cost_model)
            self._service_cache[key] = cached
        return cached

    def _prefill_service_cache(self, states: Sequence[_TenantState]) -> None:
        """Measure every (mode, payload) the run will need, in parallel.

        Each measurement is an isolated simulation (own cluster, own ledger
        shards, own clock), so worker processes compute them concurrently
        and deterministically.  The win scales with the number of distinct
        (mode, payload) pairs the tenants exercise; runs dominated by the
        event loop itself parallelize at the whole-run level instead
        (:func:`run_comparison` / ``compare_scaling_policies``).
        """
        wanted: set = set()
        for state in states:
            cached = self._tenant_keys_cache.get(id(state.spec))
            if cached is not None and cached[0] is state.spec:
                wanted |= cached[1]
                continue
            keys = frozenset(
                (state.spec.mode, request.payload_bytes) for request in state.requests
            )
            self._tenant_keys_cache[id(state.spec)] = (state.spec, keys)
            self.prefill_key_derivations += 1
            wanted |= keys
        needed = sorted(wanted - set(self._service_cache))
        if not needed:
            return
        results = parallel_map(
            _measure_service_time,
            [(mode, payload_bytes, self.config.cost_model) for mode, payload_bytes in needed],
        )
        for key, value in zip(needed, results):
            self._service_cache[key] = value


def _ordered_requests(requests: Sequence[Request]) -> Tuple[Request, ...]:
    """The stream in canonical (arrival, id) order, without a needless copy.

    ``run_comparison`` orders the stream once and hands the same tuple to
    every compared engine; each engine re-checks instead of re-sorting, so
    an already-ordered stream (the common case — generators emit arrivals
    in order) passes through untouched.
    """
    if all(
        (left.arrival_s, left.request_id) <= (right.arrival_s, right.request_id)
        for left, right in zip(requests, requests[1:])
    ):
        return requests if isinstance(requests, tuple) else tuple(requests)
    return tuple(sorted(requests, key=lambda r: (r.arrival_s, r.request_id)))


class TrafficEngine:
    """Drives one arrival stream against one runtime mode.

    The single-tenant special case of :class:`MultiTenantTrafficEngine`:
    one function, one pool, a FIFO admission queue — exactly the regime the
    sustained-load benchmarks compare runtimes under.
    """

    def __init__(
        self,
        mode: str,
        autoscaler: Optional[Autoscaler] = None,
        config: Optional[TrafficConfig] = None,
        intra: IntraTenantOrder = IntraTenantOrder.FIFO,
        telemetry: Optional[Telemetry] = None,
        middleware: Optional[MiddlewarePipeline] = None,
    ) -> None:
        if mode not in TRAFFIC_MODES:
            raise TrafficEngineError(
                "unknown traffic mode %r (known: %s)" % (mode, ", ".join(TRAFFIC_MODES))
            )
        self.mode = mode
        self.config = config or TrafficConfig()
        self.autoscaler = autoscaler or Autoscaler(TargetConcurrencyPolicy(1.0))
        self.intra = intra
        self.telemetry = telemetry
        self.middleware = middleware
        self.middleware_stats: Dict[str, Dict[str, int]] = {}
        self.records: List[RequestRecord] = []
        self.waterfall: List[WaterfallRow] = []
        self.evictions: List[Tuple[float, str, str]] = []
        self.clock = SimClock()
        self._service_cache: Dict[Tuple[str, int], float] = {}

    def run(self, requests: Sequence[Request], pattern: str = "trace") -> TrafficSummary:
        """Admit, queue, execute and account every request in the stream."""
        if not requests:
            raise TrafficEngineError("cannot run an empty request stream")
        functions = {request.function for request in requests}
        if len(functions) != 1:
            raise TrafficEngineError(
                "the engine serves one function per run, got %s" % sorted(functions)
            )
        function = requests[0].function
        ordered = _ordered_requests(requests)
        # Internal tenant label (the old engine's spec tenant): the caller's
        # function name stays free of the multi-tenant name rules.
        tenant = TenantSpec(
            name="tenant-1",
            mode=self.mode,
            weight=1,
            requests=ordered,
            function=function,
            pattern=pattern,
        )
        engine = MultiTenantTrafficEngine(
            [tenant],
            config=self.config,
            fairness=FairnessPolicy.FIFO,
            autoscaler_factory=lambda: self.autoscaler,
            oversubscription=1.0,  # replicas beyond the cores could never serve
            service_cache=self._service_cache,
            intra=self.intra,
            telemetry=self.telemetry,
            middleware=self.middleware,
        )
        engine.clock = self.clock  # one simulated timeline across runs
        result = engine.run()
        self.middleware_stats = engine.middleware_stats
        self.records = engine.records["tenant-1"]
        self.evictions = engine.evictions
        # Relabel the internal tenant's waterfall rows with the mode name.
        self.waterfall = [
            replace(row, label=self.mode)
            for row in engine.waterfall
            if row.label == "tenant-1"
        ]
        return result.tenants["tenant-1"]


def _run_single_mode(
    mode: str,
    requests: Tuple[Request, ...],
    autoscaler: Optional[Autoscaler],
    config: Optional[TrafficConfig],
    pattern: str,
    intra: IntraTenantOrder,
    telemetry: Optional[Telemetry] = None,
    middleware: Optional[MiddlewarePipeline] = None,
) -> Tuple[TrafficSummary, List[RequestRecord], List[WaterfallRow], Dict[str, Dict[str, int]]]:
    """One mode's complete simulation — the unit of process-level parallelism.

    Module-level and built from plain data, so a worker process can run an
    entire cluster (nodes, ledger shards, clock and all) independently.
    Returns the summary plus the run's records, waterfall rows and
    middleware counters, which pickle back to the parent alongside it.
    """
    engine = TrafficEngine(
        mode,
        autoscaler=autoscaler,
        config=config,
        intra=intra,
        telemetry=telemetry,
        middleware=middleware,
    )
    summary = engine.run(requests, pattern=pattern)
    return summary, engine.records, engine.waterfall, engine.middleware_stats


def run_comparison(
    requests: Sequence[Request],
    modes: Sequence[str] = ("roadrunner-user", "runc-http"),
    autoscaler_factory=None,
    config: Optional[TrafficConfig] = None,
    pattern: str = "trace",
    intra: IntraTenantOrder = IntraTenantOrder.FIFO,
    parallel: bool = False,
    telemetry_factory: Optional[Callable[[str], Telemetry]] = None,
    records_out: Optional[Dict[str, List[RequestRecord]]] = None,
    waterfalls_out: Optional[Dict[str, List[WaterfallRow]]] = None,
    middleware_factory: Optional[Callable[[str], MiddlewarePipeline]] = None,
    middleware_out: Optional[Dict[str, Dict[str, Dict[str, int]]]] = None,
) -> Dict[str, TrafficSummary]:
    """Run the *same* arrival stream against several runtimes.

    Each mode gets a fresh engine and a fresh autoscaler (from
    ``autoscaler_factory``, defaulting to target-concurrency 1.0) so no
    state leaks between the compared runs — the arrival stream is the only
    thing they share.  With ``parallel`` each mode's whole simulation (its
    own cluster, per-node ledger shards and clock) runs in a worker
    process; results are identical to the serial comparison because every
    run is independent and seeded.

    ``telemetry_factory`` builds one :class:`~repro.obs.telemetry.Telemetry`
    per mode (called with the mode name); its sinks hold open file handles,
    so it requires the serial path.  ``records_out`` / ``waterfalls_out``
    collect each mode's per-request records and waterfall rows.
    ``middleware_factory`` builds one fresh
    :class:`~repro.gateway.middleware.MiddlewarePipeline` per mode (stage
    state like caches and token buckets must not leak between compared
    runs); ``middleware_out`` collects each mode's per-stage counters.
    """
    if telemetry_factory is not None and parallel:
        raise TrafficEngineError(
            "telemetry sinks cannot cross process boundaries; "
            "run the comparison serially to attach telemetry"
        )
    ordered = _ordered_requests(requests)
    jobs = [
        (
            mode,
            ordered,
            autoscaler_factory() if autoscaler_factory else None,
            config,
            pattern,
            intra,
            telemetry_factory(mode) if telemetry_factory else None,
            middleware_factory(mode) if middleware_factory else None,
        )
        for mode in modes
    ]
    if parallel:
        results = parallel_map(_run_single_mode, jobs)
    else:
        results = [_run_single_mode(*job) for job in jobs]
    summaries: Dict[str, TrafficSummary] = {}
    for mode, (summary, records, waterfall, middleware_stats) in zip(modes, results):
        summaries[mode] = summary
        if records_out is not None:
            records_out[mode] = records
        if waterfalls_out is not None:
            waterfalls_out[mode] = waterfall
        if middleware_out is not None:
            middleware_out[mode] = middleware_stats
    return summaries
