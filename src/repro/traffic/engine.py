"""The traffic engine: sustained multi-client load as a discrete-event run.

The paper measures one transfer at a time; this engine measures the
*platform*: seeded arrival streams are admitted through the
:class:`~repro.platform.gateway.IngressGateway`, queued while replicas are
busy or still cold-starting, executed with bounded per-replica and per-node
concurrency, and accounted per request with queueing delay separated from
service time.  An :class:`~repro.traffic.autoscaler.Autoscaler` closes the
loop each control interval, growing the pool (paying the runtime's modelled
cold start through the orchestrator) and reclaiming replicas idle past
their keep-alive.

Runs can be multi-tenant: a :class:`~repro.traffic.tenants.TenantSpec` list
drives several named functions concurrently over *one* shared cluster, so
their replica pools contend for the same node cores.  Queueing lives in the
gateway's :class:`~repro.platform.gateway.FairQueue` — per-tenant queues
dispatched either globally FIFO or by weighted fair queueing — and a
:class:`~repro.traffic.tenants.CapacityArbiter` keeps any one tenant's
autoscaler from absorbing the whole cluster.  The single-stream
:class:`TrafficEngine` is the one-tenant special case of the same machine.

Service times come from the same machinery as every figure in the
reproduction: each distinct (mode, payload size) is invoked once through an
isolated :func:`~repro.experiments.environment.build_pair_setup`
environment and cached — the simulation is deterministic, so the
per-request cost of a given transfer never varies.  Contention is then
modelled by the engine's concurrency bounds rather than by re-simulating
every transfer, which keeps hundred-thousand-request runs cheap.

Everything is driven by one
:class:`~repro.sim.engine.PartitionedEventLoop`, so a seeded run is exactly
reproducible: same arrivals, same scaling decisions, same percentiles.
Cost accounting is sharded per node (each node of the serving cluster
charges its own :class:`~repro.sim.ledger.NodeLedger`), and with
``parallel_nodes`` the engine exploits that: per-node completion work runs
in concurrent thread phases between cross-node synchronization points
(gateway dispatch), the per-(mode, payload) service-time measurements —
each an isolated simulation — are computed in parallel worker processes
up front, and whole compared runs (:func:`run_comparison`,
:func:`~repro.traffic.policies.compare_scaling_policies`) ship entire
cluster simulations to worker processes, which is where multi-core hosts
win their wall-clock.  A parallel run produces summaries and figures
identical to the serial one under the same seeds.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.experiments.environment import build_pair_setup
from repro.platform.deployment import DeployedFunction
from repro.platform.cluster import Cluster
from repro.platform.function import FunctionSpec
from repro.platform.gateway import (
    FairnessPolicy,
    IngressGateway,
    IntraTenantOrder,
    RoutingPolicy,
)
from repro.platform.orchestrator import Orchestrator
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import PartitionedEventLoop, parallel_map
from repro.sim.ledger import CostCategory, CostLedger
from repro.traffic.arrivals import Request
from repro.traffic.autoscaler import Autoscaler, LoadSample, TargetConcurrencyPolicy
from repro.traffic.slo import RequestOutcome, RequestRecord, TrafficSummary, summarize
from repro.traffic.tenants import CapacityArbiter, MultiTenantSummary, NodeUsage, TenantSpec
from repro.wasm.runtime import RuntimeKind
from repro.workloads.generators import make_payload

if TYPE_CHECKING:  # pragma: no cover - runtime imports are lazy to avoid a
    # cycle: repro.obs.spans imports repro.traffic.slo, whose package
    # __init__ imports this module.
    from repro.gateway.middleware import MiddlewarePipeline, RequestContext
    from repro.obs.spans import WaterfallRow
    from repro.obs.streaming import StreamingTrafficStats
    from repro.obs.telemetry import Telemetry

MB = 1024 * 1024

#: Modes the traffic engine can drive (single-node deployments).
TRAFFIC_MODES: Tuple[str, ...] = (
    "roadrunner-user",
    "roadrunner-kernel",
    "runc-http",
    "wasmedge-http",
)


class TrafficEngineError(RuntimeError):
    """Raised for invalid engine configurations or request streams."""


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of one sustained-load run."""

    #: Nodes in the serving cluster; replicas spread round-robin across them.
    nodes: int = 4
    #: Concurrent requests one replica serves (1 = FaaS single-concurrency).
    per_replica_concurrency: int = 1
    #: Replicas registered (and cold-started) per tenant before the first arrival.
    initial_replicas: int = 1
    #: Admission bound per tenant: arrivals beyond this queue depth are dropped.
    max_queue: int = 10_000
    #: Requests queued longer than this time out (never reach a replica).
    queue_timeout_s: float = 30.0
    #: Load-balancer policy at the gateway.
    routing: RoutingPolicy = RoutingPolicy.LEAST_LOADED
    cost_model: CostModel = DEFAULT_COST_MODEL
    #: Simulate nodes in parallel: pre-measure service times in worker
    #: processes and run per-node completion phases concurrently.  Results
    #: are identical to a serial run under the same seeds.
    parallel_nodes: bool = False
    #: Keep one RequestRecord per request (exact percentiles, O(requests)
    #: memory).  False switches the engine to streaming accumulators and P²
    #: quantile sketches: summaries keep their shape, memory stays constant.
    retain_records: bool = True
    #: Per-node RSS budget in MB.  0 (the default) disables the memory
    #: model entirely: replicas carry no footprint, services never inflate,
    #: the evictor never runs, and every output stays byte-identical to a
    #: run built before the model existed.
    node_memory_mb: float = 0.0
    #: Per-replica RSS override in MB (``None`` = each tenant's runtime
    #: profile default: the container baseline for runc, the Wasm baseline
    #: otherwise).  Tenant specs can override per tenant via ``rss_mb``.
    replica_rss_mb: Optional[float] = None
    #: Fraction of the node budget above which service times inflate.
    pressure_knee: float = 0.85
    #: Inflation slope: the service multiplier reaches ``1 + slope`` when a
    #: node sits exactly at its budget.
    pressure_slope: float = 1.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise TrafficEngineError("need at least one node")
        if self.per_replica_concurrency < 1:
            raise TrafficEngineError("per_replica_concurrency must be >= 1")
        if self.initial_replicas < 0:
            raise TrafficEngineError("initial_replicas must be non-negative")
        if self.max_queue < 1:
            raise TrafficEngineError("max_queue must be >= 1")
        if self.queue_timeout_s <= 0:
            raise TrafficEngineError("queue_timeout_s must be positive")
        if self.node_memory_mb < 0:
            raise TrafficEngineError("node_memory_mb must be non-negative")
        if self.replica_rss_mb is not None and self.replica_rss_mb <= 0:
            raise TrafficEngineError("replica_rss_mb must be positive")
        if not 0.0 < self.pressure_knee < 1.0:
            raise TrafficEngineError("pressure_knee must be in (0, 1)")
        if self.pressure_slope < 0:
            raise TrafficEngineError("pressure_slope must be non-negative")

    @property
    def memory_enabled(self) -> bool:
        """Whether this run models memory at all."""
        return self.node_memory_mb > 0


@dataclass
class _Replica:
    """Engine-side view of one gateway replica.

    Only warm-up and idleness live here; in-flight counts stay in the
    gateway (the load balancer's bookkeeping is the single source of
    truth — the engine samples it through the admission hooks).
    """

    deployed: DeployedFunction
    ready_at: float
    cold_s: float = 0.0
    idle_since: float = 0.0
    #: Modelled resident-set footprint (0.0 when the memory model is off).
    rss_mb: float = 0.0
    #: Registration time, for RSS-seconds (footprint x residency) accounting.
    born_s: float = 0.0
    #: The gateway's load-balancer state for this replica — held directly so
    #: the hot path reads in-flight counts and releases without pool scans.
    gw_state: Optional[object] = None
    #: ``deployed.node_name`` cached as a plain attribute (property calls on
    #: the deployment object showed up in million-request profiles).
    node: str = ""


@dataclass
class _TenantState:
    """Everything the engine tracks for one tenant during a run."""

    spec: TenantSpec
    function_spec: FunctionSpec
    autoscaler: Autoscaler
    requests: List[Request]
    replicas: List[_Replica] = field(default_factory=list)
    by_name: Dict[str, _Replica] = field(default_factory=dict)
    records: List[RequestRecord] = field(default_factory=list)
    #: Streaming accumulators, built instead of ``records`` in sketch mode.
    stream: Optional[StreamingTrafficStats] = None
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    cold_starts: int = 0
    cold_start_seconds: float = 0.0
    # Arrival-rate sampling for predictive scaling policies.
    arrivals_since_tick: int = 0
    last_tick_s: float = 0.0
    # Memory model (all stay zero when the model is off).
    rss_mb: float = 0.0          # resolved per-replica footprint
    oom_evictions: int = 0
    rss_mb_seconds: float = 0.0  # integral of RSS over replica residency
    cpu_seconds: float = 0.0     # replica-busy seconds (hedged losers too)
    # Spec-derived names, materialized once: these were properties, but the
    # request path reads them several times per request.
    name: str = field(init=False)
    function: str = field(init=False)

    def __post_init__(self) -> None:
        self.name = self.spec.name
        self.function = self.spec.function_name


def _measure_service_time(mode: str, payload_bytes: int, cost_model: CostModel) -> float:
    """Workflow latency of one (mode, payload size): one isolated simulation.

    Module-level (and self-contained: fresh cluster, fresh ledger shards,
    fresh clock) so worker processes can run measurements concurrently for
    the parallel-nodes path; the result is deterministic either way.
    """
    setup = build_pair_setup(mode, cost_model=cost_model)
    payload = make_payload(payload_bytes / MB)
    return setup.invoker.invoke(setup.workflow, payload).total_latency_s


def _spec_for_mode(mode: str, function: str, tenant: str = "tenant-1") -> FunctionSpec:
    if mode == "runc-http":
        kind = RuntimeKind.RUNC
    elif mode == "wasmedge-http":
        kind = RuntimeKind.WASMEDGE
    else:
        kind = RuntimeKind.ROADRUNNER
    return FunctionSpec(
        name=function,
        runtime=kind,
        requires_wasi=kind is not RuntimeKind.RUNC,
        workflow="traffic",
        tenant=tenant,
    )


class MultiTenantTrafficEngine:
    """Drives several tenants' arrival streams over one shared cluster."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        config: Optional[TrafficConfig] = None,
        fairness: FairnessPolicy = FairnessPolicy.WFQ,
        starvation_guard: int = 32,
        autoscaler_factory: Optional[Callable[[], Autoscaler]] = None,
        oversubscription: float = 2.0,
        service_cache: Optional[Dict[Tuple[str, int], float]] = None,
        intra: IntraTenantOrder = IntraTenantOrder.FIFO,
        telemetry: Optional[Telemetry] = None,
        middleware: Optional[MiddlewarePipeline] = None,
    ) -> None:
        if not tenants:
            raise TrafficEngineError("need at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise TrafficEngineError("tenant names must be unique, got %s" % names)
        if "cluster" in names:
            raise TrafficEngineError(
                "tenant name 'cluster' is reserved for the cluster-wide rollup"
            )
        functions = [tenant.function_name for tenant in tenants]
        if len(set(functions)) != len(functions):
            raise TrafficEngineError("tenant functions must be unique, got %s" % functions)
        for tenant in tenants:
            if tenant.mode not in TRAFFIC_MODES:
                raise TrafficEngineError(
                    "tenant %r: unknown traffic mode %r (known: %s)"
                    % (tenant.name, tenant.mode, ", ".join(TRAFFIC_MODES))
                )
        if oversubscription < 1.0:
            raise TrafficEngineError("oversubscription must be >= 1.0")
        if starvation_guard < 1:
            raise TrafficEngineError("starvation_guard must be >= 1")
        self.tenants = list(tenants)
        self.config = config or TrafficConfig()
        self.fairness = fairness
        self.starvation_guard = starvation_guard
        self.intra = intra
        self.oversubscription = oversubscription
        self.autoscaler_factory = autoscaler_factory or (
            lambda: Autoscaler(TargetConcurrencyPolicy(1.0))
        )
        self.clock = SimClock()
        self._service_cache: Dict[Tuple[str, int], float] = (
            service_cache if service_cache is not None else {}
        )
        self.telemetry = telemetry
        #: Optional gateway middleware chain every request is threaded
        #: through (:mod:`repro.gateway.middleware`).  ``None`` — or a
        #: pipeline with no enabled stages — leaves the request path
        #: byte-identical to a run without one.
        self.middleware = middleware
        #: Per-stage middleware counters of the last run ({} without one).
        self.middleware_stats: Dict[str, Dict[str, int]] = {}
        #: Per-tenant records of the last run (sorted by request id).
        #: Empty lists in sketch mode — nothing is retained there.
        self.records: Dict[str, List[RequestRecord]] = {}
        #: OOM evictions of the last run, in firing order: (time, tenant,
        #: replica name).  Empty unless the memory model ran.
        self.evictions: List[Tuple[float, str, str]] = []
        #: Latency-waterfall rows of the last run (per tenant + cluster).
        self.waterfall: List[WaterfallRow] = []
        self._cluster_stream: Optional[StreamingTrafficStats] = None
        #: Memoized (mode, payload) key sets per tenant spec, so repeated
        #: runs of one engine skip re-scanning every request to learn which
        #: service times to pre-measure.  Keyed by spec identity (the stored
        #: spec reference keeps the id stable); sound because a spec's
        #: seeded generation always yields the same payload set.
        self._tenant_keys_cache: Dict[int, Tuple[TenantSpec, frozenset]] = {}
        #: How many key-set derivations actually ran (tests pin the memo).
        self.prefill_key_derivations = 0

    # -- public API -----------------------------------------------------------------

    def run(self) -> MultiTenantSummary:
        """Admit, queue, execute and account every tenant's stream."""
        states = [
            _TenantState(
                spec=tenant,
                function_spec=_spec_for_mode(tenant.mode, tenant.function_name, tenant.name),
                autoscaler=self.autoscaler_factory(),
                requests=tenant.generate(),
            )
            for tenant in self.tenants
        ]
        total_requests = sum(len(state.requests) for state in states)
        if total_requests == 0:
            raise TrafficEngineError("cannot run with zero requests across all tenants")
        self.records = {}
        self.waterfall = []
        retain = self.config.retain_records
        if not retain:
            from repro.obs.streaming import StreamingTrafficStats

            for state in states:
                state.stream = StreamingTrafficStats(
                    declared_classes=state.spec.class_names
                )
            if len(states) == 1 and not states[0].spec.class_names:
                # Single classless tenant: the cluster rollup would observe
                # exactly the tenant's records into an identical accumulator,
                # so share one object and halve the sketch updates per
                # request.  finish() skips the second observe on identity.
                self._cluster_stream = states[0].stream
            else:
                self._cluster_stream = StreamingTrafficStats()
        telemetry = self.telemetry
        if self.config.parallel_nodes:
            self._prefill_service_cache(states)

        # The shared serving cluster: every tenant's pool lives behind one
        # gateway, every charge lands on one ledger timestamped on the
        # engine's simulated clock, and every replica competes for the same
        # node cores.
        self.clock.reset()
        cluster = Cluster(
            cost_model=self.config.cost_model,
            ledger=CostLedger(clock=self.clock, name="traffic"),
        )
        for index in range(self.config.nodes):
            cluster.add_node("traffic-%d" % index)
        orchestrator = Orchestrator(cluster)
        # The memory model: None unless a node budget was configured, and
        # every use below is guarded on that — a memory-free run touches
        # none of it and stays byte-identical to the pre-model engine.
        self.evictions = []
        memory = None
        if self.config.memory_enabled:
            from repro.traffic.memory import NodeMemoryModel, default_replica_rss_mb

            memory = NodeMemoryModel(
                budget_mb=self.config.node_memory_mb,
                knee=self.config.pressure_knee,
                slope=self.config.pressure_slope,
                ledger=cluster.ledger,
            )
            for state in states:
                state.rss_mb = (
                    state.spec.rss_mb
                    or self.config.replica_rss_mb
                    or default_replica_rss_mb(state.spec.mode, self.config.cost_model)
                )
        pipeline = self.middleware
        gateway = IngressGateway(
            orchestrator,
            policy=self.config.routing,
            fairness=self.fairness,
            starvation_guard=self.starvation_guard,
            intra=self.intra,
            pipeline=pipeline,
        )
        for state in states:
            gateway.queue.register_tenant(state.name, state.spec.weight)

        loop = PartitionedEventLoop()
        by_tenant = {state.name: state for state in states}
        #: In-pipeline requests: (tenant, request_id) -> RequestContext.
        #: Parked requests (coalesced followers) live only here and in their
        #: stage until the leader's completion fans them back out.
        contexts: Dict[Tuple[str, int], "RequestContext"] = {}
        # Cores bound execution; replica *slots* may oversubscribe them.
        # With oversubscription 1.0 pools partition the cores and queueing
        # order is moot; above 1.0 pools overlap on cores and the fair
        # queue decides who gets a freed core — the contended regime
        # noisy-neighbour scenarios study.
        capacity = sum(cluster.node(name).cores for name in cluster.nodes)
        slots = max(capacity, int(capacity * self.oversubscription))
        arbiter = CapacityArbiter(slots, {state.name: state.spec.weight for state in states})
        remaining = total_requests
        last_event_s = 0.0
        # Hot-path locals: every name hoisted here saves an attribute chase
        # per request in the million-request regime.
        clock = self.clock
        queue = gateway.queue
        per_replica_concurrency = self.config.per_replica_concurrency
        parallel_nodes = self.config.parallel_nodes
        max_queue = self.config.max_queue
        queue_timeout_s = self.config.queue_timeout_s
        service_cache = self._service_cache
        cluster_stream = self._cluster_stream
        cores = {name: cluster.node(name).cores for name in cluster.nodes}
        #: Busy requests per node across all tenants, maintained incrementally
        #: (+1 at every replica selection, -1 at every release) instead of
        #: being rebuilt from gateway pool scans on every dispatch pass.
        node_busy = {name: 0 for name in cluster.nodes}

        def note(now: float) -> None:
            nonlocal last_event_s
            if now > last_event_s:
                last_event_s = now
            clock.advance_to(loop.now)

        def finish(state: _TenantState, record: RequestRecord, node: str = "") -> None:
            """One request reached a terminal outcome: account it exactly once.

            The single funnel for all four outcome paths — retained as a
            record or folded into the streaming accumulators, counted down,
            and fanned out to the telemetry sinks.  Always called from a
            serialized context (the join stage for completions; arrivals,
            expiries and sheds are never node-partitioned), so sketch
            updates and telemetry stay deterministic under parallel nodes.
            """
            nonlocal remaining
            if retain:
                state.records.append(record)
            else:
                state.stream.observe(record)
                if cluster_stream is not state.stream:
                    cluster_stream.observe(record)
            remaining -= 1
            if telemetry is not None:
                telemetry.on_request(state.name, record, node)
                if telemetry.progress is not None:
                    telemetry.on_progress(
                        loop.now,
                        total_requests - remaining,
                        sum(len(s.replicas) for s in states),
                    )

        def resolve(state: _TenantState, record: RequestRecord, node: str = "") -> None:
            """Account one terminal outcome, then unwind its middleware.

            The pipeline's completion hooks run in reverse admission order
            (cache fills, coalesce fan-out); any follow-on records they
            release — parked duplicates resolved by this outcome — recurse
            through the same funnel, so each follower is accounted exactly
            like a request of its own.
            """
            finish(state, record, node)
            if pipeline is None:
                return
            ctx = contexts.pop((state.name, record.request_id), None)
            if ctx is None:
                return
            for follow_ctx, follow_record in pipeline.complete(ctx, record, loop.now):
                if follow_record.completion_s is not None:
                    note(follow_record.completion_s)
                resolve(by_tenant[follow_ctx.tenant], follow_record, node)

        def pool_sizes() -> Dict[str, int]:
            return {state.name: len(state.replicas) for state in states}

        def demand_snapshot() -> Dict[str, int]:
            """Replicas each tenant's load wants right now (queued + in flight).

            The arbiter reserves unmet guarantees only up to this demand, so
            idle tenants lend their share instead of stranding slots.
            """
            return {
                state.name: gateway.queue.depth(state.name)
                + (gateway.total_in_flight(state.function) if state.replicas else 0)
                for state in states
            }

        def warm_dispatch() -> None:
            """A replica finished warming: queued work may now be servable."""
            dispatch(loop.now)

        def add_replicas(state: _TenantState, count: int, now: float) -> None:
            """Register ``count`` replicas, each paying its modelled cold start.

            Replicas never share a VM here: after a scale-to-zero the next
            scale-up must pay the full cold start again, so a cached warm VM
            would flatter whichever runtime got to keep it.
            """
            cold_before = state.cold_start_seconds
            for _ in range(count):
                before = cluster.ledger.seconds(CostCategory.COLD_START)
                deployed = gateway.register(state.function_spec, replicas=1, charge_cold_start=True)[0]
                cold = cluster.ledger.seconds(CostCategory.COLD_START) - before
                state.cold_starts += 1
                state.cold_start_seconds += cold
                replica = _Replica(
                    deployed=deployed,
                    ready_at=now + cold,
                    cold_s=cold,
                    idle_since=now + cold,
                    rss_mb=state.rss_mb,
                    born_s=now,
                    node=deployed.node_name,
                )
                # Bind the gateway's load-balancer state both ways: the
                # dispatch loop reads in-flight counts off the replica and
                # maps selection results back without any name lookups.
                gw_state = gateway.pool_states(state.function)[-1]
                gw_state.handle = replica
                replica.gw_state = gw_state
                state.replicas.append(replica)
                state.by_name[deployed.name] = replica
                if memory is not None:
                    memory.allocate(deployed.node_name, state.rss_mb)
                loop.schedule_at(now + cold, warm_dispatch, label="warm")
            if telemetry is not None and count > 0:
                telemetry.on_scale(
                    state.name,
                    count,
                    len(state.replicas),
                    now,
                    cold_starts=count,
                    cold_seconds=state.cold_start_seconds - cold_before,
                )
            if memory is not None and count > 0:
                evict_over_budget(now)

        def drop_replica(state: _TenantState, replica: _Replica, now: float) -> None:
            """Deregister one warm replica (reclaim and eviction share this)."""
            gateway.remove_replica(state.function, replica.deployed)
            state.replicas.remove(replica)
            del state.by_name[replica.deployed.name]
            if memory is not None:
                state.rss_mb_seconds += replica.rss_mb * max(0.0, now - replica.born_s)
                memory.free(replica.deployed.node_name, replica.rss_mb)

        def evict_over_budget(now: float) -> None:
            """Kill the coldest idle replica on every node over its budget.

            Runs only from serialized stages (scale-ups are never
            node-partitioned), so the eviction order is deterministic: per
            over-budget node, the idle warm replica with the smallest
            ``idle_since`` goes first, ties broken by tenant registration
            order and then replica name.  A node whose budget excess is
            pinned by busy replicas stays over budget — nothing to kill —
            and pays through service-time inflation instead.  Each eviction
            is a forced future cold start: the tenant's next scale-up pays
            the full warm-up again.
            """
            while True:
                evicted = False
                for node in sorted(node for node in cluster.nodes if memory.over_budget(node)):
                    best = None
                    for index, state in enumerate(states):
                        for replica in state.replicas:
                            if replica.node != node:
                                continue
                            if replica.gw_state.in_flight != 0 or replica.ready_at > now:
                                continue
                            key = (replica.idle_since, index, replica.deployed.name)
                            if best is None or key < best[0]:
                                best = (key, state, replica)
                    if best is None:
                        continue
                    _, victim_state, victim = best
                    drop_replica(victim_state, victim, now)
                    victim_state.oom_evictions += 1
                    self.evictions.append((now, victim_state.name, victim.deployed.name))
                    if telemetry is not None:
                        telemetry.on_oom_evict(
                            victim_state.name, node, victim.deployed.name, now
                        )
                    evicted = True
                if not evicted:
                    return

        def finish_completion(
            state: _TenantState,
            record: RequestRecord,
            replica: _Replica,
            loser: Optional[_Replica],
            completion: float,
        ) -> None:
            # Cross-node stage, serialized in exact time order: gateway
            # bookkeeping and re-dispatch.
            gateway.release_state(state.function, replica.gw_state)
            node_busy[replica.node] -= 1
            replica.idle_since = completion
            if memory is not None:
                # Replica-busy CPU: the loser of a hedge burned the same
                # wall interval before its cancellation, so it pays too.
                state.cpu_seconds += record.service_s
            if loser is not None:
                # The hedge's losing attempt is cancelled now: its replica
                # frees the moment the winner answers the client.
                gateway.release_state(state.function, loser.gw_state)
                node_busy[loser.node] -= 1
                loser.idle_since = completion
                if memory is not None:
                    state.cpu_seconds += record.service_s
            resolve(state, record, node=replica.node)
            dispatch(loop.now)

        def complete_event(
            state: _TenantState,
            request: Request,
            replica: _Replica,
            loser: Optional[_Replica],
            dispatched: float,
            completion: float,
            cold_wait: float,
        ) -> None:
            # Serial completion path: one shared function fed per-event
            # ``args`` — no closure pair allocated per request.
            record = RequestRecord(
                request_id=request.request_id,
                function=state.function,
                outcome=RequestOutcome.COMPLETED,
                arrival_s=request.arrival_s,
                dispatch_s=dispatched,
                completion_s=completion,
                replica=replica.deployed.name,
                cold_start_wait_s=cold_wait,
                request_class=request.request_class,
                deadline_s=request.deadline_s,
            )
            finish_completion(state, record, replica, loser, completion)

        def dispatch(now: float) -> None:
            """Move queued requests onto available replicas.

            The gateway's fair queue decides which tenant to try first; a
            tenant whose pool has no eligible replica is passed over (work
            conservation) without losing its place in the fair order.  A
            head request with a *hard* deadline that can no longer be met
            is shed here — admission control refuses to burn a replica on
            output nobody can use.
            """
            while True:
                served = False
                for tenant_name in queue.dispatch_order():
                    state = by_tenant[tenant_name]
                    candidates = [
                        replica
                        for replica in state.replicas
                        if replica.ready_at <= now
                        and replica.gw_state.in_flight < per_replica_concurrency
                        and node_busy[replica.node] < cores[replica.node]
                    ]
                    if not candidates:
                        continue
                    request = queue.peek(tenant_name)
                    key = (state.spec.mode, request.payload_bytes)
                    service = service_cache.get(key)
                    if service is None:
                        service = self._service_time(key[0], key[1])
                    if (
                        request.hard
                        and request.deadline_s is not None
                        and now + service > request.deadline_s
                    ):
                        queue.shed_head(tenant_name)
                        resolve(
                            state,
                            RequestRecord(
                                request_id=request.request_id,
                                function=state.function,
                                outcome=RequestOutcome.SHED,
                                arrival_s=request.arrival_s,
                                request_class=request.request_class,
                                deadline_s=request.deadline_s,
                            ),
                        )
                        served = True
                        break  # re-evaluate: the tenant's next head may serve
                    queue.pop(tenant_name)
                    # Give the pipeline's dispatch hooks a say: the hedge
                    # stage applies its seeded straggler jitter and decides
                    # whether a backup attempt races on a spare replica.
                    plan = None
                    if pipeline is not None:
                        ctx = contexts.get((tenant_name, request.request_id))
                        if ctx is not None:
                            plan = pipeline.plan_dispatch(
                                ctx, now, service, spare_replica=len(candidates) > 1
                            )
                            service = plan.service_s
                    loser: Optional[_Replica] = None
                    if plan is not None and plan.hedged and len(candidates) > 1:
                        primary_gw = gateway.select_replica(
                            state.function,
                            [replica.gw_state for replica in candidates],
                        )
                        primary = primary_gw.handle
                        hedge_gw = gateway.select_replica(
                            state.function,
                            [
                                replica.gw_state
                                for replica in candidates
                                if replica.gw_state is not primary_gw
                            ],
                        )
                        hedge = hedge_gw.handle
                        node_busy[primary.node] += 1
                        node_busy[hedge.node] += 1
                        primary_done, hedge_offset = plan.completion_offsets()
                        if memory is not None:
                            # Each attempt slows by its own node's pressure.
                            primary_done *= memory.inflation(primary.node)
                            hedge_offset *= memory.inflation(hedge.node)
                        # First finisher wins; the loser is cancelled (and
                        # its replica released) at the winner's completion.
                        if now + hedge_offset < now + primary_done:
                            replica, loser = hedge, primary
                            completion = now + hedge_offset
                        else:
                            replica, loser = primary, hedge
                            completion = now + primary_done
                    else:
                        chosen = gateway.select_replica(
                            state.function,
                            [replica.gw_state for replica in candidates],
                        )
                        replica = chosen.handle
                        node_busy[replica.node] += 1
                        if memory is not None:
                            # Memory pressure on the chosen node slows the
                            # service; the EWMA below sees the inflated time,
                            # so scaling decisions feel the pressure too.
                            service = service * memory.inflation(replica.node)
                        completion = now + service
                    # Feed the measured service time back into the queue's
                    # per-tenant EWMA: later enqueues snapshot it as their
                    # wfq-cost tag advance, and the autoscaler reads it as
                    # the Little's-law service-time estimate.
                    queue.record_service_cost(tenant_name, service)
                    # The part of this request's wait actually spent watching
                    # its replica cold-start: the overlap of [arrival,
                    # dispatch] with the warm-up window, not the whole delay.
                    cold_wait = max(0.0, min(replica.cold_s, replica.ready_at - request.arrival_s))
                    note(completion)

                    if parallel_nodes:
                        # Parallel nodes need the action/join split: the
                        # record is built node-locally (concurrently), the
                        # gateway bookkeeping joins in global time order.
                        # Both paths produce the identical record.
                        def complete(
                            state: _TenantState = state,
                            request: Request = request,
                            replica: _Replica = replica,
                            loser: Optional[_Replica] = loser,
                            dispatched: float = now,
                            completion: float = completion,
                            cold_wait: float = cold_wait,
                        ):
                            # Node-local stage: build the completion record
                            # from values captured at dispatch, charging
                            # (and touching) nothing shared.
                            record = RequestRecord(
                                request_id=request.request_id,
                                function=state.function,
                                outcome=RequestOutcome.COMPLETED,
                                arrival_s=request.arrival_s,
                                dispatch_s=dispatched,
                                completion_s=completion,
                                replica=replica.deployed.name,
                                cold_start_wait_s=cold_wait,
                                request_class=request.request_class,
                                deadline_s=request.deadline_s,
                            )

                            def join() -> None:
                                finish_completion(
                                    state, record, replica, loser, completion
                                )

                            return join

                        loop.schedule_at(
                            completion,
                            complete,
                            label="complete",
                            partition=replica.node,
                        )
                    else:
                        loop.schedule_at(
                            completion,
                            complete_event,
                            label="complete",
                            args=(state, request, replica, loser, now, completion, cold_wait),
                        )
                    served = True
                    break  # re-evaluate fair order after every dispatch
                if not served:
                    return

        def arrive(state: _TenantState, request: Request) -> None:
            note(request.arrival_s)
            state.arrivals_since_tick += 1
            priority = request.priority
            deadline = request.deadline_s
            if pipeline is not None:
                from repro.gateway.middleware import AdmitAction

                ctx = pipeline.context(state.name, request)
                decision = pipeline.admit(ctx, request.arrival_s)
                contexts[(state.name, request.request_id)] = ctx
                if decision.action is AdmitAction.SHORT_CIRCUIT:
                    # Terminal at the gateway: a cache hit (served, with a
                    # completion instant) or a refusal (rate limit / auth).
                    completion = decision.completion_s
                    if completion is not None:
                        note(completion)
                    resolve(
                        state,
                        RequestRecord(
                            request_id=request.request_id,
                            function=state.function,
                            outcome=decision.outcome,
                            arrival_s=request.arrival_s,
                            completion_s=completion,
                            request_class=request.request_class,
                            deadline_s=request.deadline_s,
                        ),
                    )
                    return
                if decision.action is AdmitAction.PARK:
                    # Parked behind an identical in-flight request: no queue
                    # slot, no timeout event — the leader's completion (or
                    # failure) resolves it through the pipeline unwind.
                    return
                # Transformed requests dispatch under their overridden keys.
                priority = ctx.data.get("priority", priority)
                deadline = ctx.data.get("deadline_s", deadline)
            admitted = queue.enqueue(
                state.name,
                request.request_id,
                request,
                limit=max_queue,
                priority=priority,
                deadline=deadline,
            )
            if not admitted:
                resolve(
                    state,
                    RequestRecord(
                        request_id=request.request_id,
                        function=state.function,
                        outcome=RequestOutcome.DROPPED,
                        arrival_s=request.arrival_s,
                        request_class=request.request_class,
                        deadline_s=request.deadline_s,
                    ),
                )
                return
            # The timeout event is only materialized if the request is still
            # waiting after the dispatch pass — most requests dispatch
            # immediately and never need one.  Its tie-break slot is
            # reserved *before* dispatching, so when it is scheduled it
            # sorts exactly where an eagerly scheduled timeout would have.
            timeout_order = loop.reserve_orders(1)
            dispatch(loop.now)
            if queue.is_queued(state.name, request.request_id):
                loop.schedule_at(
                    request.arrival_s + queue_timeout_s,
                    expire,
                    label="timeout",
                    args=(state, request),
                    order=timeout_order,
                )

        def expire(state: _TenantState, request: Request) -> None:
            """Time out a request still waiting when its patience ran out."""
            if not queue.cancel(state.name, request.request_id):
                return
            resolve(
                state,
                RequestRecord(
                    request_id=request.request_id,
                    function=state.function,
                    outcome=RequestOutcome.TIMED_OUT,
                    arrival_s=request.arrival_s,
                    request_class=request.request_class,
                    deadline_s=request.deadline_s,
                ),
            )
            note(loop.now)

        def control_tick(state: _TenantState) -> None:
            if remaining <= 0:
                return
            now = loop.now
            interval = now - state.last_tick_s
            rate = state.arrivals_since_tick / interval if interval > 0 else 0.0
            state.arrivals_since_tick = 0
            state.last_tick_s = now
            estimate = gateway.queue.cost_estimate(state.name)
            sample = LoadSample(
                time_s=now,
                in_flight=gateway.total_in_flight(state.function) if state.replicas else 0,
                queued=gateway.queue.depth(state.name),
                replicas=len(state.replicas),
                arrival_rate_rps=rate,
                service_time_s=estimate if estimate is not None else 0.0,
            )
            decision = state.autoscaler.evaluate(sample)
            if telemetry is not None:
                forecast = getattr(state.autoscaler.policy, "forecast_rps", None)
                telemetry.on_tick(
                    state.name, sample, forecast() if callable(forecast) else None
                )
                if telemetry.progress is not None:
                    telemetry.on_progress(
                        now,
                        total_requests - remaining,
                        sum(len(s.replicas) for s in states),
                    )
            if decision.scale_up:
                add_replicas(
                    state,
                    arbiter.grant(
                        state.name, decision.scale_up, pool_sizes(), demand_snapshot()
                    ),
                    now,
                )
            elif decision.scale_down:
                reclaim(state, decision.scale_down, now)
            state.timeline.append((now, len(state.replicas)))
            dispatch(now)
            loop.schedule(
                state.autoscaler.control_interval_s,
                lambda: control_tick(state),
                label="tick:%s" % state.name,
            )

        def reclaim(state: _TenantState, count: int, now: float) -> None:
            """Remove up to ``count`` warm replicas idle past their keep-alive.

            With the memory model on, each replica's keep-alive window is
            discounted by its node's memory pressure — holding a warm pool
            costs RSS-seconds, and that is only worth paying while the
            node's memory is cheap.
            """
            # ``nsmallest(count, ...)`` is documented equivalent to
            # ``sorted(...)[:count]`` (stable for ties), so the reclaim
            # order is unchanged — it just stops sorting the whole pool to
            # drop a couple of replicas.
            removed = heapq.nsmallest(
                count,
                (
                    replica
                    for replica in state.replicas
                    if replica.gw_state.in_flight == 0
                    and replica.ready_at <= now
                    and state.autoscaler.reclaimable(
                        now,
                        replica.idle_since,
                        memory_pressure=(
                            memory.pressure(replica.node)
                            if memory is not None
                            else 0.0
                        ),
                    )
                ),
                key=lambda replica: replica.idle_since,
            )
            for replica in removed:
                drop_replica(state, replica, now)
            if telemetry is not None and removed:
                telemetry.on_scale(state.name, -len(removed), len(state.replicas), now)

        # Bootstrap: initial pools (arbitrated like autoscaled growth),
        # arrival events in deterministic order, one control loop per tenant.
        if telemetry is not None:
            last_arrival_hint = max(
                (request.arrival_s for state in states for request in state.requests),
                default=0.0,
            )
            telemetry.on_run_start(total_requests, duration_hint_s=last_arrival_hint)
        for state in states:
            if self.config.initial_replicas:
                add_replicas(
                    state,
                    arbiter.grant(state.name, self.config.initial_replicas, pool_sizes()),
                    0.0,
                )
            state.timeline.append((0.0, len(state.replicas)))
        # Arrivals are *not* pre-scheduled: a million heap entries up front
        # would dominate the run's memory and heap-sift work.  Instead the
        # per-tenant streams — each already in (arrival_s, request_id) order —
        # are lazily merged, one order slot per arrival is reserved so
        # tie-breaking matches the old pre-scheduled order exactly, and each
        # arrival event chains the next one from the merged iterator.
        def tenant_entries(
            index: int, state: _TenantState, requests: Sequence[Request]
        ) -> "Iterator[Tuple[float, int, int, _TenantState, Request]]":
            for request in requests:
                yield (request.arrival_s, index, request.request_id, state, request)

        streams = []
        for index, state in enumerate(states):
            requests = state.requests
            if any(
                (left.arrival_s, left.request_id) > (right.arrival_s, right.request_id)
                for left, right in zip(requests, requests[1:])
            ):
                # Explicit request lists may arrive unordered; generated
                # streams never do and skip the copy.
                requests = sorted(
                    requests, key=lambda request: (request.arrival_s, request.request_id)
                )
            streams.append(tenant_entries(index, state, requests))
        # ``heapq.merge`` with already-sorted streams reproduces the old
        # ``sorted(all_entries, key=entry[:3])`` order: keys differ across
        # tenants (the index is part of the key) and within a tenant the
        # stream order is preserved for ties, exactly like a stable sort.
        arrival_iter = heapq.merge(*streams, key=lambda entry: entry[:3])
        arrival_base = loop.reserve_orders(total_requests)
        arrival_slot = 0

        def advance_arrivals() -> None:
            nonlocal arrival_slot
            entry = next(arrival_iter, None)
            if entry is None:
                return
            loop.schedule_at(
                entry[0],
                arrival_event,
                label="arrive",
                args=(entry[3], entry[4]),
                order=arrival_base + arrival_slot,
            )
            arrival_slot += 1

        def arrival_event(state: _TenantState, request: Request) -> None:
            arrive(state, request)
            advance_arrivals()

        advance_arrivals()
        for state in states:
            loop.schedule(
                state.autoscaler.control_interval_s,
                lambda state=state: control_tick(state),
                label="tick:%s" % state.name,
            )
        if self.config.parallel_nodes:
            loop.run_parallel()
        else:
            loop.run()

        if remaining != 0:
            raise TrafficEngineError(
                "engine finished with %d unresolved requests" % remaining
            )
        # The routing fast path accumulated its per-request ingress
        # overheads instead of charging each one; settle them now, before
        # any ledger rollup is read.
        gateway.flush_deferred_ingress()
        last_arrival = max(
            (request.arrival_s for state in states for request in state.requests),
            default=0.0,
        )
        duration = max(last_event_s, last_arrival)
        if memory is not None:
            # Survivors' RSS-seconds: replicas still warm at the end of the
            # run occupied their footprint until the run's last event.
            for state in states:
                for replica in state.replicas:
                    state.rss_mb_seconds += replica.rss_mb * max(
                        0.0, duration - replica.born_s
                    )
        self.middleware_stats = pipeline.stats() if pipeline is not None else {}
        if telemetry is not None:
            if self.middleware_stats:
                telemetry.observe_middleware(self.middleware_stats)
            telemetry.observe_queue_stats(gateway.queue.all_stats())
            telemetry.observe_node_usage(self._node_usage(gateway))
            if memory is not None:
                telemetry.observe_memory(
                    {
                        state.name: (
                            state.oom_evictions,
                            state.rss_mb_seconds,
                            state.cpu_seconds,
                        )
                        for state in states
                    }
                )
            telemetry.on_run_end(
                duration,
                total_requests,
                sum(len(state.replicas) for state in states),
            )
        return self._summarize(states, duration, gateway)

    # -- summaries -------------------------------------------------------------------

    def _summarize(
        self,
        states: Sequence[_TenantState],
        duration: float,
        gateway: IngressGateway,
    ) -> MultiTenantSummary:
        from repro.obs.spans import waterfall_from_records

        tenants: Dict[str, TrafficSummary] = {}
        all_records: List[RequestRecord] = []
        declared_union: List[str] = []
        waterfall: List[WaterfallRow] = []
        retain = self.config.retain_records
        for state in states:
            declared_union.extend(state.spec.class_names)
            if retain:
                state.records.sort(key=lambda record: record.request_id)
                self.records[state.name] = state.records
                all_records.extend(state.records)
                tenants[state.name] = summarize(
                    mode=state.spec.mode,
                    pattern=state.spec.pattern_name,
                    duration_s=duration,
                    records=state.records,
                    cold_starts=state.cold_starts,
                    cold_start_seconds=state.cold_start_seconds,
                    replica_timeline=state.timeline,
                    declared_classes=state.spec.class_names,
                    oom_evictions=state.oom_evictions,
                    rss_mb_seconds=state.rss_mb_seconds,
                    cpu_seconds=state.cpu_seconds,
                )
                waterfall.extend(waterfall_from_records(state.name, state.records))
            else:
                self.records[state.name] = []
                tenants[state.name] = state.stream.summary(
                    mode=state.spec.mode,
                    pattern=state.spec.pattern_name,
                    duration_s=duration,
                    cold_starts=state.cold_starts,
                    cold_start_seconds=state.cold_start_seconds,
                    replica_timeline=state.timeline,
                    declared_classes=state.spec.class_names,
                    oom_evictions=state.oom_evictions,
                    rss_mb_seconds=state.rss_mb_seconds,
                    cpu_seconds=state.cpu_seconds,
                )
                waterfall.extend(state.stream.waterfall(state.name))
        if retain:
            cluster = summarize(
                mode="cluster",
                pattern="multi-tenant",
                duration_s=duration,
                records=all_records,
                cold_starts=sum(state.cold_starts for state in states),
                cold_start_seconds=sum(state.cold_start_seconds for state in states),
                replica_timeline=_merge_timelines([state.timeline for state in states]),
                declared_classes=sorted(set(declared_union)),
                oom_evictions=sum(state.oom_evictions for state in states),
                rss_mb_seconds=sum(state.rss_mb_seconds for state in states),
                cpu_seconds=sum(state.cpu_seconds for state in states),
            )
            if len(states) > 1:
                waterfall.extend(waterfall_from_records("cluster", all_records))
        else:
            cluster = self._cluster_stream.summary(
                mode="cluster",
                pattern="multi-tenant",
                duration_s=duration,
                cold_starts=sum(state.cold_starts for state in states),
                cold_start_seconds=sum(state.cold_start_seconds for state in states),
                replica_timeline=_merge_timelines([state.timeline for state in states]),
                declared_classes=sorted(set(declared_union)),
                oom_evictions=sum(state.oom_evictions for state in states),
                rss_mb_seconds=sum(state.rss_mb_seconds for state in states),
                cpu_seconds=sum(state.cpu_seconds for state in states),
            )
            if len(states) > 1:
                waterfall.extend(self._cluster_stream.waterfall("cluster"))
        self.waterfall = waterfall
        return MultiTenantSummary(
            fairness=self.fairness.value,
            weights=gateway.queue.weights(),
            tenants=tenants,
            cluster=cluster,
            queue_stats=gateway.queue.all_stats(),
            nodes=self._node_usage(gateway),
            middleware=self.middleware_stats,
        )

    def _node_usage(self, gateway: IngressGateway) -> Dict[str, NodeUsage]:
        """Per-node cost rollups read off the cluster ledger's shards."""
        ledger = gateway.orchestrator.cluster.ledger
        shards = [ledger.cluster_shard] + list(ledger.shards().values())
        return {
            shard.node_name: NodeUsage(
                node=shard.node_name,
                charges=len(shard),
                total_seconds=shard.total_seconds(),
                cpu_seconds=shard.cpu_seconds(),
                peak_memory_mb=shard.peak_memory_bytes() / MB,
            )
            for shard in shards
        }

    # -- service times ---------------------------------------------------------------

    def _service_time(self, mode: str, payload_bytes: int) -> float:
        """Workflow latency for one (mode, payload size), measured once and cached.

        The measurement invokes the canonical two-function chain through a
        fresh isolated environment for the tenant's mode — the same path
        every figure in the reproduction uses.
        """
        key = (mode, payload_bytes)
        cached = self._service_cache.get(key)
        if cached is None:
            cached = _measure_service_time(mode, payload_bytes, self.config.cost_model)
            self._service_cache[key] = cached
        return cached

    def _prefill_service_cache(self, states: Sequence[_TenantState]) -> None:
        """Measure every (mode, payload) the run will need, in parallel.

        Each measurement is an isolated simulation (own cluster, own ledger
        shards, own clock), so worker processes compute them concurrently
        and deterministically.  The win scales with the number of distinct
        (mode, payload) pairs the tenants exercise; runs dominated by the
        event loop itself parallelize at the whole-run level instead
        (:func:`run_comparison` / ``compare_scaling_policies``).
        """
        wanted: set = set()
        for state in states:
            cached = self._tenant_keys_cache.get(id(state.spec))
            if cached is not None and cached[0] is state.spec:
                wanted |= cached[1]
                continue
            keys = frozenset(
                (state.spec.mode, request.payload_bytes) for request in state.requests
            )
            self._tenant_keys_cache[id(state.spec)] = (state.spec, keys)
            self.prefill_key_derivations += 1
            wanted |= keys
        needed = sorted(wanted - set(self._service_cache))
        if not needed:
            return
        results = parallel_map(
            _measure_service_time,
            [(mode, payload_bytes, self.config.cost_model) for mode, payload_bytes in needed],
        )
        for key, value in zip(needed, results):
            self._service_cache[key] = value


def _merge_timelines(
    timelines: Sequence[Sequence[Tuple[float, int]]],
) -> List[Tuple[float, int]]:
    """Sum per-tenant (time, pool size) step functions into a cluster total."""
    # Each tenant's timeline is appended in event order (non-decreasing
    # time), so an N-way merge replaces the global sort.  The per-stream
    # sort is near-free on the almost-sorted input; it only reorders
    # same-instant entries by count, reproducing the full-tuple order the
    # replaced ``sorted()`` imposed (cross-stream ties already fall to the
    # tenant index inside each entry).
    events = heapq.merge(
        *(
            sorted((time_s, index, count) for time_s, count in timeline)
            for index, timeline in enumerate(timelines)
        )
    )
    current = [0] * len(timelines)
    merged: List[Tuple[float, int]] = []
    for time_s, index, count in events:
        current[index] = count
        total = sum(current)
        if merged and merged[-1][0] == time_s:
            merged[-1] = (time_s, total)
        else:
            merged.append((time_s, total))
    return merged


def _ordered_requests(requests: Sequence[Request]) -> Tuple[Request, ...]:
    """The stream in canonical (arrival, id) order, without a needless copy.

    ``run_comparison`` orders the stream once and hands the same tuple to
    every compared engine; each engine re-checks instead of re-sorting, so
    an already-ordered stream (the common case — generators emit arrivals
    in order) passes through untouched.
    """
    if all(
        (left.arrival_s, left.request_id) <= (right.arrival_s, right.request_id)
        for left, right in zip(requests, requests[1:])
    ):
        return requests if isinstance(requests, tuple) else tuple(requests)
    return tuple(sorted(requests, key=lambda r: (r.arrival_s, r.request_id)))


class TrafficEngine:
    """Drives one arrival stream against one runtime mode.

    The single-tenant special case of :class:`MultiTenantTrafficEngine`:
    one function, one pool, a FIFO admission queue — exactly the regime the
    sustained-load benchmarks compare runtimes under.
    """

    def __init__(
        self,
        mode: str,
        autoscaler: Optional[Autoscaler] = None,
        config: Optional[TrafficConfig] = None,
        intra: IntraTenantOrder = IntraTenantOrder.FIFO,
        telemetry: Optional[Telemetry] = None,
        middleware: Optional[MiddlewarePipeline] = None,
    ) -> None:
        if mode not in TRAFFIC_MODES:
            raise TrafficEngineError(
                "unknown traffic mode %r (known: %s)" % (mode, ", ".join(TRAFFIC_MODES))
            )
        self.mode = mode
        self.config = config or TrafficConfig()
        self.autoscaler = autoscaler or Autoscaler(TargetConcurrencyPolicy(1.0))
        self.intra = intra
        self.telemetry = telemetry
        self.middleware = middleware
        self.middleware_stats: Dict[str, Dict[str, int]] = {}
        self.records: List[RequestRecord] = []
        self.waterfall: List[WaterfallRow] = []
        self.evictions: List[Tuple[float, str, str]] = []
        self.clock = SimClock()
        self._service_cache: Dict[Tuple[str, int], float] = {}

    def run(self, requests: Sequence[Request], pattern: str = "trace") -> TrafficSummary:
        """Admit, queue, execute and account every request in the stream."""
        if not requests:
            raise TrafficEngineError("cannot run an empty request stream")
        functions = {request.function for request in requests}
        if len(functions) != 1:
            raise TrafficEngineError(
                "the engine serves one function per run, got %s" % sorted(functions)
            )
        function = requests[0].function
        ordered = _ordered_requests(requests)
        # Internal tenant label (the old engine's spec tenant): the caller's
        # function name stays free of the multi-tenant name rules.
        tenant = TenantSpec(
            name="tenant-1",
            mode=self.mode,
            weight=1,
            requests=ordered,
            function=function,
            pattern=pattern,
        )
        engine = MultiTenantTrafficEngine(
            [tenant],
            config=self.config,
            fairness=FairnessPolicy.FIFO,
            autoscaler_factory=lambda: self.autoscaler,
            oversubscription=1.0,  # replicas beyond the cores could never serve
            service_cache=self._service_cache,
            intra=self.intra,
            telemetry=self.telemetry,
            middleware=self.middleware,
        )
        engine.clock = self.clock  # one simulated timeline across runs
        result = engine.run()
        self.middleware_stats = engine.middleware_stats
        self.records = engine.records["tenant-1"]
        self.evictions = engine.evictions
        # Relabel the internal tenant's waterfall rows with the mode name.
        self.waterfall = [
            replace(row, label=self.mode)
            for row in engine.waterfall
            if row.label == "tenant-1"
        ]
        return result.tenants["tenant-1"]


def _run_single_mode(
    mode: str,
    requests: Tuple[Request, ...],
    autoscaler: Optional[Autoscaler],
    config: Optional[TrafficConfig],
    pattern: str,
    intra: IntraTenantOrder,
    telemetry: Optional[Telemetry] = None,
    middleware: Optional[MiddlewarePipeline] = None,
) -> Tuple[TrafficSummary, List[RequestRecord], List[WaterfallRow], Dict[str, Dict[str, int]]]:
    """One mode's complete simulation — the unit of process-level parallelism.

    Module-level and built from plain data, so a worker process can run an
    entire cluster (nodes, ledger shards, clock and all) independently.
    Returns the summary plus the run's records, waterfall rows and
    middleware counters, which pickle back to the parent alongside it.
    """
    engine = TrafficEngine(
        mode,
        autoscaler=autoscaler,
        config=config,
        intra=intra,
        telemetry=telemetry,
        middleware=middleware,
    )
    summary = engine.run(requests, pattern=pattern)
    return summary, engine.records, engine.waterfall, engine.middleware_stats


def run_comparison(
    requests: Sequence[Request],
    modes: Sequence[str] = ("roadrunner-user", "runc-http"),
    autoscaler_factory=None,
    config: Optional[TrafficConfig] = None,
    pattern: str = "trace",
    intra: IntraTenantOrder = IntraTenantOrder.FIFO,
    parallel: bool = False,
    telemetry_factory: Optional[Callable[[str], Telemetry]] = None,
    records_out: Optional[Dict[str, List[RequestRecord]]] = None,
    waterfalls_out: Optional[Dict[str, List[WaterfallRow]]] = None,
    middleware_factory: Optional[Callable[[str], MiddlewarePipeline]] = None,
    middleware_out: Optional[Dict[str, Dict[str, Dict[str, int]]]] = None,
) -> Dict[str, TrafficSummary]:
    """Run the *same* arrival stream against several runtimes.

    Each mode gets a fresh engine and a fresh autoscaler (from
    ``autoscaler_factory``, defaulting to target-concurrency 1.0) so no
    state leaks between the compared runs — the arrival stream is the only
    thing they share.  With ``parallel`` each mode's whole simulation (its
    own cluster, per-node ledger shards and clock) runs in a worker
    process; results are identical to the serial comparison because every
    run is independent and seeded.

    ``telemetry_factory`` builds one :class:`~repro.obs.telemetry.Telemetry`
    per mode (called with the mode name); its sinks hold open file handles,
    so it requires the serial path.  ``records_out`` / ``waterfalls_out``
    collect each mode's per-request records and waterfall rows.
    ``middleware_factory`` builds one fresh
    :class:`~repro.gateway.middleware.MiddlewarePipeline` per mode (stage
    state like caches and token buckets must not leak between compared
    runs); ``middleware_out`` collects each mode's per-stage counters.
    """
    if telemetry_factory is not None and parallel:
        raise TrafficEngineError(
            "telemetry sinks cannot cross process boundaries; "
            "run the comparison serially to attach telemetry"
        )
    ordered = _ordered_requests(requests)
    jobs = [
        (
            mode,
            ordered,
            autoscaler_factory() if autoscaler_factory else None,
            config,
            pattern,
            intra,
            telemetry_factory(mode) if telemetry_factory else None,
            middleware_factory(mode) if middleware_factory else None,
        )
        for mode in modes
    ]
    if parallel:
        results = parallel_map(_run_single_mode, jobs)
    else:
        results = [_run_single_mode(*job) for job in jobs]
    summaries: Dict[str, TrafficSummary] = {}
    for mode, (summary, records, waterfall, middleware_stats) in zip(modes, results):
        summaries[mode] = summary
        if records_out is not None:
            records_out[mode] = records
        if waterfalls_out is not None:
            waterfalls_out[mode] = waterfall
        if middleware_out is not None:
            middleware_out[mode] = middleware_stats
    return summaries
