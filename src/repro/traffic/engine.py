"""The traffic engine: sustained multi-client load as a discrete-event run.

The paper measures one transfer at a time; this engine measures the
*platform*: a seeded arrival stream is admitted through the
:class:`~repro.platform.gateway.IngressGateway`, queued while replicas are
busy or still cold-starting, executed with bounded per-replica and per-node
concurrency, and accounted per request with queueing delay separated from
service time.  An :class:`~repro.traffic.autoscaler.Autoscaler` closes the
loop each control interval, growing the pool (paying the runtime's modelled
cold start through the orchestrator) and reclaiming replicas idle past
their keep-alive.

Service times come from the same machinery as every figure in the
reproduction: each distinct payload size is invoked once through an
isolated :func:`~repro.experiments.environment.build_pair_setup`
environment (Invoker + channel for the chosen mode) and cached — the
simulation is deterministic, so the per-request cost of a given transfer
never varies.  Contention is then modelled by the engine's concurrency
bounds rather than by re-simulating every transfer, which keeps
hundred-thousand-request runs cheap.

Everything is driven by one :class:`~repro.sim.engine.EventLoop`, so a
seeded run is exactly reproducible: same arrivals, same scaling decisions,
same percentiles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.experiments.environment import build_pair_setup
from repro.platform.deployment import DeployedFunction
from repro.platform.cluster import Cluster
from repro.platform.function import FunctionSpec
from repro.platform.gateway import IngressGateway, RoutingPolicy
from repro.platform.orchestrator import Orchestrator
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import EventLoop
from repro.sim.ledger import CostCategory, CostLedger
from repro.traffic.arrivals import Request
from repro.traffic.autoscaler import Autoscaler, LoadSample, TargetConcurrencyPolicy
from repro.traffic.slo import RequestOutcome, RequestRecord, TrafficSummary, summarize
from repro.wasm.runtime import RuntimeKind
from repro.workloads.generators import make_payload

MB = 1024 * 1024

#: Modes the traffic engine can drive (single-node deployments).
TRAFFIC_MODES: Tuple[str, ...] = (
    "roadrunner-user",
    "roadrunner-kernel",
    "runc-http",
    "wasmedge-http",
)


class TrafficEngineError(RuntimeError):
    """Raised for invalid engine configurations or request streams."""


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of one sustained-load run."""

    #: Nodes in the serving cluster; replicas spread round-robin across them.
    nodes: int = 4
    #: Concurrent requests one replica serves (1 = FaaS single-concurrency).
    per_replica_concurrency: int = 1
    #: Replicas registered (and cold-started) before the first arrival.
    initial_replicas: int = 1
    #: Admission bound: arrivals beyond this queue depth are dropped.
    max_queue: int = 10_000
    #: Requests queued longer than this time out (never reach a replica).
    queue_timeout_s: float = 30.0
    #: Load-balancer policy at the gateway.
    routing: RoutingPolicy = RoutingPolicy.LEAST_LOADED
    cost_model: CostModel = DEFAULT_COST_MODEL

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise TrafficEngineError("need at least one node")
        if self.per_replica_concurrency < 1:
            raise TrafficEngineError("per_replica_concurrency must be >= 1")
        if self.initial_replicas < 0:
            raise TrafficEngineError("initial_replicas must be non-negative")
        if self.max_queue < 1:
            raise TrafficEngineError("max_queue must be >= 1")
        if self.queue_timeout_s <= 0:
            raise TrafficEngineError("queue_timeout_s must be positive")


@dataclass
class _Replica:
    """Engine-side view of one gateway replica.

    Only warm-up and idleness live here; in-flight counts stay in the
    gateway (the load balancer's bookkeeping is the single source of
    truth — the engine samples it through the admission hooks).
    """

    deployed: DeployedFunction
    ready_at: float
    cold_s: float = 0.0
    idle_since: float = 0.0


def _spec_for_mode(mode: str, function: str) -> FunctionSpec:
    if mode == "runc-http":
        kind = RuntimeKind.RUNC
    elif mode == "wasmedge-http":
        kind = RuntimeKind.WASMEDGE
    else:
        kind = RuntimeKind.ROADRUNNER
    return FunctionSpec(
        name=function,
        runtime=kind,
        requires_wasi=kind is not RuntimeKind.RUNC,
        workflow="traffic",
        tenant="tenant-1",
    )


class TrafficEngine:
    """Drives one arrival stream against one runtime mode."""

    def __init__(
        self,
        mode: str,
        autoscaler: Optional[Autoscaler] = None,
        config: Optional[TrafficConfig] = None,
    ) -> None:
        if mode not in TRAFFIC_MODES:
            raise TrafficEngineError(
                "unknown traffic mode %r (known: %s)" % (mode, ", ".join(TRAFFIC_MODES))
            )
        self.mode = mode
        self.config = config or TrafficConfig()
        self.autoscaler = autoscaler or Autoscaler(TargetConcurrencyPolicy(1.0))
        self.records: List[RequestRecord] = []
        self.clock = SimClock()
        self._service_cache: Dict[int, float] = {}

    # -- public API -----------------------------------------------------------------

    def run(self, requests: Sequence[Request], pattern: str = "trace") -> TrafficSummary:
        """Admit, queue, execute and account every request in the stream."""
        if not requests:
            raise TrafficEngineError("cannot run an empty request stream")
        self.records = []  # each run() reports only its own stream
        functions = {request.function for request in requests}
        if len(functions) != 1:
            raise TrafficEngineError(
                "the engine serves one function per run, got %s" % sorted(functions)
            )
        function = requests[0].function

        # Serving cluster: the gateway pool lives here and its ledger takes
        # the ingress and cold-start charges of the run, timestamped on the
        # engine's simulated clock.
        self.clock.reset()
        cluster = Cluster(
            cost_model=self.config.cost_model,
            ledger=CostLedger(clock=self.clock, name="traffic"),
        )
        for index in range(self.config.nodes):
            cluster.add_node("traffic-%d" % index)
        orchestrator = Orchestrator(cluster)
        gateway = IngressGateway(orchestrator, policy=self.config.routing)
        spec = _spec_for_mode(self.mode, function)

        loop = EventLoop()
        queue: Deque[Request] = deque()
        queued_ids = set()
        replicas: List[_Replica] = []
        by_name: Dict[str, _Replica] = {}
        timeline: List[Tuple[float, int]] = []
        # Replicas beyond the cluster's core count can never execute (each
        # in-flight request occupies one core), so the autoscaler is capped
        # there — no cold starts are paid for capacity that cannot serve.
        capacity = sum(cluster.node(name).cores for name in cluster.nodes)
        state = {
            "remaining": len(requests),
            "last_event_s": 0.0,
            "cold_start_seconds": 0.0,
        }

        def note(now: float) -> None:
            state["last_event_s"] = max(state["last_event_s"], now)
            self.clock.advance_to(loop.now)

        def add_replicas(count: int, now: float) -> None:
            """Register ``count`` replicas, each paying its modelled cold start.

            Replicas never share a VM here: after a scale-to-zero the next
            scale-up must pay the full cold start again, so a cached warm VM
            would flatter whichever runtime got to keep it.
            """
            for _ in range(count):
                before = cluster.ledger.seconds(CostCategory.COLD_START)
                deployed = gateway.register(spec, replicas=1, charge_cold_start=True)[0]
                cold = cluster.ledger.seconds(CostCategory.COLD_START) - before
                state["cold_start_seconds"] += cold
                replica = _Replica(
                    deployed=deployed, ready_at=now + cold, cold_s=cold, idle_since=now + cold
                )
                replicas.append(replica)
                by_name[deployed.name] = replica
                loop.schedule_at(now + cold, lambda: dispatch(loop.now), label="warm")

        def eligible(now: float) -> List[_Replica]:
            if not replicas:
                return []
            counts = gateway.in_flight(function)
            busy_by_node: Dict[str, int] = {}
            for replica in replicas:
                node = replica.deployed.node_name
                busy_by_node[node] = busy_by_node.get(node, 0) + counts[replica.deployed.name]
            return [
                replica
                for replica in replicas
                if replica.ready_at <= now
                and counts[replica.deployed.name] < self.config.per_replica_concurrency
                and busy_by_node[replica.deployed.node_name]
                < cluster.node(replica.deployed.node_name).cores
            ]

        def dispatch(now: float) -> None:
            """Move queued requests onto available replicas (FIFO order)."""
            while queue:
                # Lazy deletion: timed-out requests stay in the deque as
                # ghosts (removed from queued_ids) and are skipped here, so
                # expiry stays O(1) even under heavy overload.
                if queue[0].request_id not in queued_ids:
                    queue.popleft()
                    continue
                candidates = eligible(now)
                if not candidates:
                    return
                request = queue.popleft()
                queued_ids.discard(request.request_id)
                deployed = gateway.route_among(
                    function, [replica.deployed for replica in candidates]
                )
                replica = by_name[deployed.name]
                service = self._service_time(request.payload_bytes)
                # The part of this request's wait actually spent watching its
                # replica cold-start: the overlap of [arrival, dispatch] with
                # the replica's warm-up window, not the whole queueing delay.
                cold_wait = max(0.0, min(replica.cold_s, replica.ready_at - request.arrival_s))
                completion = now + service
                note(completion)

                def complete(
                    request: Request = request,
                    replica: _Replica = replica,
                    dispatched: float = now,
                    completion: float = completion,
                    cold_wait: float = cold_wait,
                ) -> None:
                    gateway.release(function, replica.deployed)
                    replica.idle_since = completion
                    self.records.append(
                        RequestRecord(
                            request_id=request.request_id,
                            function=function,
                            outcome=RequestOutcome.COMPLETED,
                            arrival_s=request.arrival_s,
                            dispatch_s=dispatched,
                            completion_s=completion,
                            replica=replica.deployed.name,
                            cold_start_wait_s=cold_wait,
                        )
                    )
                    state["remaining"] -= 1
                    dispatch(loop.now)

                loop.schedule_at(completion, complete, label="complete")

        def arrive(request: Request) -> None:
            note(request.arrival_s)
            if len(queued_ids) >= self.config.max_queue:
                self.records.append(
                    RequestRecord(
                        request_id=request.request_id,
                        function=function,
                        outcome=RequestOutcome.DROPPED,
                        arrival_s=request.arrival_s,
                    )
                )
                state["remaining"] -= 1
                return
            queue.append(request)
            queued_ids.add(request.request_id)
            loop.schedule_at(
                request.arrival_s + self.config.queue_timeout_s,
                lambda request=request: expire(request),
                label="timeout",
            )
            dispatch(loop.now)

        def expire(request: Request) -> None:
            """Time out a request still waiting when its patience ran out.

            The request stays in the deque as a ghost; ``dispatch`` discards
            it when it reaches the head.
            """
            if request.request_id not in queued_ids:
                return
            queued_ids.discard(request.request_id)
            self.records.append(
                RequestRecord(
                    request_id=request.request_id,
                    function=function,
                    outcome=RequestOutcome.TIMED_OUT,
                    arrival_s=request.arrival_s,
                )
            )
            state["remaining"] -= 1
            note(loop.now)

        def control_tick() -> None:
            if state["remaining"] <= 0:
                return
            now = loop.now
            sample = LoadSample(
                time_s=now,
                in_flight=gateway.total_in_flight(function) if replicas else 0,
                queued=len(queued_ids),
                replicas=len(replicas),
            )
            decision = self.autoscaler.evaluate(sample)
            if decision.scale_up:
                add_replicas(min(decision.scale_up, max(0, capacity - len(replicas))), now)
            elif decision.scale_down:
                reclaim(decision.scale_down, now)
            timeline.append((now, len(replicas)))
            dispatch(now)
            loop.schedule(self.autoscaler.control_interval_s, control_tick, label="tick")

        def reclaim(count: int, now: float) -> None:
            """Remove up to ``count`` warm replicas idle past their keep-alive."""
            counts = gateway.in_flight(function) if replicas else {}
            idle = sorted(
                (
                    replica
                    for replica in replicas
                    if counts[replica.deployed.name] == 0
                    and replica.ready_at <= now
                    and self.autoscaler.reclaimable(now, replica.idle_since)
                ),
                key=lambda replica: replica.idle_since,
            )
            for replica in idle[:count]:
                gateway.remove_replica(function, replica.deployed)
                replicas.remove(replica)
                del by_name[replica.deployed.name]

        # Bootstrap: initial pool (capacity-capped like autoscaled growth),
        # arrival events, the control loop.
        if self.config.initial_replicas:
            add_replicas(min(self.config.initial_replicas, capacity), 0.0)
        timeline.append((0.0, len(replicas)))
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        for request in ordered:
            loop.schedule_at(request.arrival_s, lambda request=request: arrive(request), label="arrive")
        loop.schedule(self.autoscaler.control_interval_s, control_tick, label="tick")
        loop.run()

        if state["remaining"] != 0:
            raise TrafficEngineError(
                "engine finished with %d unresolved requests" % state["remaining"]
            )
        duration = max(state["last_event_s"], ordered[-1].arrival_s)
        self.records.sort(key=lambda record: record.request_id)
        return summarize(
            mode=self.mode,
            pattern=pattern,
            duration_s=duration,
            records=self.records,
            cold_starts=gateway.cold_starts,
            cold_start_seconds=state["cold_start_seconds"],
            replica_timeline=timeline,
        )

    # -- service times ---------------------------------------------------------------

    def _service_time(self, payload_bytes: int) -> float:
        """Workflow latency for one payload size, measured once and cached.

        The measurement invokes the canonical two-function chain through a
        fresh isolated environment for this engine's mode — the same path
        every figure in the reproduction uses.
        """
        cached = self._service_cache.get(payload_bytes)
        if cached is None:
            setup = build_pair_setup(self.mode, cost_model=self.config.cost_model)
            payload = make_payload(payload_bytes / MB)
            cached = setup.invoker.invoke(setup.workflow, payload).total_latency_s
            self._service_cache[payload_bytes] = cached
        return cached


def run_comparison(
    requests: Sequence[Request],
    modes: Sequence[str] = ("roadrunner-user", "runc-http"),
    autoscaler_factory=None,
    config: Optional[TrafficConfig] = None,
    pattern: str = "trace",
) -> Dict[str, TrafficSummary]:
    """Run the *same* arrival stream against several runtimes.

    Each mode gets a fresh engine and a fresh autoscaler (from
    ``autoscaler_factory``, defaulting to target-concurrency 1.0) so no
    state leaks between the compared runs — the arrival stream is the only
    thing they share.
    """
    results: Dict[str, TrafficSummary] = {}
    for mode in modes:
        autoscaler = autoscaler_factory() if autoscaler_factory else None
        engine = TrafficEngine(mode, autoscaler=autoscaler, config=config)
        results[mode] = engine.run(requests, pattern=pattern)
    return results
