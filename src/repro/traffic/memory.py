"""The node memory model: replica RSS budgets, pressure, and inflation.

Until now the traffic engine modelled contention purely through concurrency
bounds — per-node RAM was free, so density claims ("how many tenants fit on
a node?") were not honest.  This module gives every replica a modelled
resident-set footprint, distinct per runtime profile (a container carries a
full userland; a Wasm instance is an order of magnitude lighter — the
baseline RSS figures live in :class:`~repro.sim.costs.CostModel`), charged
against a per-node memory budget.

Pressure matters in three ways, all driven from the traffic engine:

* **service-time inflation** — past a configurable *pressure knee* (a
  fraction of the budget) services slow down linearly, modelling page-cache
  erosion and allocator contention on a crowded node;
* **keep-alive economics** — a warm idle replica costs RSS-seconds, so the
  autoscaler's keep-alive window shrinks with node pressure
  (:meth:`~repro.traffic.autoscaler.Autoscaler.effective_keep_alive_s`);
* **OOM eviction** — when a node exceeds its budget the engine kills the
  coldest idle replica, a forced future cold start surfaced as a
  first-class counter.

Accounting flows through the same :class:`~repro.sim.ledger.MemoryMeter`
machinery every sandbox uses: each node's ledger shard carries one ``rss``
meter, so per-node peak RSS shows up in node usage tables, figure exports
and Prometheus gauges without any extra plumbing.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.costs import CostModel
from repro.sim.ledger import ClusterLedger, MemoryMeter

MB = 1024 * 1024

#: Default fraction of the node budget above which services inflate.
DEFAULT_PRESSURE_KNEE = 0.85

#: Default service-time inflation slope: the multiplier reaches
#: ``1 + slope`` when a node is exactly at its budget.
DEFAULT_PRESSURE_SLOPE = 1.0


class MemoryModelError(ValueError):
    """Raised for invalid memory-model parameters."""


def default_replica_rss_mb(mode: str, cost_model: CostModel) -> float:
    """The modelled per-replica RSS for a traffic mode's runtime profile.

    Containers pay the full userland baseline; Wasm instances (both
    roadrunner modes and the WasmEdge baseline run the function inside a
    Wasm VM hosted by a lean shim) pay the Wasm baseline.
    """
    if mode == "runc-http":
        return cost_model.container_baseline_rss_mb
    return cost_model.wasm_baseline_rss_mb


class NodeMemoryModel:
    """Per-node RSS accounting against a shared budget.

    One instance serves a whole engine run: ``allocate``/``free`` move a
    replica's footprint onto and off its node (mirrored into the node
    ledger shard's ``rss`` meter so peaks flow into every existing memory
    report), ``pressure`` is the used/budget fraction the autoscaler and
    evictor consume, and ``inflation`` is the service-time multiplier past
    the knee.  All bookkeeping is plain floats over dicts — deterministic,
    and only touched from the engine's serialized stages, so parallel-node
    runs stay byte-identical to serial ones.
    """

    def __init__(
        self,
        budget_mb: float,
        knee: float = DEFAULT_PRESSURE_KNEE,
        slope: float = DEFAULT_PRESSURE_SLOPE,
        ledger: Optional[ClusterLedger] = None,
    ) -> None:
        if budget_mb <= 0:
            raise MemoryModelError("node memory budget must be positive (MB)")
        if not 0.0 < knee < 1.0:
            raise MemoryModelError("pressure knee must be in (0, 1), got %r" % knee)
        if slope < 0:
            raise MemoryModelError("pressure slope must be non-negative")
        self.budget_mb = float(budget_mb)
        self.knee = float(knee)
        self.slope = float(slope)
        self._ledger = ledger
        self._used_mb: Dict[str, float] = {}

    # -- accounting -----------------------------------------------------------------

    def allocate(self, node: str, rss_mb: float) -> None:
        """Charge ``rss_mb`` of replica footprint to ``node``."""
        self._used_mb[node] = self.used_mb(node) + rss_mb
        meter = self._meter(node)
        if meter is not None:
            meter.allocate(int(round(rss_mb * MB)))

    def free(self, node: str, rss_mb: float) -> None:
        """Release a replica's footprint from ``node``."""
        self._used_mb[node] = self.used_mb(node) - rss_mb
        meter = self._meter(node)
        if meter is not None:
            meter.free(int(round(rss_mb * MB)))

    def _meter(self, node: str) -> Optional[MemoryMeter]:
        if self._ledger is None:
            return None
        return self._ledger.node_shard(node).meter("rss:%s" % node)

    # -- queries --------------------------------------------------------------------

    def used_mb(self, node: str) -> float:
        return self._used_mb.get(node, 0.0)

    def over_budget(self, node: str) -> bool:
        return self.used_mb(node) > self.budget_mb

    def pressure(self, node: str) -> float:
        """Used/budget fraction (can exceed 1.0 when nothing is evictable)."""
        return self.used_mb(node) / self.budget_mb

    def inflation(self, node: str) -> float:
        """Service-time multiplier for work dispatched to ``node``.

        1.0 at or below the knee; linear above it, reaching ``1 + slope``
        at exactly the budget and climbing further for a node pinned over
        budget by unevictable (busy) replicas.
        """
        pressure = self.pressure(node)
        if pressure <= self.knee:
            return 1.0
        return 1.0 + self.slope * (pressure - self.knee) / (1.0 - self.knee)
