"""Scaling-policy comparison: the same seeded arrivals under every policy.

The question an operator actually asks of an autoscaler is comparative:
given *my* traffic, which policy holds p99 and the deadline-met ratio at
the fewest cold starts and replica-seconds?  This module answers it the way
every figure in the reproduction does — byte-identical seeded arrivals,
one engine run per candidate, nothing shared between runs — which is also
why candidates can run in parallel worker processes:

* :func:`autoscaler_factory` builds the named policy's fresh-per-run
  factory (stateful policies like step/predictive must never leak state
  across compared runs);
* :func:`compare_scaling_policies` runs one :class:`MultiTenantTrafficEngine`
  per policy over the same tenant specs and returns the per-policy
  :class:`~repro.traffic.tenants.MultiTenantSummary` map;
* :func:`policy_cluster_summaries` flattens that map to the cluster-rollup
  rows the comparison figure and table plot.

Export the result through :func:`repro.metrics.export.policies_to_figure`
(one figure: p99, deadline-met ratio, cold starts, replica-seconds per
policy, CSV/JSON round-trip included).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.platform.gateway import FairnessPolicy, IntraTenantOrder
from repro.traffic.autoscaler import (
    Autoscaler,
    AutoscalerError,
    FixedReplicasPolicy,
    NoScalingPolicy,
    PredictiveScalingPolicy,
    ScalingPolicy,
    StepScalingPolicy,
    TargetConcurrencyPolicy,
)
from repro.traffic.engine import MultiTenantTrafficEngine, TrafficConfig
from repro.traffic.slo import TrafficSummary
from repro.traffic.tenants import MultiTenantSummary, TenantSpec

#: Policy names `repro traffic --scaling-policy/--compare-policies` accepts.
SCALING_POLICIES: Tuple[str, ...] = ("target", "fixed", "none", "step", "predictive")


def make_scaling_policy(
    name: str,
    target_concurrency: float = 1.0,
    fixed_replicas: int = 4,
    step: int = 1,
    high_utilisation: float = 2.0,
    low_utilisation: float = 0.5,
    cooldown_s: float = 10.0,
    horizon_s: float = 10.0,
) -> ScalingPolicy:
    """One *fresh* scaling policy by CLI name (stateful ones included)."""
    if name == "target":
        return TargetConcurrencyPolicy(target_concurrency)
    if name == "fixed":
        return FixedReplicasPolicy(fixed_replicas)
    if name == "none":
        return NoScalingPolicy()
    if name == "step":
        return StepScalingPolicy(
            high_utilisation=high_utilisation,
            low_utilisation=low_utilisation,
            step=step,
            cooldown_s=cooldown_s,
        )
    if name == "predictive":
        return PredictiveScalingPolicy(
            horizon_s=horizon_s, target_concurrency=target_concurrency
        )
    raise AutoscalerError(
        "unknown scaling policy %r (known: %s)" % (name, ", ".join(SCALING_POLICIES))
    )


class AutoscalerFactory:
    """A picklable factory producing one fresh autoscaler (and policy) per call.

    A plain class (not a closure) so a factory can cross process boundaries:
    parallel policy comparisons ship the factory to worker processes, each of
    which builds its own fresh, stateful policy instances.
    """

    def __init__(
        self,
        name: str,
        min_replicas: int = 1,
        max_replicas: int = 64,
        keep_alive_s: float = 30.0,
        control_interval_s: float = 1.0,
        **policy_kwargs,
    ) -> None:
        self.name = name
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.keep_alive_s = keep_alive_s
        self.control_interval_s = control_interval_s
        self.policy_kwargs = dict(policy_kwargs)

    def __call__(self) -> Autoscaler:
        return Autoscaler(
            make_scaling_policy(self.name, **self.policy_kwargs),
            min_replicas=self.min_replicas,
            max_replicas=self.max_replicas,
            keep_alive_s=self.keep_alive_s,
            control_interval_s=self.control_interval_s,
        )


def autoscaler_factory(
    name: str,
    min_replicas: int = 1,
    max_replicas: int = 64,
    keep_alive_s: float = 30.0,
    control_interval_s: float = 1.0,
    **policy_kwargs,
) -> Callable[[], Autoscaler]:
    """A factory producing one fresh autoscaler (and policy) per call."""
    return AutoscalerFactory(
        name,
        min_replicas=min_replicas,
        max_replicas=max_replicas,
        keep_alive_s=keep_alive_s,
        control_interval_s=control_interval_s,
        **policy_kwargs,
    )


def _run_policy(
    tenants: Tuple[TenantSpec, ...],
    factory: Callable[[], Autoscaler],
    config: Optional[TrafficConfig],
    fairness: FairnessPolicy,
    starvation_guard: int,
    intra: IntraTenantOrder,
    oversubscription: float,
    service_cache: Optional[Dict[Tuple[str, int], float]] = None,
) -> MultiTenantSummary:
    """One policy's complete shared-cluster simulation (process-parallel unit)."""
    engine = MultiTenantTrafficEngine(
        tenants,
        config=config,
        fairness=fairness,
        starvation_guard=starvation_guard,
        autoscaler_factory=factory,
        oversubscription=oversubscription,
        service_cache=service_cache,
        intra=intra,
    )
    return engine.run()


def compare_scaling_policies(
    tenants: Sequence[TenantSpec],
    policies: Mapping[str, Callable[[], Autoscaler]],
    config: Optional[TrafficConfig] = None,
    fairness: FairnessPolicy = FairnessPolicy.WFQ,
    starvation_guard: int = 32,
    intra: IntraTenantOrder = IntraTenantOrder.FIFO,
    oversubscription: float = 2.0,
    parallel: bool = False,
) -> Dict[str, MultiTenantSummary]:
    """Run the same tenant specs once per policy, sharing only the arrivals.

    ``policies`` maps a label (usually the policy name) to an autoscaler
    factory; each run builds fresh autoscalers through it.  Tenant arrival
    processes are seeded, so every run regenerates byte-identical streams —
    any difference in the summaries is the policy's doing.  With
    ``parallel`` each policy's whole simulation runs in a worker process
    (factories from :class:`AutoscalerFactory` pickle; a closure factory
    silently falls back to the serial path) — results are identical either
    way because the runs share nothing.
    """
    if not policies:
        raise AutoscalerError("need at least one policy to compare")
    from repro.sim.engine import parallel_map

    specs = tuple(tenants)
    jobs = [
        (specs, factory, config, fairness, starvation_guard, intra, oversubscription)
        for factory in policies.values()
    ]
    if parallel:
        summaries = parallel_map(_run_policy, jobs)
    else:
        # The deterministic service-time cache is shareable within one
        # process; sharing it across the serial runs only saves time.
        service_cache: Dict[Tuple[str, int], float] = {}
        summaries = [_run_policy(*job, service_cache=service_cache) for job in jobs]
    return {label: summary for label, summary in zip(policies, summaries)}


def policy_cluster_summaries(
    results: Mapping[str, MultiTenantSummary],
) -> Dict[str, TrafficSummary]:
    """The cluster-rollup row of each compared policy (figure/table input)."""
    return {label: summary.cluster for label, summary in results.items()}
