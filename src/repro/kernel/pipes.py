"""Pipes, including the zero-copy ``vmsplice`` / ``splice`` paths.

A pipe is the kernel object behind Roadrunner's *virtual data hose*
(Sec. 4.3, Algorithm 1):

* ``vmsplice_in`` maps user pages into the pipe — the payload enters kernel
  space without a copy;
* ``splice_to`` moves the pipe's buffers to another file descriptor (a socket
  or another pipe) by reference;
* the conventional ``write`` / ``read`` calls copy, and are what the HTTP
  baselines pay.

Buffers retain their provenance (copied vs gifted), so tests and ablations can
assert exactly how many bytes were physically copied on each path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.kernel.buffers import KernelBuffer
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.payload import Payload


class PipeError(RuntimeError):
    """Raised for invalid pipe operations (overflow, reading an empty pipe)."""


#: Default pipe capacity, matching Linux's 64 KiB * 16 ring of pipe buffers.
DEFAULT_PIPE_CAPACITY = 16 * 64 * 1024


class Pipe:
    """A unidirectional kernel pipe holding a FIFO of kernel buffers.

    The capacity check models ``F_SETPIPE_SZ``: Roadrunner resizes the data
    hose to fit the message, while a default-sized pipe forces chunking.  For
    simplicity a single buffer may not exceed the capacity, but the pipe
    accepts any number of buffers (the reader is assumed to drain it).
    """

    def __init__(
        self,
        kernel: Kernel,
        capacity: int = DEFAULT_PIPE_CAPACITY,
        name: str = "pipe",
    ) -> None:
        if capacity <= 0:
            raise PipeError("pipe capacity must be positive")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self._buffers: Deque[KernelBuffer] = deque()
        self.total_bytes_in = 0
        self.total_bytes_out = 0
        self.copied_bytes_in = 0

    # -- producer side --------------------------------------------------------------

    def write(self, process: Process, payload: Payload) -> KernelBuffer:
        """Conventional ``write``: copies the payload into kernel buffers."""
        self._check_fits(payload.size)
        self.kernel.syscall(process, "write(%s)" % self.name,
                            count=self.kernel.cost_model.syscall_count(payload.size))
        self.kernel.copy_user_to_kernel(process, payload.size, label="pipe-write:%s" % self.name)
        buffer = KernelBuffer(payload=payload.copy(), copied=True, producer=process.name)
        self._push(buffer, process)
        self.copied_bytes_in += payload.size
        return buffer

    def vmsplice_in(self, process: Process, payload: Payload) -> KernelBuffer:
        """``vmsplice``: gift the payload's user pages to the pipe (no copy)."""
        self._check_fits(payload.size)
        self.kernel.syscall(process, "vmsplice(%s)" % self.name)
        self.kernel.splice_pages(process, payload.size, label="vmsplice:%s" % self.name)
        buffer = KernelBuffer(payload=payload, copied=False, producer=process.name)
        self._push(buffer, process)
        return buffer

    # -- consumer side -----------------------------------------------------------------

    def read(self, process: Process, length: Optional[int] = None) -> Payload:
        """Conventional ``read``: copies the next buffer out to user space."""
        buffer = self._pop()
        if length is not None and buffer.size != length:
            raise PipeError(
                "short read: buffer has %d bytes, caller expected %d" % (buffer.size, length)
            )
        self.kernel.syscall(process, "read(%s)" % self.name,
                            count=self.kernel.cost_model.syscall_count(buffer.size))
        self.kernel.copy_kernel_to_user(process, buffer.size, label="pipe-read:%s" % self.name)
        self.kernel.release_kernel_buffer(buffer)
        self.total_bytes_out += buffer.size
        return buffer.payload

    def splice_to(self, process: Process, target: "Pipe") -> KernelBuffer:
        """``splice``: move the next buffer to another pipe by reference."""
        buffer = self._pop()
        self.kernel.syscall(process, "splice(%s->%s)" % (self.name, target.name))
        self.kernel.splice_pages(process, buffer.size, label="splice:%s" % self.name)
        target._adopt(buffer, process)
        self.total_bytes_out += buffer.size
        return buffer

    def pop_buffer(self, process: Process) -> KernelBuffer:
        """Hand the next buffer to another kernel object (socket splice).

        The buffer stays in kernel space, so its memory charge travels with
        it (``buffer.owner``); the adopting object releases it when the
        buffer finally leaves the kernel.
        """
        buffer = self._pop()
        self.total_bytes_out += buffer.size
        return buffer

    def adopt_buffer(self, process: Process, buffer: KernelBuffer) -> None:
        """Accept a buffer spliced in from another kernel object."""
        self._check_fits(buffer.size)
        self._adopt(buffer, process)

    # -- inspection -----------------------------------------------------------------------

    @property
    def buffered_bytes(self) -> int:
        return sum(b.size for b in self._buffers)

    @property
    def pending_buffers(self) -> int:
        return len(self._buffers)

    def peek(self) -> List[KernelBuffer]:
        return list(self._buffers)

    # -- internals ---------------------------------------------------------------------------

    def _check_fits(self, nbytes: int) -> None:
        if nbytes > self.capacity:
            raise PipeError(
                "buffer of %d bytes exceeds pipe capacity of %d bytes "
                "(resize the pipe or chunk the payload)" % (nbytes, self.capacity)
            )

    def _push(self, buffer: KernelBuffer, process: Process) -> None:
        self._buffers.append(buffer)
        self.total_bytes_in += buffer.size
        self.kernel.track_kernel_buffer(process, buffer)

    def _adopt(self, buffer: KernelBuffer, process: Process) -> None:
        self._buffers.append(buffer)
        self.total_bytes_in += buffer.size
        # A spliced-in buffer that is already owned moves by reference: no
        # new pages, no second charge.
        self.kernel.track_kernel_buffer(process, buffer)

    def _pop(self) -> KernelBuffer:
        if not self._buffers:
            raise PipeError("read from an empty pipe %r" % self.name)
        return self._buffers.popleft()
