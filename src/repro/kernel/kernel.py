"""The per-node kernel: process management and boundary-crossing charges.

One :class:`Kernel` exists per cluster node.  It is the only place that
charges user/kernel boundary copies, syscall entry costs and context switches
— pipes and sockets delegate to it, so the accounting is consistent across
every data path (HTTP baseline, Unix-socket IPC, spliced network transfer).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipes import us)
    from repro.kernel.buffers import KernelBuffer

from repro.kernel.cgroups import Cgroup
from repro.kernel.process import Process
from repro.payload import Payload
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.ledger import CostCategory, CostLedger, CpuDomain, MemoryMeter


class KernelError(RuntimeError):
    """Raised for invalid kernel operations."""


class Kernel:
    """Kernel of a single host node."""

    def __init__(
        self,
        ledger: CostLedger,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        node_name: str = "node",
    ) -> None:
        self.ledger = ledger
        self.cost_model = cost_model
        self.node_name = node_name
        self._pid_counter = itertools.count(start=1)
        self._processes: Dict[int, Process] = {}

    # -- process management ------------------------------------------------------

    def create_process(self, name: str, baseline_rss_bytes: int = 0) -> Process:
        """Spawn a process with its own cgroup and memory meter."""
        pid = next(self._pid_counter)
        meter = self.ledger.meter("%s/%s" % (self.node_name, name), baseline_rss_bytes)
        cgroup = Cgroup(name="%s/%s" % (self.node_name, name), memory=meter)
        process = Process(pid=pid, name=name, cgroup=cgroup)
        self._processes[pid] = process
        return process

    def process(self, pid: int) -> Process:
        if pid not in self._processes:
            raise KernelError("unknown pid %d on node %s" % (pid, self.node_name))
        return self._processes[pid]

    def reap(self, pid: int) -> None:
        """Terminate (if still alive) and forget a process.

        Undeploy paths call this so churned sandboxes and shims do not
        accumulate in the kernel's process table over long runs.
        """
        process = self._processes.pop(pid, None)
        if process is None:
            raise KernelError("unknown pid %d on node %s" % (pid, self.node_name))
        if process.alive:
            process.exit()

    @property
    def processes(self) -> Dict[int, Process]:
        return dict(self._processes)

    @property
    def live_process_count(self) -> int:
        return sum(1 for process in self._processes.values() if process.alive)

    # -- accounting primitives ----------------------------------------------------------

    def syscall(self, process: Process, name: str, count: int = 1, wall_time: bool = True) -> float:
        """Charge ``count`` syscall entries made by ``process``."""
        if count < 1:
            raise KernelError("syscall count must be >= 1")
        seconds = self.cost_model.syscall_time(count)
        self.ledger.charge(
            CostCategory.SYSCALL,
            seconds,
            cpu_domain=CpuDomain.KERNEL,
            label="%s:%s" % (process.name, name),
            wall_time=wall_time,
            units=count,
        )
        process.charge_cpu(CpuDomain.KERNEL, seconds)
        process.note_syscall(count)
        return seconds

    def context_switch(self, from_process: Process, to_process: Optional[Process] = None) -> float:
        """Charge one context switch away from ``from_process``."""
        seconds = self.cost_model.context_switch_overhead
        self.ledger.charge(
            CostCategory.CONTEXT_SWITCH,
            seconds,
            cpu_domain=CpuDomain.KERNEL,
            label="switch:%s" % from_process.name,
        )
        from_process.charge_cpu(CpuDomain.KERNEL, seconds)
        from_process.note_context_switch()
        if to_process is not None:
            to_process.note_context_switch()
        return seconds

    def copy_user_to_kernel(self, process: Process, nbytes: int, label: str = "") -> float:
        """Copy ``nbytes`` from user space into kernel buffers."""
        seconds = self.cost_model.user_kernel_copy_time(nbytes)
        self.ledger.charge(
            CostCategory.MEMCPY,
            seconds,
            cpu_domain=CpuDomain.KERNEL,
            nbytes=nbytes,
            copied=True,
            label=label or "%s:user->kernel" % process.name,
        )
        process.charge_cpu(CpuDomain.KERNEL, seconds)
        return seconds

    def copy_kernel_to_user(self, process: Process, nbytes: int, label: str = "") -> float:
        """Copy ``nbytes`` from kernel buffers into user space."""
        seconds = self.cost_model.user_kernel_copy_time(nbytes)
        self.ledger.charge(
            CostCategory.MEMCPY,
            seconds,
            cpu_domain=CpuDomain.KERNEL,
            nbytes=nbytes,
            copied=True,
            label=label or "%s:kernel->user" % process.name,
        )
        process.charge_cpu(CpuDomain.KERNEL, seconds)
        return seconds

    def user_memcpy(self, process: Process, nbytes: int, label: str = "") -> float:
        """Copy ``nbytes`` entirely within user space."""
        seconds = self.cost_model.memcpy_time(nbytes)
        self.ledger.charge(
            CostCategory.MEMCPY,
            seconds,
            cpu_domain=CpuDomain.USER,
            nbytes=nbytes,
            copied=True,
            label=label or "%s:memcpy" % process.name,
        )
        process.charge_cpu(CpuDomain.USER, seconds)
        return seconds

    def splice_pages(self, process: Process, nbytes: int, label: str = "") -> float:
        """Gift/steal page references (vmsplice/splice) — no byte copy."""
        seconds = self.cost_model.splice_time(nbytes)
        self.ledger.charge(
            CostCategory.SPLICE,
            seconds,
            cpu_domain=CpuDomain.KERNEL,
            nbytes=nbytes,
            copied=False,
            label=label or "%s:splice" % process.name,
        )
        process.charge_cpu(CpuDomain.KERNEL, seconds)
        return seconds

    def track_kernel_buffer(self, process: Process, buffer: "KernelBuffer") -> None:
        """Charge a kernel buffer's memory to the producing process's meter.

        The buffer remembers which meter paid (``buffer.owner``), so however
        many processes and kernel objects it later moves through — splices,
        socket deliveries, pipe adoptions — the release hits the meter that
        allocated.  A buffer that already has an owner is left alone: splice
        moves the same pages by reference, it does not allocate new ones.
        """
        if buffer.owner is not None:
            return
        meter: MemoryMeter = process.cgroup.memory
        meter.allocate(buffer.payload.size)
        buffer.owner = meter

    def release_kernel_buffer(self, buffer: "KernelBuffer") -> None:
        """Release a kernel buffer's memory back to the meter that paid for it."""
        if buffer.owner is None:
            return
        buffer.owner.free(buffer.payload.size)
        buffer.owner = None
