"""Kernel buffers and page references.

A :class:`KernelBuffer` is data sitting in kernel space: either a *copy* of a
user-space payload (the result of a ``write``/``send`` syscall) or a set of
*gifted pages* that still belong to user memory but were mapped into the
kernel by ``vmsplice`` (no copy).  Pipes and sockets move these buffers; the
distinction between copied and gifted is what makes the near-zero-copy claim
testable — a test can assert that Roadrunner's network path never produces a
copied buffer on the send side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.payload import Payload
from repro.sim.costs import HOST_PAGE_SIZE
from repro.sim.ledger import MemoryMeter


class BufferError_(RuntimeError):
    """Raised for invalid buffer operations."""


@dataclass
class KernelBuffer:
    """A chunk of payload held in kernel space."""

    payload: Payload
    #: True when the buffer was produced by physically copying user memory;
    #: False when the pages were gifted/mapped (vmsplice, splice).
    copied: bool
    #: Label of the process or component that produced the buffer.
    producer: str = ""
    #: Meter the buffer's kernel memory was charged to.  The charge follows
    #: the buffer (splices move pages by reference, deliveries cross
    #: processes), so the release must hit the same meter the allocation did
    #: — not whichever process happens to consume the buffer.
    owner: Optional[MemoryMeter] = field(default=None, repr=False, compare=False)

    @property
    def size(self) -> int:
        return self.payload.size

    @property
    def pages(self) -> int:
        if self.payload.size == 0:
            return 0
        return -(-self.payload.size // HOST_PAGE_SIZE)

    @property
    def zero_copy(self) -> bool:
        return not self.copied

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "copied" if self.copied else "gifted"
        return "KernelBuffer(%s, %d bytes, from %s)" % (kind, self.size, self.producer)
