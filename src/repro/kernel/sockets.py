"""Sockets: Unix-domain IPC and TCP connections.

* :class:`UnixSocketPair` is the IPC mechanism of Roadrunner's kernel-space
  mode (Sec. 5): data is copied user->kernel on the sender and kernel->user
  on the receiver, but never serialized and never touches the network stack.
* :class:`TcpConnection` carries bytes between two nodes over a network link.
  It supports both the conventional copy path (``send``) used by the HTTP
  baselines and the splice path (``send_spliced``) used by Roadrunner's
  network mode, where kernel buffers arriving from a pipe are handed straight
  to the NIC without an extra user-space round trip.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.kernel.buffers import KernelBuffer
from repro.kernel.kernel import Kernel
from repro.kernel.pipes import Pipe
from repro.kernel.process import Process
from repro.payload import Payload
from repro.sim.ledger import CostCategory, CpuDomain


class SocketError(RuntimeError):
    """Raised for invalid socket operations."""


class UnixSocketPair:
    """A connected pair of Unix-domain sockets on one host.

    ``batch_factor`` > 1 models ``sendmmsg``/``recvmmsg``-style syscall
    batching: the same bytes move, but several chunk-sized writes share one
    kernel entry (the paper's future-work extension, Sec. 9).
    """

    def __init__(self, kernel: Kernel, name: str = "uds", batch_factor: int = 1) -> None:
        if batch_factor < 1:
            raise SocketError("batch_factor must be >= 1")
        self.kernel = kernel
        self.name = name
        self.batch_factor = batch_factor
        self._queue: Deque[KernelBuffer] = deque()
        self._connected = False
        self.copied_bytes = 0

    def _chunk_syscalls(self, nbytes: int) -> int:
        chunks = self.kernel.cost_model.syscall_count(nbytes)
        return max(1, -(-chunks // self.batch_factor))

    def connect(self, client: Process, server: Process) -> None:
        """Model connect/accept: one syscall each plus the setup overhead."""
        self.kernel.syscall(client, "connect(%s)" % self.name)
        self.kernel.syscall(server, "accept(%s)" % self.name)
        self.kernel.ledger.charge(
            CostCategory.IPC,
            self.kernel.cost_model.unix_socket_setup_overhead,
            cpu_domain=CpuDomain.KERNEL,
            label="uds-setup:%s" % self.name,
        )
        self._connected = True

    @property
    def connected(self) -> bool:
        return self._connected

    def send(self, sender: Process, payload: Payload) -> None:
        """Send: copy user->kernel and enqueue for the peer."""
        self._require_connected()
        chunk_syscalls = self._chunk_syscalls(payload.size)
        self.kernel.syscall(sender, "sendmsg(%s)" % self.name, count=chunk_syscalls)
        # The streaming copy through the socket buffer is charged at the
        # effective Unix-socket bandwidth, which already folds in both copies;
        # we book the sender's half here and the receiver's half in recv().
        half_copy = payload.size / self.kernel.cost_model.unix_socket_bandwidth / 2.0
        self.kernel.ledger.charge(
            CostCategory.IPC,
            half_copy,
            cpu_domain=CpuDomain.KERNEL,
            nbytes=payload.size,
            copied=True,
            label="uds-send:%s" % self.name,
        )
        sender.charge_cpu(CpuDomain.KERNEL, half_copy)
        buffer = KernelBuffer(payload=payload.copy(), copied=True, producer=sender.name)
        self.kernel.track_kernel_buffer(sender, buffer)
        self._queue.append(buffer)
        self.copied_bytes += payload.size

    def recv(self, receiver: Process) -> Payload:
        """Receive: wake the peer (context switch) and copy kernel->user."""
        self._require_connected()
        if not self._queue:
            raise SocketError("recv on empty socket %r" % self.name)
        buffer = self._queue.popleft()
        self.kernel.context_switch(receiver)
        chunk_syscalls = self._chunk_syscalls(buffer.size)
        self.kernel.syscall(receiver, "recvmsg(%s)" % self.name, count=chunk_syscalls)
        half_copy = buffer.size / self.kernel.cost_model.unix_socket_bandwidth / 2.0
        self.kernel.ledger.charge(
            CostCategory.IPC,
            half_copy,
            cpu_domain=CpuDomain.KERNEL,
            nbytes=buffer.size,
            copied=True,
            label="uds-recv:%s" % self.name,
        )
        receiver.charge_cpu(CpuDomain.KERNEL, half_copy)
        # Release against the meter that allocated (the sender's): the old
        # receiver-side free charged the wrong process's accounting.
        self.kernel.release_kernel_buffer(buffer)
        self.copied_bytes += buffer.size
        return buffer.payload

    @property
    def pending(self) -> int:
        return len(self._queue)

    def _require_connected(self) -> None:
        if not self._connected:
            raise SocketError("socket %r is not connected" % self.name)


class TcpConnection:
    """A TCP connection between a process on one node and one on another.

    The connection needs a *link* object providing
    ``transfer_seconds(nbytes, wasi_mediated=False)`` — see
    :class:`repro.net.link.NetworkLink`.
    """

    def __init__(
        self,
        source_kernel: Kernel,
        target_kernel: Kernel,
        link,
        name: str = "tcp",
    ) -> None:
        self.source_kernel = source_kernel
        self.target_kernel = target_kernel
        self.link = link
        self.name = name
        self._in_flight: Deque[KernelBuffer] = deque()
        self._established = False
        self.wire_bytes = 0

    def establish(self, client: Process, server: Process) -> None:
        """Three-way handshake: one RTT plus socket setup on both ends."""
        self.source_kernel.syscall(client, "connect(%s)" % self.name)
        self.target_kernel.syscall(server, "accept(%s)" % self.name)
        setup = self.source_kernel.cost_model.tcp_setup_overhead
        self.source_kernel.ledger.charge(
            CostCategory.NETWORK,
            setup,
            cpu_domain=CpuDomain.NONE,
            label="tcp-handshake:%s" % self.name,
        )
        self._established = True

    @property
    def established(self) -> bool:
        return self._established

    # -- send paths -----------------------------------------------------------------

    def send(self, sender: Process, payload: Payload, wasi_mediated: bool = False) -> None:
        """Conventional send: copy user->kernel, then put bytes on the wire."""
        self._require_established()
        chunk_syscalls = self.source_kernel.cost_model.syscall_count(payload.size)
        self.source_kernel.syscall(sender, "send(%s)" % self.name, count=chunk_syscalls)
        self.source_kernel.copy_user_to_kernel(sender, payload.size, label="tcp-send:%s" % self.name)
        buffer = KernelBuffer(payload=payload.copy(), copied=True, producer=sender.name)
        self._transmit(sender, buffer, wasi_mediated)

    def send_spliced(self, sender: Process, source_pipe: Pipe, wasi_mediated: bool = False) -> None:
        """Roadrunner path: splice the pipe's buffer into the socket (no copy)."""
        self._require_established()
        buffer = source_pipe.pop_buffer(sender)
        self.source_kernel.syscall(sender, "splice(%s->%s)" % (source_pipe.name, self.name))
        self.source_kernel.splice_pages(sender, buffer.size, label="splice-to-socket:%s" % self.name)
        self._transmit(sender, buffer, wasi_mediated)

    def _transmit(self, sender: Process, buffer: KernelBuffer, wasi_mediated: bool) -> None:
        wire_seconds = self.link.transfer_seconds(buffer.size, wasi_mediated=wasi_mediated)
        self.source_kernel.ledger.charge(
            CostCategory.NETWORK,
            wire_seconds,
            cpu_domain=CpuDomain.NONE,
            nbytes=buffer.size,
            copied=False,
            label="wire:%s" % self.name,
        )
        self.wire_bytes += buffer.size
        self._in_flight.append(buffer)

    # -- receive paths ------------------------------------------------------------------

    def recv(self, receiver: Process, wasi_mediated: bool = False) -> Payload:
        """Conventional receive: NIC -> kernel buffer -> copy to user space."""
        buffer = self._take_delivery(receiver)
        chunk_syscalls = self.target_kernel.cost_model.syscall_count(buffer.size)
        self.target_kernel.syscall(receiver, "recv(%s)" % self.name, count=chunk_syscalls)
        self.target_kernel.copy_kernel_to_user(receiver, buffer.size, label="tcp-recv:%s" % self.name)
        if wasi_mediated:
            # Each WASI socket read adds a host-call round trip per chunk.
            extra = chunk_syscalls * self.target_kernel.cost_model.wasi_call_overhead
            self.target_kernel.ledger.charge(
                CostCategory.WASM_IO,
                extra,
                cpu_domain=CpuDomain.USER,
                label="wasi-recv:%s" % self.name,
            )
            receiver.charge_cpu(CpuDomain.USER, extra)
        return buffer.payload

    def recv_spliced(self, receiver: Process, target_pipe: Pipe) -> KernelBuffer:
        """Roadrunner path: splice the arriving socket buffer into a pipe."""
        buffer = self._take_delivery(receiver)
        self.target_kernel.syscall(receiver, "splice(%s->%s)" % (self.name, target_pipe.name))
        self.target_kernel.splice_pages(receiver, buffer.size, label="splice-from-socket:%s" % self.name)
        # The buffer keeps its provenance: it was never copied on the target
        # host's user/kernel boundary.
        arrived = KernelBuffer(payload=buffer.payload, copied=False, producer=self.name)
        target_pipe.adopt_buffer(receiver, arrived)
        return arrived

    def _take_delivery(self, receiver: Process) -> KernelBuffer:
        if not self._in_flight:
            raise SocketError("recv on connection %r with nothing in flight" % self.name)
        self.target_kernel.context_switch(receiver)
        buffer = self._in_flight.popleft()
        # Delivery retires the source-side buffer: whatever meter was charged
        # when the bytes entered kernel space (a spliced pipe buffer keeps
        # its owner across the wire) is released now.
        self.target_kernel.release_kernel_buffer(buffer)
        return buffer

    @property
    def pending(self) -> int:
        return len(self._in_flight)

    def _require_established(self) -> None:
        if not self._established:
            raise SocketError("connection %r is not established" % self.name)
