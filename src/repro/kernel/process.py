"""Processes: the unit the kernel schedules and charges.

A process is a sandboxed execution context — a RunC container's main process,
or a Roadrunner shim together with the Wasm VM it embeds.  It belongs to a
:class:`~repro.kernel.cgroups.Cgroup`, which is where its CPU time lands.
"""

from __future__ import annotations

from repro.kernel.cgroups import Cgroup
from repro.sim.ledger import CpuDomain


class ProcessError(RuntimeError):
    """Raised for operations on dead or invalid processes."""


class Process:
    """A schedulable process owned by a kernel."""

    def __init__(self, pid: int, name: str, cgroup: Cgroup) -> None:
        if pid <= 0:
            raise ProcessError("pid must be positive, got %r" % pid)
        self.pid = pid
        self.name = name
        self.cgroup = cgroup
        self.alive = True
        self.syscall_count = 0
        self.context_switches = 0

    def charge_cpu(self, domain: CpuDomain, seconds: float) -> None:
        self._require_alive()
        self.cgroup.charge_cpu(domain, seconds)

    def note_syscall(self, count: int = 1) -> None:
        self._require_alive()
        if count < 0:
            raise ProcessError("syscall count must be non-negative")
        self.syscall_count += count

    def note_context_switch(self) -> None:
        self._require_alive()
        self.context_switches += 1

    def exit(self) -> None:
        """Terminate the process; further charges are an error."""
        self.alive = False

    def _require_alive(self) -> None:
        if not self.alive:
            raise ProcessError("process %d (%s) has exited" % (self.pid, self.name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "exited"
        return "Process(pid=%d, name=%r, %s)" % (self.pid, self.name, state)
