"""A per-node virtual filesystem for host file access.

Functions that are not purely compute-bound read inputs from the host
filesystem — the paper's "Resize Image" motivation workload does exactly this
through WASI, which is where Wasm's extra execution latency in Fig. 2a comes
from.  The filesystem charges the kernel-side costs of file I/O (syscalls and
kernel/user copies through the page cache); the additional WASI boundary cost
is charged by :class:`repro.wasm.wasi.WasiInterface` when a Wasm module is
the caller.
"""

from __future__ import annotations

from typing import Dict, List

from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.payload import Payload


class FileSystemError(RuntimeError):
    """Raised for missing paths or invalid operations."""


class VirtualFileSystem:
    """An in-memory filesystem attached to one node's kernel."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._files: Dict[str, Payload] = {}
        self.reads = 0
        self.writes = 0

    # -- namespace ---------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def listdir(self, prefix: str = "/") -> List[str]:
        """Paths under ``prefix`` (flat namespace, no real directories)."""
        return sorted(path for path in self._files if path.startswith(prefix))

    def size(self, path: str) -> int:
        return self._require(path).size

    def unlink(self, process: Process, path: str) -> None:
        self._require(path)
        self.kernel.syscall(process, "unlink(%s)" % path)
        del self._files[path]

    # -- data path ------------------------------------------------------------------

    def write_file(self, process: Process, path: str, payload: Payload) -> None:
        """Write ``payload`` to ``path`` (open + chunked writes + close)."""
        if not path or not path.startswith("/"):
            raise FileSystemError("paths must be absolute, got %r" % path)
        if payload.size <= 0:
            raise FileSystemError("refusing to write an empty file")
        chunks = self.kernel.cost_model.syscall_count(payload.size)
        self.kernel.syscall(process, "openat(%s)" % path)
        self.kernel.syscall(process, "write(%s)" % path, count=chunks)
        self.kernel.copy_user_to_kernel(process, payload.size, label="page-cache:%s" % path)
        self.kernel.syscall(process, "close(%s)" % path)
        self._files[path] = payload.copy() if payload.is_real else payload
        self.writes += 1

    def read_file(self, process: Process, path: str) -> Payload:
        """Read the whole file at ``path`` (open + chunked reads + close)."""
        stored = self._require(path)
        chunks = self.kernel.cost_model.syscall_count(stored.size)
        self.kernel.syscall(process, "openat(%s)" % path)
        self.kernel.syscall(process, "read(%s)" % path, count=chunks)
        self.kernel.copy_kernel_to_user(process, stored.size, label="page-cache:%s" % path)
        self.kernel.syscall(process, "close(%s)" % path)
        self.reads += 1
        return stored

    def _require(self, path: str) -> Payload:
        if path not in self._files:
            raise FileSystemError("no such file: %r" % path)
        return self._files[path]
