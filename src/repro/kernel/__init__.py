"""Kernel substrate: processes, cgroups, pipes, sockets, splice/vmsplice.

This package models the host-OS mechanisms Roadrunner relies on.  Its job is
to make copies and context switches *explicit*: every byte that crosses the
user/kernel boundary is charged to the ledger as a copy, every syscall and
context switch has a fixed cost, and the zero-copy paths (``vmsplice`` into a
pipe, ``splice`` between file descriptors) move page references instead of
bytes.  The paper's claimed gains come precisely from replacing copies with
reference moves, so the substrate is where those claims are actually
exercised rather than assumed.
"""

from repro.kernel.cgroups import Cgroup
from repro.kernel.process import Process
from repro.kernel.buffers import KernelBuffer
from repro.kernel.kernel import Kernel, KernelError
from repro.kernel.pipes import Pipe, PipeError
from repro.kernel.sockets import SocketError, TcpConnection, UnixSocketPair
from repro.kernel.filesystem import FileSystemError, VirtualFileSystem

__all__ = [
    "Cgroup",
    "Process",
    "KernelBuffer",
    "Kernel",
    "KernelError",
    "Pipe",
    "PipeError",
    "SocketError",
    "TcpConnection",
    "UnixSocketPair",
    "FileSystemError",
    "VirtualFileSystem",
]
