"""Control-group style CPU and memory accounting.

The paper measures resource usage "directly from the cgroup, enabling us to
accurately capture the total CPU usage for each sandbox, including detailed
breakdowns of user space and kernel CPU consumption" (Sec. 6.1).  This module
is that accounting surface: every sandbox (container or Wasm VM shim process)
gets a :class:`Cgroup`, operations charge user or kernel CPU seconds to it,
and the experiment harness converts the totals into the CPU-percentage panels
of Figs. 7-10.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.ledger import CpuDomain, MemoryMeter


class CgroupError(ValueError):
    """Raised for invalid accounting operations."""


class Cgroup:
    """Per-sandbox CPU accounting plus an attached memory meter."""

    def __init__(self, name: str, memory: MemoryMeter) -> None:
        if not name:
            raise CgroupError("cgroup name must be non-empty")
        self.name = name
        self.memory = memory
        self._cpu_seconds: Dict[CpuDomain, float] = {
            CpuDomain.USER: 0.0,
            CpuDomain.KERNEL: 0.0,
        }

    def charge_cpu(self, domain: CpuDomain, seconds: float) -> None:
        """Add ``seconds`` of CPU time in ``domain`` (USER or KERNEL)."""
        if seconds < 0:
            raise CgroupError("cpu charge must be non-negative, got %r" % seconds)
        if domain is CpuDomain.NONE:
            return
        if domain not in self._cpu_seconds:
            raise CgroupError("unknown CPU domain %r" % (domain,))
        self._cpu_seconds[domain] += seconds

    @property
    def user_cpu_seconds(self) -> float:
        return self._cpu_seconds[CpuDomain.USER]

    @property
    def kernel_cpu_seconds(self) -> float:
        return self._cpu_seconds[CpuDomain.KERNEL]

    @property
    def total_cpu_seconds(self) -> float:
        return self.user_cpu_seconds + self.kernel_cpu_seconds

    def cpu_percent(self, wall_seconds: float, cores: int = 1) -> float:
        """CPU usage as a percentage of available core-seconds."""
        if wall_seconds <= 0 or cores < 1:
            return 0.0
        return 100.0 * self.total_cpu_seconds / (wall_seconds * cores)

    def user_cpu_percent(self, wall_seconds: float, cores: int = 1) -> float:
        if wall_seconds <= 0 or cores < 1:
            return 0.0
        return 100.0 * self.user_cpu_seconds / (wall_seconds * cores)

    def kernel_cpu_percent(self, wall_seconds: float, cores: int = 1) -> float:
        if wall_seconds <= 0 or cores < 1:
            return 0.0
        return 100.0 * self.kernel_cpu_seconds / (wall_seconds * cores)

    def reset(self) -> None:
        for domain in self._cpu_seconds:
            self._cpu_seconds[domain] = 0.0
        self.memory.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Cgroup(%r, user=%.6f, kernel=%.6f)" % (
            self.name,
            self.user_cpu_seconds,
            self.kernel_cpu_seconds,
        )
