"""Serverless platform substrate: functions, nodes, cluster, workflows, invoker.

This package stands in for the orchestration layers the paper integrates with
(Kubernetes/Knative + containerd): it defines function specs, deploys them
onto cluster nodes as containers or Wasm VMs, models workflows (sequential,
fan-out, fan-in) and drives data transfers through a pluggable
:class:`~repro.platform.channel.DataPassingChannel` — which is where
Roadrunner and the HTTP baselines plug in.
"""

from repro.platform.function import FunctionSpec
from repro.platform.deployment import DeployedFunction
from repro.platform.channel import DataPassingChannel, TransferOutcome, ChannelError
from repro.platform.node import ClusterNode
from repro.platform.cluster import Cluster
from repro.platform.workflow import (
    FanInWorkflow,
    FanOutWorkflow,
    InvocationPattern,
    SequenceWorkflow,
    Workflow,
)
from repro.platform.orchestrator import Orchestrator, PlacementError
from repro.platform.invoker import Invoker, WorkflowResult
from repro.platform.gateway import IngressGateway, RoutingPolicy
from repro.platform.runtime_selector import RuntimeSelector, WorkflowProfile

__all__ = [
    "IngressGateway",
    "RoutingPolicy",
    "RuntimeSelector",
    "WorkflowProfile",
    "FunctionSpec",
    "DeployedFunction",
    "DataPassingChannel",
    "TransferOutcome",
    "ChannelError",
    "ClusterNode",
    "Cluster",
    "Workflow",
    "SequenceWorkflow",
    "FanOutWorkflow",
    "FanInWorkflow",
    "InvocationPattern",
    "Orchestrator",
    "PlacementError",
    "Invoker",
    "WorkflowResult",
]
