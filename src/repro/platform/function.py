"""Function specifications.

A :class:`FunctionSpec` describes a serverless function independent of where
or how it runs: its name, its handler (a Python callable standing in for the
compiled guest code), which runtime packaging it targets and whether it needs
WASI capabilities.  Deployment turns a spec into a
:class:`~repro.platform.deployment.DeployedFunction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.payload import Payload
from repro.wasm.runtime import RuntimeKind


class FunctionSpecError(ValueError):
    """Raised for invalid function definitions."""


def passthrough_handler(payload: Payload) -> Payload:
    """The paper's I/O-bound workload: forward the payload unchanged."""
    return payload


@dataclass(frozen=True)
class FunctionSpec:
    """A serverless function definition."""

    name: str
    runtime: RuntimeKind = RuntimeKind.WASMEDGE
    handler: Callable[[Payload], Payload] = passthrough_handler
    requires_wasi: bool = True
    memory_limit_mb: int = 512
    binary_size: int = 3_190_000
    workflow: str = "default"
    tenant: str = "default"

    def __post_init__(self) -> None:
        if not self.name:
            raise FunctionSpecError("function name must be non-empty")
        if self.memory_limit_mb <= 0:
            raise FunctionSpecError("memory limit must be positive")
        if self.binary_size <= 0:
            raise FunctionSpecError("binary size must be positive")

    @property
    def is_wasm(self) -> bool:
        return self.runtime in (RuntimeKind.WASMEDGE, RuntimeKind.ROADRUNNER)

    def renamed(self, name: str) -> "FunctionSpec":
        """A copy with a different name (used when fanning out replicas)."""
        return FunctionSpec(
            name=name,
            runtime=self.runtime,
            handler=self.handler,
            requires_wasi=self.requires_wasi,
            memory_limit_mb=self.memory_limit_mb,
            binary_size=self.binary_size,
            workflow=self.workflow,
            tenant=self.tenant,
        )
