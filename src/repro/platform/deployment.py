"""Deployed functions: a spec bound to a node, a sandbox and a process.

A deployed function is what data-passing channels operate on.  Depending on
the runtime it wraps either

* a Wasm module instance inside a Wasm VM (plus the WASI interface and the
  host process that runs the VM/shim), or
* a RunC container sandbox.

The channel only needs a handful of facts: which node the function is on,
which process/cgroup to charge, how to reach its memory (Wasm) and which
serializer speed applies (native vs Wasm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.container.runc import ContainerSandbox
from repro.kernel.process import Process
from repro.platform.function import FunctionSpec
from repro.serialization.serializer import ExecutionEnvironment, Serializer
from repro.wasm.module import WasmInstance
from repro.wasm.vm import WasmVM
from repro.wasm.wasi import WasiInterface
from repro.wasm.runtime import RuntimeKind


class DeploymentError(RuntimeError):
    """Raised when a deployed function is used in an unsupported way."""


@dataclass
class DeployedFunction:
    """A function instance running somewhere in the cluster."""

    spec: FunctionSpec
    node_name: str
    process: Process
    serializer: Serializer
    vm: Optional[WasmVM] = None
    instance: Optional[WasmInstance] = None
    wasi: Optional[WasiInterface] = None
    sandbox: Optional[ContainerSandbox] = None

    def __post_init__(self) -> None:
        if self.spec.is_wasm:
            if self.vm is None or self.instance is None:
                raise DeploymentError(
                    "Wasm function %r deployed without a VM/instance" % self.spec.name
                )
        else:
            if self.sandbox is None:
                raise DeploymentError(
                    "container function %r deployed without a sandbox" % self.spec.name
                )

    # -- convenience ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_wasm(self) -> bool:
        return self.spec.is_wasm

    @property
    def cgroup(self):
        return self.process.cgroup

    @property
    def execution_environment(self) -> ExecutionEnvironment:
        return ExecutionEnvironment.WASM if self.is_wasm else ExecutionEnvironment.NATIVE

    def shares_vm_with(self, other: "DeployedFunction") -> bool:
        """True when both functions are module instances of the same Wasm VM."""
        return (
            self.vm is not None
            and other.vm is not None
            and self.vm is other.vm
        )

    def colocated_with(self, other: "DeployedFunction") -> bool:
        """True when both functions run on the same node."""
        return self.node_name == other.node_name

    def same_trust_domain(self, other: "DeployedFunction") -> bool:
        """Workflow+tenant equality: the precondition for user-space sharing."""
        return (
            self.spec.workflow == other.spec.workflow
            and self.spec.tenant == other.spec.tenant
        )

    def require_wasm(self) -> WasmInstance:
        if self.instance is None:
            raise DeploymentError("function %r is not a Wasm deployment" % self.name)
        return self.instance

    def require_container(self) -> ContainerSandbox:
        if self.sandbox is None:
            raise DeploymentError("function %r is not a container deployment" % self.name)
        return self.sandbox

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "wasm" if self.is_wasm else "container"
        return "DeployedFunction(%r, %s, node=%s)" % (self.name, kind, self.node_name)
