"""Workflows: the invocation patterns the evaluation exercises.

The paper evaluates chained (sequential) workflows and fan-out/fan-in
parallel workflows, "reflecting real-world serverless invocation patterns"
(Sec. 6.1).  A workflow here is a small declarative object listing function
names and the edges along which payloads flow; the invoker executes it over
deployed functions and a data-passing channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


class WorkflowError(ValueError):
    """Raised for malformed workflow definitions."""


class InvocationPattern(enum.Enum):
    """The patterns from the Berkeley serverless taxonomy used by the paper."""

    SEQUENTIAL = "sequential"
    FAN_OUT = "fan_out"
    FAN_IN = "fan_in"


@dataclass(frozen=True)
class Workflow:
    """A named set of data-flow edges between functions."""

    name: str
    pattern: InvocationPattern
    edges: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowError("workflow name must be non-empty")
        if not self.edges:
            raise WorkflowError("a workflow needs at least one edge")
        for source, target in self.edges:
            if not source or not target:
                raise WorkflowError("workflow edges need non-empty endpoints")
            if source == target:
                raise WorkflowError("self edges are not allowed (%r -> %r)" % (source, target))

    @property
    def functions(self) -> List[str]:
        """All function names, in first-appearance order."""
        seen: List[str] = []
        for source, target in self.edges:
            if source not in seen:
                seen.append(source)
            if target not in seen:
                seen.append(target)
        return seen

    @property
    def degree(self) -> int:
        """Number of edges (the fan-out degree for fan-out workflows)."""
        return len(self.edges)


class SequenceWorkflow(Workflow):
    """a -> b -> c -> ...: the chained two-function workflow of Sec. 6.1."""

    def __init__(self, names: Sequence[str], name: str = "sequence") -> None:
        if len(names) < 2:
            raise WorkflowError("a sequence needs at least two functions")
        edges = tuple((names[i], names[i + 1]) for i in range(len(names) - 1))
        super().__init__(name=name, pattern=InvocationPattern.SEQUENTIAL, edges=edges)


class FanOutWorkflow(Workflow):
    """One source feeding N targets (the scalability experiments)."""

    def __init__(self, source: str, targets: Sequence[str], name: str = "fan-out") -> None:
        if not targets:
            raise WorkflowError("a fan-out needs at least one target")
        edges = tuple((source, target) for target in targets)
        super().__init__(name=name, pattern=InvocationPattern.FAN_OUT, edges=edges)

    @classmethod
    def of_degree(cls, source: str, degree: int, prefix: str = "fn-b") -> "FanOutWorkflow":
        if degree < 1:
            raise WorkflowError("fan-out degree must be >= 1")
        targets = ["%s-%d" % (prefix, i) for i in range(degree)]
        return cls(source=source, targets=targets, name="fan-out-%d" % degree)


class FanInWorkflow(Workflow):
    """N sources feeding one target (aggregation)."""

    def __init__(self, sources: Sequence[str], target: str, name: str = "fan-in") -> None:
        if not sources:
            raise WorkflowError("a fan-in needs at least one source")
        edges = tuple((source, target) for source in sources)
        super().__init__(name=name, pattern=InvocationPattern.FAN_IN, edges=edges)
