"""The cluster: nodes plus the links between them, sharing one ledger.

Experiments create a cluster in one of two shapes: a single node (intra-node
experiments) or the paper's edge-cloud pair (inter-node experiments).  All
nodes charge the same ledger so one simulated timeline covers the whole
transfer, while CPU and memory remain attributed per sandbox via cgroups.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.link import NetworkLink
from repro.net.topology import Topology
from repro.platform.node import ClusterNode
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.ledger import CostLedger


class ClusterError(RuntimeError):
    """Raised for unknown nodes."""


class Cluster:
    """A set of nodes and the topology connecting them."""

    def __init__(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        ledger: Optional[CostLedger] = None,
    ) -> None:
        self.cost_model = cost_model
        self.ledger = ledger if ledger is not None else CostLedger(name="cluster")
        self.topology = Topology(cost_model)
        self._nodes: Dict[str, ClusterNode] = {}

    def add_node(self, name: str, cores: Optional[int] = None) -> ClusterNode:
        if name in self._nodes:
            raise ClusterError("node %r already exists" % name)
        self.topology.add_node(name)
        node = ClusterNode(name=name, ledger=self.ledger, cost_model=self.cost_model, cores=cores)
        self._nodes[name] = node
        return node

    def connect(
        self,
        a: str,
        b: str,
        bandwidth: Optional[float] = None,
        rtt: Optional[float] = None,
    ) -> NetworkLink:
        return self.topology.connect(a, b, bandwidth=bandwidth, rtt=rtt)

    def node(self, name: str) -> ClusterNode:
        if name not in self._nodes:
            raise ClusterError("unknown node %r" % name)
        return self._nodes[name]

    @property
    def nodes(self) -> Dict[str, ClusterNode]:
        return dict(self._nodes)

    def link_between(self, a: str, b: str) -> NetworkLink:
        return self.topology.link_between(a, b)

    def colocated(self, a: str, b: str) -> bool:
        return self.topology.colocated(a, b)

    # -- canonical shapes -----------------------------------------------------------

    @classmethod
    def single_node(
        cls,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        ledger: Optional[CostLedger] = None,
        name: str = "node-a",
    ) -> "Cluster":
        """One node: the intra-node experiments (Figs. 7 and 9)."""
        cluster = cls(cost_model=cost_model, ledger=ledger)
        cluster.add_node(name)
        return cluster

    @classmethod
    def edge_cloud_pair(
        cls,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        ledger: Optional[CostLedger] = None,
        edge: str = "edge",
        cloud: str = "cloud",
        bandwidth: Optional[float] = None,
        rtt: Optional[float] = None,
    ) -> "Cluster":
        """Two nodes joined by a shaped link (Figs. 6, 8 and 10)."""
        cluster = cls(cost_model=cost_model, ledger=ledger)
        cluster.add_node(edge)
        cluster.add_node(cloud)
        cluster.connect(edge, cloud, bandwidth=bandwidth, rtt=rtt)
        return cluster
