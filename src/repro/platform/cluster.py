"""The cluster: nodes plus the links between them, over sharded ledgers.

Experiments create a cluster in one of two shapes: a single node (intra-node
experiments) or the paper's edge-cloud pair (inter-node experiments).  Cost
accounting is sharded: every node charges its own
:class:`~repro.sim.ledger.NodeLedger` (named ``ledger:<node>``, unique per
cluster), and :attr:`Cluster.ledger` is the
:class:`~repro.sim.ledger.ClusterLedger` merging the shards into one
deterministic timeline — the same read surface the old shared ledger
offered, which is why every pre-shard caller keeps working.  All shards
share one simulated clock in serial runs, so a transfer spanning two nodes
still advances a single timeline, while CPU and memory remain attributed
per sandbox via cgroups and per node via the shards.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.link import NetworkLink
from repro.net.topology import Topology
from repro.platform.node import ClusterNode
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.ledger import ClusterLedger, CostLedger


class ClusterError(RuntimeError):
    """Raised for unknown nodes."""


class Cluster:
    """A set of nodes and the topology connecting them."""

    def __init__(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        ledger: Optional[CostLedger] = None,
    ) -> None:
        self.cost_model = cost_model
        if isinstance(ledger, ClusterLedger):
            self.ledger = ledger
        elif ledger is not None:
            # A caller-supplied plain ledger becomes the cluster shard: its
            # clock drives the whole cluster and charges recorded on the
            # caller's handle stay part of the merged view.  The reverse
            # does NOT hold — node-scoped work lands on per-node shards, so
            # totals must be read through ``cluster.ledger`` (the merged
            # view), not through the handle that was passed in.
            self.ledger = ClusterLedger(backing=ledger, name=ledger.name or "cluster")
        else:
            self.ledger = ClusterLedger(name="cluster")
        self.topology = Topology(cost_model)
        self._nodes: Dict[str, ClusterNode] = {}

    def add_node(self, name: str, cores: Optional[int] = None) -> ClusterNode:
        if name in self._nodes:
            raise ClusterError("node %r already exists" % name)
        self.topology.add_node(name)
        node = ClusterNode(
            name=name,
            ledger=self.ledger.shard(name),
            cost_model=self.cost_model,
            cores=cores,
        )
        self._nodes[name] = node
        return node

    def node_ledger(self, name: str):
        """The per-node cost shard for ``name`` (the node's charging handle)."""
        return self.ledger.node_shard(name)

    def connect(
        self,
        a: str,
        b: str,
        bandwidth: Optional[float] = None,
        rtt: Optional[float] = None,
    ) -> NetworkLink:
        return self.topology.connect(a, b, bandwidth=bandwidth, rtt=rtt)

    def node(self, name: str) -> ClusterNode:
        if name not in self._nodes:
            raise ClusterError("unknown node %r" % name)
        return self._nodes[name]

    @property
    def nodes(self) -> Dict[str, ClusterNode]:
        return dict(self._nodes)

    def link_between(self, a: str, b: str) -> NetworkLink:
        return self.topology.link_between(a, b)

    def colocated(self, a: str, b: str) -> bool:
        return self.topology.colocated(a, b)

    # -- canonical shapes -----------------------------------------------------------

    @classmethod
    def single_node(
        cls,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        ledger: Optional[CostLedger] = None,
        name: str = "node-a",
    ) -> "Cluster":
        """One node: the intra-node experiments (Figs. 7 and 9)."""
        cluster = cls(cost_model=cost_model, ledger=ledger)
        cluster.add_node(name)
        return cluster

    @classmethod
    def edge_cloud_pair(
        cls,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        ledger: Optional[CostLedger] = None,
        edge: str = "edge",
        cloud: str = "cloud",
        bandwidth: Optional[float] = None,
        rtt: Optional[float] = None,
    ) -> "Cluster":
        """Two nodes joined by a shaped link (Figs. 6, 8 and 10)."""
        cluster = cls(cost_model=cost_model, ledger=ledger)
        cluster.add_node(edge)
        cluster.add_node(cloud)
        cluster.connect(edge, cloud, bandwidth=bandwidth, rtt=rtt)
        return cluster
