"""The orchestrator: placement and deployment of function specs onto nodes.

Roadrunner deliberately does *not* bring its own scheduler — "Roadrunner
optimizes communication regardless of the scheduler's decisions" (Sec. 2.2).
The orchestrator therefore takes an explicit placement (function -> node) or
falls back to round-robin, and exposes the two colocation flavours the
evaluation needs: deploy several Wasm functions into one shared VM
(user-space mode) or give every function its own sandbox.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.platform.cluster import Cluster
from repro.platform.deployment import DeployedFunction
from repro.platform.function import FunctionSpec
from repro.wasm.vm import WasmVM


class PlacementError(RuntimeError):
    """Raised for invalid placements (unknown nodes, incompatible colocations)."""


class Orchestrator:
    """Places and deploys functions on a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._deployments: Dict[str, DeployedFunction] = {}
        self._shared_vms: Dict[str, WasmVM] = {}

    # -- placement ------------------------------------------------------------------

    def place(
        self,
        specs: Sequence[FunctionSpec],
        placement: Optional[Dict[str, str]] = None,
    ) -> Dict[str, str]:
        """Return a function->node mapping, validating any explicit placement."""
        nodes = list(self.cluster.nodes)
        if not nodes:
            raise PlacementError("the cluster has no nodes")
        result: Dict[str, str] = {}
        for index, spec in enumerate(specs):
            if placement and spec.name in placement:
                node = placement[spec.name]
                if node not in self.cluster.nodes:
                    raise PlacementError("placement maps %r to unknown node %r" % (spec.name, node))
            else:
                node = nodes[index % len(nodes)]
            result[spec.name] = node
        return result

    # -- deployment ----------------------------------------------------------------------

    def deploy(
        self,
        spec: FunctionSpec,
        node_name: str,
        share_vm_key: Optional[str] = None,
        materialize: bool = True,
        charge_cold_start: bool = False,
    ) -> DeployedFunction:
        """Deploy one spec onto one node.

        ``share_vm_key`` names a VM-sharing group: all functions deployed with
        the same key on the same node end up in one Wasm VM (the precondition
        for Roadrunner's user-space mode).
        """
        if spec.name in self._deployments:
            raise PlacementError("function %r is already deployed" % spec.name)
        node = self.cluster.node(node_name)
        if not spec.is_wasm:
            deployed = node.deploy_container(spec, charge_cold_start=charge_cold_start)
        else:
            shared_vm = None
            if share_vm_key is not None:
                vm_key = "%s/%s" % (node_name, share_vm_key)
                shared_vm = self._shared_vms.get(vm_key)
            deployed = node.deploy_wasm(
                spec,
                shared_vm=shared_vm,
                materialize=materialize,
                charge_cold_start=charge_cold_start,
            )
            if share_vm_key is not None and shared_vm is None:
                self._shared_vms["%s/%s" % (node_name, share_vm_key)] = deployed.vm
        self._deployments[spec.name] = deployed
        return deployed

    def deploy_all(
        self,
        specs: Sequence[FunctionSpec],
        placement: Optional[Dict[str, str]] = None,
        share_vm_key: Optional[str] = None,
        materialize: bool = True,
    ) -> List[DeployedFunction]:
        """Place and deploy a list of specs; returns deployments in order."""
        mapping = self.place(specs, placement)
        return [
            self.deploy(
                spec,
                mapping[spec.name],
                share_vm_key=share_vm_key,
                materialize=materialize,
            )
            for spec in specs
        ]

    # -- lookups ----------------------------------------------------------------------------

    def deployment(self, name: str) -> DeployedFunction:
        if name not in self._deployments:
            raise PlacementError("function %r is not deployed" % name)
        return self._deployments[name]

    @property
    def deployments(self) -> Dict[str, DeployedFunction]:
        return dict(self._deployments)

    def undeploy(self, name: str) -> None:
        """Remove a deployment and release its resources on the node.

        The node stops the container sandbox or terminates the Wasm module
        instance, exiting and reaping the backing process once nothing uses
        it.  If that retires a shared VM, the sharing entry is dropped so a
        later deploy with the same key creates (and pays for) a fresh VM.
        """
        if name not in self._deployments:
            raise PlacementError("function %r is not deployed" % name)
        deployed = self._deployments.pop(name)
        retired_vm = self.cluster.node(deployed.node_name).undeploy(deployed)
        if retired_vm is not None:
            self._shared_vms = {
                key: vm for key, vm in self._shared_vms.items() if vm.name != retired_vm
            }
