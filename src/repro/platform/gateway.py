"""Platform ingress: how clients reach short-lived serverless functions.

"Since serverless functions are short-lived by design, a single function
cannot be directly addressed.  Therefore, clients rely on the platform
ingress and Load Balancers to access the serverless function" (Sec. 1).  The
gateway models that front door: it keeps a pool of replicas per function,
routes each client request to one of them (round-robin or least-loaded),
scales from zero by paying the runtime's cold-start cost, and charges the
ingress routing overhead per request.

The traffic engine (:mod:`repro.traffic`) drives the gateway under sustained
load: :meth:`IngressGateway.route_among` is the admission hook that routes
only to replicas the engine considers ready and under their concurrency
limit, and :meth:`IngressGateway.remove_replica` is the scale-down hook the
autoscaler uses to reclaim idle replicas after their keep-alive expires.

Admission queueing also lives here: :class:`FairQueue` keeps one bounded
queue per tenant and decides dispatch order either globally FIFO (arrival
order, tenant-blind) or by weighted fair queueing, where each tenant's
share of dispatches converges to its weight under saturation and a
starvation guard bounds how long any backlogged tenant can be passed over.
Weighted fair queueing comes in two flavours: per-request tags (``wfq``,
every dispatch costs one virtual unit) and cost-weighted tags
(``wfq-cost``, every dispatch costs the request's estimated service time,
fed back by the engine as an online per-tenant EWMA), which keeps core
shares proportional to weights even when tenants' payload sizes — and
therefore per-request costs — are wildly unequal.  Within one tenant's
queue, dispatch is either arrival order (the default) or
earliest-deadline-first with priority tiers (:class:`IntraTenantOrder`).
The queue stores opaque items, so the gateway stays independent of the
traffic subsystem's request type.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.platform.deployment import DeployedFunction
from repro.platform.function import FunctionSpec
from repro.platform.orchestrator import Orchestrator
from repro.sim.ledger import CostCategory, CpuDomain

if TYPE_CHECKING:  # imported lazily to keep platform free of traffic imports
    from repro.gateway.middleware import MiddlewarePipeline


class GatewayError(RuntimeError):
    """Raised for unknown functions or invalid routing policies."""


class RoutingPolicy(enum.Enum):
    """How the load balancer spreads requests over replicas."""

    ROUND_ROBIN = "round_robin"
    LEAST_LOADED = "least_loaded"


class FairnessPolicy(enum.Enum):
    """How queued requests from different tenants are ordered for dispatch."""

    FIFO = "fifo"          # one logical global queue: strict arrival order
    WFQ = "wfq"            # weighted fair queueing, one virtual unit per request
    WFQ_COST = "wfq-cost"  # weighted fair queueing, tags advance by service cost


class IntraTenantOrder(enum.Enum):
    """How requests *within* one tenant's queue are ordered for dispatch."""

    FIFO = "fifo"  # arrival order (the classic single-class queue)
    EDF = "edf"    # priority tiers, earliest deadline first within a tier


@dataclass
class TenantQueueStats:
    """Per-tenant admission accounting (drops, timeouts and sheds happen here)."""

    tenant: str
    weight: int
    enqueued: int = 0
    dispatched: int = 0
    dropped: int = 0
    timed_out: int = 0
    #: Hard-deadline admission control: requests removed at dispatch time
    #: because their deadline could no longer be met.
    shed: int = 0


@dataclass(frozen=True, order=True)
class _Entry:
    """One queued item with its scheduling keys, ordered for the heap.

    Comparison runs left to right and ``seq`` is globally unique, so two
    entries never compare beyond it — the opaque ``item`` is never compared
    — and every ordering decision is a deterministic total order.  Under
    :attr:`IntraTenantOrder.FIFO` both class keys are forced to constants,
    so the heap degenerates to exact arrival order whatever priorities or
    deadlines the items carry.
    """

    priority: int
    deadline: float  # absolute deadline; +inf when the item has none
    seq: int
    item_id: int = field(compare=False)
    item: object = field(compare=False)
    cost: float = field(compare=False)  # service-cost snapshot at enqueue


@dataclass
class _TenantQueue:
    """One tenant's bounded queue plus its fair-queueing state."""

    name: str
    weight: int
    index: int  # registration order: the deterministic tie-breaker
    items: List[_Entry] = field(default_factory=list)  # heap
    live: Set[int] = field(default_factory=set)
    finish_tag: float = 0.0
    skipped: int = 0
    cost_estimate: Optional[float] = None  # EWMA of measured service times
    stats: TenantQueueStats = None  # type: ignore[assignment]


class FairQueue:
    """Per-tenant admission queues with FIFO or weighted-fair dispatch.

    WFQ is the classic virtual-time scheme: each tenant carries a finish tag
    advanced per dispatch, and the backlogged tenant with the smallest tag
    goes first.  Under plain ``wfq`` the tag advances by ``1/weight`` — fine
    while requests within one tenant are near-uniform in cost.  Under
    ``wfq-cost`` it advances by ``cost/weight``, where the cost is the
    request's estimated service time snapshotted at enqueue from the
    tenant's online EWMA (:meth:`record_service_cost`, fed back by the
    engine), so core *time* — not request count — converges to the weight
    split when tenants' payload sizes are wildly unequal.  A tenant that
    was idle re-enters at the current virtual time, so silence banks no
    credit — a bursty tenant cannot monopolise the cluster on arrival.  The
    starvation guard promotes any backlogged tenant that ``starvation_guard``
    consecutive dispatches have passed over, bounding worst-case head-of-line
    wait even under extreme weight ratios.

    Within one tenant's queue, :attr:`IntraTenantOrder.FIFO` serves arrival
    order and :attr:`IntraTenantOrder.EDF` serves priority tiers (lower tier
    first), earliest absolute deadline within a tier, deadline-less items
    last; arrival order breaks all remaining ties, so seeded runs are
    byte-reproducible.

    Cancelled items (queue timeouts) are removed lazily: the id leaves
    ``live`` immediately and the ghost entry is discarded when it reaches
    the head — except that a cancelled *head* is pruned eagerly, so the
    next dispatch decision (head arrival seq for global FIFO, head deadline
    for EDF, head cost for cost-weighted tags) never keys off a ghost.
    """

    def __init__(
        self,
        policy: FairnessPolicy = FairnessPolicy.FIFO,
        starvation_guard: int = 32,
        intra: IntraTenantOrder = IntraTenantOrder.FIFO,
        cost_alpha: float = 0.3,
    ) -> None:
        if starvation_guard < 1:
            raise GatewayError("starvation_guard must be >= 1")
        if not 0.0 < cost_alpha <= 1.0:
            raise GatewayError("cost_alpha must be in (0, 1]")
        self.policy = policy
        self.starvation_guard = starvation_guard
        self.intra = intra
        self.cost_alpha = cost_alpha
        self._tenants: Dict[str, _TenantQueue] = {}
        self._seq = itertools.count()
        self._virtual = 0.0

    # -- tenant management ---------------------------------------------------------

    def register_tenant(self, tenant: str, weight: int = 1) -> None:
        if weight < 1:
            raise GatewayError("tenant weight must be >= 1, got %r" % weight)
        if tenant in self._tenants:
            raise GatewayError("tenant %r is already registered" % tenant)
        queue = _TenantQueue(name=tenant, weight=weight, index=len(self._tenants))
        queue.stats = TenantQueueStats(tenant=tenant, weight=weight)
        self._tenants[tenant] = queue

    @property
    def tenants(self) -> List[str]:
        return list(self._tenants)

    def weights(self) -> Dict[str, int]:
        return {name: queue.weight for name, queue in self._tenants.items()}

    def stats(self, tenant: str) -> TenantQueueStats:
        return self._require(tenant).stats

    def all_stats(self) -> Dict[str, TenantQueueStats]:
        return {name: queue.stats for name, queue in self._tenants.items()}

    # -- service-cost feedback -----------------------------------------------------

    #: Floor for measured service costs: a zero-duration request (empty
    #: payload, free cost model) is a legitimate measurement, but a zero
    #: EWMA would make ``wfq-cost`` tags stop advancing entirely.
    MIN_SERVICE_COST_S = 1e-9

    def record_service_cost(self, tenant: str, service_s: float) -> None:
        """Fold one measured service time into the tenant's cost EWMA.

        The engine calls this at dispatch, when the request's deterministic
        service time is known; later enqueues snapshot the updated estimate.
        Zero-duration measurements clamp to :attr:`MIN_SERVICE_COST_S`
        rather than raising — only a genuinely negative cost is an error.
        """
        if service_s < 0:
            raise GatewayError("service cost must be non-negative, got %r" % service_s)
        service_s = max(service_s, self.MIN_SERVICE_COST_S)
        queue = self._require(tenant)
        if queue.cost_estimate is None:
            queue.cost_estimate = service_s
        else:
            queue.cost_estimate = (
                self.cost_alpha * service_s + (1.0 - self.cost_alpha) * queue.cost_estimate
            )

    def cost_estimate(self, tenant: str) -> Optional[float]:
        """The tenant's current EWMA service-time estimate (``None`` = no data)."""
        return self._require(tenant).cost_estimate

    def _default_cost(self) -> float:
        """Cost snapshot for a tenant with no measurements yet.

        The mean of the other tenants' estimates: a cold tenant is assumed
        to cost an average request, keeping its tags in the same *unit*
        (seconds) as everyone else's — a fixed 1.0 against millisecond
        estimates would debit the newcomer hundreds of requests per
        dispatch.  One virtual unit only before any measurement exists.
        """
        known = [
            queue.cost_estimate
            for queue in self._tenants.values()
            if queue.cost_estimate is not None
        ]
        return sum(known) / len(known) if known else 1.0

    # -- queue operations ----------------------------------------------------------

    def enqueue(
        self,
        tenant: str,
        item_id: int,
        item: object,
        limit: Optional[int] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
        cost: Optional[float] = None,
    ) -> bool:
        """Admit one item; ``False`` means the tenant's queue was full (drop).

        ``priority`` (lower = more urgent) and ``deadline`` (absolute, in
        engine time) only order dispatch under :attr:`IntraTenantOrder.EDF`.
        ``cost`` overrides the tenant's EWMA estimate for this item's
        ``wfq-cost`` tag advance (defaults to the estimate, or the fleet
        mean — see :meth:`_default_cost` — before the tenant's first
        measurement arrives).
        """
        queue = self._require(tenant)
        if limit is not None and len(queue.live) >= limit:
            queue.stats.dropped += 1
            return False
        if not queue.live and self.policy is not FairnessPolicy.FIFO:
            # Re-entering after idleness: catch up to the current virtual
            # time so the backlog built by others is not leapfrogged, and
            # shed any stale skip count — a fresh backlog has earned no
            # starvation-guard promotion.
            queue.finish_tag = max(queue.finish_tag, self._virtual)
            queue.skipped = 0
        if cost is None:
            cost = queue.cost_estimate if queue.cost_estimate is not None else self._default_cost()
        if self.intra is IntraTenantOrder.EDF:
            entry = _Entry(
                priority=priority,
                deadline=deadline if deadline is not None else math.inf,
                seq=next(self._seq),
                item_id=item_id,
                item=item,
                cost=cost,
            )
        else:
            # Constant class keys: the heap orders purely by arrival seq.
            entry = _Entry(
                priority=0, deadline=0.0, seq=next(self._seq),
                item_id=item_id, item=item, cost=cost,
            )
        heapq.heappush(queue.items, entry)
        queue.live.add(item_id)
        queue.stats.enqueued += 1
        return True

    def cancel(self, tenant: str, item_id: int) -> bool:
        """Remove a waiting item (queue timeout); ``False`` if already gone."""
        queue = self._require(tenant)
        if item_id not in queue.live:
            return False
        queue.live.discard(item_id)
        queue.stats.timed_out += 1
        # Eagerly prune a cancelled head: leaving the ghost in place would
        # let the next dispatch decision key off its seq/deadline/cost until
        # some later traversal happened to discard it.
        self._prune(queue)
        return True

    def depth(self, tenant: str) -> int:
        return len(self._require(tenant).live)

    def is_queued(self, tenant: str, item_id: int) -> bool:
        """Whether ``item_id`` is still waiting (not dispatched/cancelled)."""
        return item_id in self._require(tenant).live

    def total_depth(self) -> int:
        return sum(len(queue.live) for queue in self._tenants.values())

    def dispatch_order(self) -> List[str]:
        """Backlogged tenants in the order dispatch should try them.

        Callers may serve a later tenant when an earlier one has no eligible
        replica (work conservation); committing a dispatch goes through
        :meth:`pop`, which is where tags, skip counters and stats advance.
        """
        if len(self._tenants) == 1:
            # One tenant (the whole single-stream engine): every policy
            # reduces to "that tenant, if backlogged" — skip the sorts.
            (queue,) = self._tenants.values()
            return [queue.name] if self._head(queue) is not None else []
        backlogged = [queue for queue in self._tenants.values() if self._head(queue) is not None]
        if self.policy is FairnessPolicy.FIFO:
            # With EDF inside a tenant, "arrival order" means the arrival
            # seq of whichever entry the tenant would dispatch next.
            backlogged.sort(key=lambda queue: queue.items[0].seq)
            return [queue.name for queue in backlogged]
        starved = [queue for queue in backlogged if queue.skipped >= self.starvation_guard]
        rest = [queue for queue in backlogged if queue.skipped < self.starvation_guard]
        # Equal virtual tags break by registration order (queue.index): the
        # order is a pure function of registration sequence and dispatch
        # history, never of dict iteration or hashing.
        starved.sort(key=lambda queue: (-queue.skipped, queue.finish_tag, queue.index))
        rest.sort(key=lambda queue: (queue.finish_tag, queue.index))
        return [queue.name for queue in starved + rest]

    def peek(self, tenant: str) -> object:
        """The item :meth:`pop` would dispatch next, without committing.

        Admission control looks here first: a hard-deadline request whose
        deadline can no longer be met is removed via :meth:`shed_head`
        instead of being popped, so shedding never advances fair-queueing
        tags or counts as a dispatch.
        """
        queue = self._require(tenant)
        entry = self._head(queue)
        if entry is None:
            raise GatewayError("tenant %r has no queued requests" % tenant)
        return entry.item

    def shed_head(self, tenant: str) -> object:
        """Remove the head item as shed (hard-deadline admission control).

        Unlike :meth:`pop`, shedding advances no virtual-time tag and resets
        no skip counter: the tenant consumed no service, so its place in the
        fair order is untouched.  Unlike :meth:`cancel`, the removal counts
        as ``shed`` — the operator-visible signal that admission control,
        not client impatience, refused the request.
        """
        queue = self._require(tenant)
        entry = self._head(queue)
        if entry is None:
            raise GatewayError("tenant %r has no queued requests" % tenant)
        heapq.heappop(queue.items)
        queue.live.discard(entry.item_id)
        queue.stats.shed += 1
        return entry.item

    def pop(self, tenant: str) -> object:
        """Commit one dispatch from ``tenant`` and return the item."""
        queue = self._require(tenant)
        if self._head(queue) is None:
            raise GatewayError("tenant %r has no queued requests" % tenant)
        entry = heapq.heappop(queue.items)
        queue.live.discard(entry.item_id)
        queue.stats.dispatched += 1
        if self.policy is not FairnessPolicy.FIFO:
            self._virtual = max(self._virtual, queue.finish_tag)
            advance = entry.cost if self.policy is FairnessPolicy.WFQ_COST else 1.0
            queue.finish_tag += advance / queue.weight
            queue.skipped = 0
            for other in self._tenants.values():
                if other is not queue and other.live:
                    other.skipped += 1
        return entry.item

    def drain(self, tenant: str) -> List[object]:
        """Evacuate every waiting item in dispatch order, without accounting.

        Used by federation when a region fails: the queued requests are not
        dispatched, dropped, timed out or shed *here* — they are re-routed to
        a surviving region, which does its own admission accounting.  Tags,
        skip counters and stats are therefore untouched; only the backlog is
        removed.  Returns ``(item_id, item)`` pairs in heap order.
        """
        queue = self._require(tenant)
        drained: List[object] = []
        while True:
            self._prune(queue)
            if not queue.items:
                break
            entry = heapq.heappop(queue.items)
            queue.live.discard(entry.item_id)
            drained.append((entry.item_id, entry.item))
        return drained

    # -- internals -----------------------------------------------------------------

    def _prune(self, queue: _TenantQueue) -> None:
        """Discard cancelled ghosts sitting at the heap head."""
        while queue.items and queue.items[0].item_id not in queue.live:
            heapq.heappop(queue.items)

    def _head(self, queue: _TenantQueue) -> Optional[_Entry]:
        """The next live entry, discarding cancelled ghosts on the way."""
        self._prune(queue)
        return queue.items[0] if queue.items else None

    def _require(self, tenant: str) -> _TenantQueue:
        if tenant not in self._tenants:
            raise GatewayError("tenant %r is not registered with the queue" % tenant)
        return self._tenants[tenant]


#: Fixed per-request ingress cost (routing table lookup, connection handling).
INGRESS_OVERHEAD_S = 250.0e-6


@dataclass
class _ReplicaState:
    deployed: DeployedFunction
    in_flight: int = 0
    served: int = 0
    #: Set when the replica leaves the pool, so holders of a direct state
    #: reference (the traffic engine's O(1) release path) still get the
    #: stale-handle error a pool scan used to produce.
    retired: bool = False
    #: Opaque caller attachment: the traffic engine stores its own replica
    #: view here so :meth:`IngressGateway.select_replica` results map back
    #: without a name lookup.
    handle: Optional[object] = None


def _in_flight_of(state: _ReplicaState) -> int:
    return state.in_flight


class IngressGateway:
    """The platform's ingress / load-balancer pair."""

    def __init__(
        self,
        orchestrator: Orchestrator,
        policy: RoutingPolicy = RoutingPolicy.ROUND_ROBIN,
        fairness: FairnessPolicy = FairnessPolicy.FIFO,
        starvation_guard: int = 32,
        intra: IntraTenantOrder = IntraTenantOrder.FIFO,
        pipeline: Optional["MiddlewarePipeline"] = None,
    ) -> None:
        self.orchestrator = orchestrator
        self.policy = policy
        #: Optional middleware chain (:mod:`repro.gateway.middleware`) the
        #: traffic engine threads every request through.  ``None`` (or an
        #: empty pipeline) leaves the request path exactly as before.
        self.pipeline = pipeline
        #: Admission queues (per tenant); drivers register tenants and weights.
        self.queue = FairQueue(policy=fairness, starvation_guard=starvation_guard, intra=intra)
        self._pools: Dict[str, List[_ReplicaState]] = {}
        self._round_robin_cursor: Dict[str, int] = {}
        self._replica_serial: Dict[str, int] = {}
        self._deferred_ingress: Dict[str, int] = {}
        self.requests_routed = 0
        self.cold_starts = 0
        self.scale_downs = 0

    # -- pool management ----------------------------------------------------------

    def register(self, spec: FunctionSpec, replicas: int = 1, node_name: Optional[str] = None,
                 share_vm_key: Optional[str] = None, charge_cold_start: bool = True) -> List[DeployedFunction]:
        """Deploy ``replicas`` instances of ``spec`` and add them to the pool.

        Scale-from-zero is modelled by charging each replica's cold start at
        registration time (the paper's Fig. 2a costs).
        """
        if replicas < 1:
            raise GatewayError("replicas must be >= 1")
        nodes = list(self.orchestrator.cluster.nodes)
        if node_name is not None and node_name not in nodes:
            raise GatewayError("unknown node %r" % node_name)
        pool = self._pools.setdefault(spec.name, [])
        deployed_replicas: List[DeployedFunction] = []
        for _ in range(replicas):
            serial = self._replica_serial.get(spec.name, 0)
            self._replica_serial[spec.name] = serial + 1
            replica_spec = spec.renamed("%s-r%d" % (spec.name, serial))
            target_node = node_name or nodes[serial % len(nodes)]
            deployed = self.orchestrator.deploy(
                replica_spec,
                target_node,
                share_vm_key=share_vm_key,
                materialize=True,
                charge_cold_start=charge_cold_start,
            )
            deployed_replicas.append(deployed)
            if charge_cold_start:
                self.cold_starts += 1
        pool.extend(_ReplicaState(deployed=replica) for replica in deployed_replicas)
        self._round_robin_cursor.setdefault(spec.name, 0)
        return deployed_replicas

    def replicas(self, function: str) -> List[DeployedFunction]:
        return [state.deployed for state in self._require_pool(function)]

    def scale_to(self, spec: FunctionSpec, replicas: int, allow_shrink: bool = False) -> None:
        """Grow (or, with ``allow_shrink``, shrink) the pool to ``replicas``.

        By default scale-down is a separate, per-replica operation
        (:meth:`remove_replica`) because only the caller knows which replicas
        are idle and safe to reclaim.  ``allow_shrink=True`` reclaims idle
        replicas (newest first) down to the target, raising if too many
        still have requests in flight.
        """
        if replicas < 0:
            raise GatewayError("replicas must be non-negative")
        current = len(self._pools.get(spec.name, []))
        if replicas > current:
            self.register(spec, replicas=replicas - current)
        elif replicas < current and allow_shrink:
            pool = self._require_pool(spec.name)
            idle = [state.deployed for state in reversed(pool) if state.in_flight == 0]
            needed = current - replicas
            if len(idle) < needed:
                raise GatewayError(
                    "cannot shrink %r to %d replicas: only %d of %d are idle"
                    % (spec.name, replicas, len(idle), current)
                )
            for deployed in idle[:needed]:
                self.remove_replica(spec.name, deployed)

    def remove_replica(self, function: str, deployed: DeployedFunction) -> None:
        """Reclaim one replica (autoscaler keep-alive expiry).

        The replica must be idle: reclaiming a replica with requests in
        flight would strand them.
        """
        pool = self._require_pool(function)
        for index, state in enumerate(pool):
            if state.deployed is deployed:
                if state.in_flight > 0:
                    raise GatewayError(
                        "replica %r has %d requests in flight; drain before removal"
                        % (deployed.name, state.in_flight)
                    )
                state.retired = True
                del pool[index]
                self.orchestrator.undeploy(deployed.name)
                self.scale_downs += 1
                return
        raise GatewayError("replica %r does not belong to function %r" % (deployed.name, function))

    # -- routing --------------------------------------------------------------------

    def route(self, function: str) -> DeployedFunction:
        """Pick a replica for one request and charge the ingress overhead."""
        return self.route_among(function, None)

    def route_among(
        self,
        function: str,
        eligible: Optional[Sequence[DeployedFunction]],
    ) -> DeployedFunction:
        """Admission hook: route one request over a subset of the pool.

        ``eligible`` restricts the choice to replicas the caller considers
        available (warmed up, under their concurrency limit); ``None`` means
        the whole pool.  The routing policy applies within the subset, and
        the per-request ingress overhead is charged either way.
        """
        pool = self._require_pool(function)
        if eligible is None:
            candidates = pool
        else:
            wanted = {id(deployed) for deployed in eligible}
            candidates = [state for state in pool if id(state.deployed) in wanted]
            if not candidates:
                raise GatewayError("no eligible replicas for function %r" % function)
        if self.policy is RoutingPolicy.ROUND_ROBIN:
            # The cursor walks the *pool* and skips ineligible members, so
            # rotation order is stable even when the eligible subset changes
            # between requests (indexing the cursor into a changing subset
            # would not be round-robin at all).
            cursor = self._round_robin_cursor[function]
            eligible_ids = {id(state) for state in candidates}
            state = candidates[0]
            for offset in range(len(pool)):
                probe = pool[(cursor + offset) % len(pool)]
                if id(probe) in eligible_ids:
                    state = probe
                    # Normalized modulo the pool: the raw cursor otherwise
                    # grows one per request, forever, and overflows the
                    # useful integer range on genuinely long runs.
                    self._round_robin_cursor[function] = (cursor + offset + 1) % len(pool)
                    break
        else:
            state = min(candidates, key=lambda replica: replica.in_flight)
        state.in_flight += 1
        state.served += 1
        self.requests_routed += 1
        ledger = self.orchestrator.cluster.ledger
        ledger.charge(
            CostCategory.HTTP,
            INGRESS_OVERHEAD_S,
            cpu_domain=CpuDomain.USER,
            label="ingress:%s" % function,
        )
        return state.deployed

    def select_replica(
        self, function: str, candidates: Sequence[_ReplicaState]
    ) -> _ReplicaState:
        """The traffic engine's hot routing path: pick among live states.

        Policy-identical to :meth:`route_among` (the round-robin cursor walks
        the pool; least-loaded takes the first minimum in pool order), but
        works directly on :class:`_ReplicaState` handles the caller already
        holds, and *defers* the per-request ingress ledger charge: the count
        accumulates per function and :meth:`flush_deferred_ingress` emits one
        batched charge per function, so million-request runs do not allocate
        a million Charge rows.
        """
        if not candidates:
            raise GatewayError("no eligible replicas for function %r" % function)
        if self.policy is RoutingPolicy.ROUND_ROBIN:
            pool = self._require_pool(function)
            cursor = self._round_robin_cursor[function]
            eligible_ids = {id(state) for state in candidates}
            state = candidates[0]
            for offset in range(len(pool)):
                probe = pool[(cursor + offset) % len(pool)]
                if id(probe) in eligible_ids:
                    state = probe
                    self._round_robin_cursor[function] = (cursor + offset + 1) % len(pool)
                    break
        elif len(candidates) == 1:
            state = candidates[0]
        else:
            state = min(candidates, key=_in_flight_of)
        state.in_flight += 1
        state.served += 1
        self.requests_routed += 1
        self._deferred_ingress[function] = self._deferred_ingress.get(function, 0) + 1
        return state

    def release_state(self, function: str, state: _ReplicaState) -> None:
        """O(1) counterpart of :meth:`release` for held state handles."""
        if state.retired:
            raise GatewayError(
                "replica %r does not belong to function %r"
                % (state.deployed.name, function)
            )
        if state.in_flight <= 0:
            raise GatewayError(
                "replica %r has no requests in flight to release" % state.deployed.name
            )
        state.in_flight -= 1

    def flush_deferred_ingress(self) -> None:
        """Charge the ingress overhead accumulated by :meth:`select_replica`.

        One batched charge per function (``units`` = request count) keeps the
        ledger totals equal to per-request charging while the charge list
        stays O(functions).
        """
        deferred, self._deferred_ingress = self._deferred_ingress, {}
        ledger = self.orchestrator.cluster.ledger
        for function, count in deferred.items():
            ledger.charge(
                CostCategory.HTTP,
                count * INGRESS_OVERHEAD_S,
                cpu_domain=CpuDomain.USER,
                label="ingress:%s" % function,
                units=count,
            )

    def pool_states(self, function: str) -> List[_ReplicaState]:
        """The live per-replica states, in pool order (engine fast path)."""
        return self._require_pool(function)

    def release(self, function: str, deployed: DeployedFunction) -> None:
        """Mark a routed request as finished (load-balancer bookkeeping).

        Releasing a replica that is not in the pool (a stale handle after
        scale-down) or that has nothing in flight (a double release) raises:
        both used to decay silently into corrupted in-flight accounting,
        which the autoscaler then trusted.
        """
        for state in self._require_pool(function):
            if state.deployed is deployed:
                if state.in_flight <= 0:
                    raise GatewayError(
                        "replica %r has no requests in flight to release" % deployed.name
                    )
                state.in_flight -= 1
                return
        raise GatewayError("replica %r does not belong to function %r" % (deployed.name, function))

    def served_per_replica(self, function: str) -> Dict[str, int]:
        return {state.deployed.name: state.served for state in self._require_pool(function)}

    def in_flight(self, function: str) -> Dict[str, int]:
        """Requests currently executing per replica (autoscaler load sample)."""
        return {state.deployed.name: state.in_flight for state in self._require_pool(function)}

    def total_in_flight(self, function: str) -> int:
        return sum(state.in_flight for state in self._require_pool(function))

    def pool_size(self, function: str) -> int:
        return len(self._pools.get(function, []))

    def _require_pool(self, function: str) -> List[_ReplicaState]:
        if function not in self._pools or not self._pools[function]:
            raise GatewayError("function %r has no registered replicas" % function)
        return self._pools[function]
