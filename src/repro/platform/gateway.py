"""Platform ingress: how clients reach short-lived serverless functions.

"Since serverless functions are short-lived by design, a single function
cannot be directly addressed.  Therefore, clients rely on the platform
ingress and Load Balancers to access the serverless function" (Sec. 1).  The
gateway models that front door: it keeps a pool of replicas per function,
routes each client request to one of them (round-robin or least-loaded),
scales from zero by paying the runtime's cold-start cost, and charges the
ingress routing overhead per request.

The traffic engine (:mod:`repro.traffic`) drives the gateway under sustained
load: :meth:`IngressGateway.route_among` is the admission hook that routes
only to replicas the engine considers ready and under their concurrency
limit, and :meth:`IngressGateway.remove_replica` is the scale-down hook the
autoscaler uses to reclaim idle replicas after their keep-alive expires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.platform.deployment import DeployedFunction
from repro.platform.function import FunctionSpec
from repro.platform.orchestrator import Orchestrator
from repro.sim.ledger import CostCategory, CpuDomain


class GatewayError(RuntimeError):
    """Raised for unknown functions or invalid routing policies."""


class RoutingPolicy(enum.Enum):
    """How the load balancer spreads requests over replicas."""

    ROUND_ROBIN = "round_robin"
    LEAST_LOADED = "least_loaded"


#: Fixed per-request ingress cost (routing table lookup, connection handling).
INGRESS_OVERHEAD_S = 250.0e-6


@dataclass
class _ReplicaState:
    deployed: DeployedFunction
    in_flight: int = 0
    served: int = 0


class IngressGateway:
    """The platform's ingress / load-balancer pair."""

    def __init__(
        self,
        orchestrator: Orchestrator,
        policy: RoutingPolicy = RoutingPolicy.ROUND_ROBIN,
    ) -> None:
        self.orchestrator = orchestrator
        self.policy = policy
        self._pools: Dict[str, List[_ReplicaState]] = {}
        self._round_robin_cursor: Dict[str, int] = {}
        self._replica_serial: Dict[str, int] = {}
        self.requests_routed = 0
        self.cold_starts = 0
        self.scale_downs = 0

    # -- pool management ----------------------------------------------------------

    def register(self, spec: FunctionSpec, replicas: int = 1, node_name: Optional[str] = None,
                 share_vm_key: Optional[str] = None, charge_cold_start: bool = True) -> List[DeployedFunction]:
        """Deploy ``replicas`` instances of ``spec`` and add them to the pool.

        Scale-from-zero is modelled by charging each replica's cold start at
        registration time (the paper's Fig. 2a costs).
        """
        if replicas < 1:
            raise GatewayError("replicas must be >= 1")
        nodes = list(self.orchestrator.cluster.nodes)
        if node_name is not None and node_name not in nodes:
            raise GatewayError("unknown node %r" % node_name)
        pool = self._pools.setdefault(spec.name, [])
        deployed_replicas: List[DeployedFunction] = []
        for _ in range(replicas):
            serial = self._replica_serial.get(spec.name, 0)
            self._replica_serial[spec.name] = serial + 1
            replica_spec = spec.renamed("%s-r%d" % (spec.name, serial))
            target_node = node_name or nodes[serial % len(nodes)]
            deployed = self.orchestrator.deploy(
                replica_spec,
                target_node,
                share_vm_key=share_vm_key,
                materialize=True,
                charge_cold_start=charge_cold_start,
            )
            deployed_replicas.append(deployed)
            if charge_cold_start:
                self.cold_starts += 1
        pool.extend(_ReplicaState(deployed=replica) for replica in deployed_replicas)
        self._round_robin_cursor.setdefault(spec.name, 0)
        return deployed_replicas

    def replicas(self, function: str) -> List[DeployedFunction]:
        return [state.deployed for state in self._require_pool(function)]

    def scale_to(self, spec: FunctionSpec, replicas: int) -> None:
        """Grow the pool to ``replicas`` instances.

        Scale-down is a separate, per-replica operation
        (:meth:`remove_replica`) because only the caller knows which replicas
        are idle and safe to reclaim.
        """
        current = len(self._pools.get(spec.name, []))
        if replicas > current:
            self.register(spec, replicas=replicas - current)

    def remove_replica(self, function: str, deployed: DeployedFunction) -> None:
        """Reclaim one replica (autoscaler keep-alive expiry).

        The replica must be idle: reclaiming a replica with requests in
        flight would strand them.
        """
        pool = self._require_pool(function)
        for index, state in enumerate(pool):
            if state.deployed is deployed:
                if state.in_flight > 0:
                    raise GatewayError(
                        "replica %r has %d requests in flight; drain before removal"
                        % (deployed.name, state.in_flight)
                    )
                del pool[index]
                self.orchestrator.undeploy(deployed.name)
                self.scale_downs += 1
                return
        raise GatewayError("replica %r does not belong to function %r" % (deployed.name, function))

    # -- routing --------------------------------------------------------------------

    def route(self, function: str) -> DeployedFunction:
        """Pick a replica for one request and charge the ingress overhead."""
        return self.route_among(function, None)

    def route_among(
        self,
        function: str,
        eligible: Optional[Sequence[DeployedFunction]],
    ) -> DeployedFunction:
        """Admission hook: route one request over a subset of the pool.

        ``eligible`` restricts the choice to replicas the caller considers
        available (warmed up, under their concurrency limit); ``None`` means
        the whole pool.  The routing policy applies within the subset, and
        the per-request ingress overhead is charged either way.
        """
        pool = self._require_pool(function)
        if eligible is None:
            candidates = pool
        else:
            wanted = {id(deployed) for deployed in eligible}
            candidates = [state for state in pool if id(state.deployed) in wanted]
            if not candidates:
                raise GatewayError("no eligible replicas for function %r" % function)
        if self.policy is RoutingPolicy.ROUND_ROBIN:
            # The cursor walks the *pool* and skips ineligible members, so
            # rotation order is stable even when the eligible subset changes
            # between requests (indexing the cursor into a changing subset
            # would not be round-robin at all).
            cursor = self._round_robin_cursor[function]
            eligible_ids = {id(state) for state in candidates}
            state = candidates[0]
            for offset in range(len(pool)):
                probe = pool[(cursor + offset) % len(pool)]
                if id(probe) in eligible_ids:
                    state = probe
                    self._round_robin_cursor[function] = cursor + offset + 1
                    break
        else:
            state = min(candidates, key=lambda replica: replica.in_flight)
        state.in_flight += 1
        state.served += 1
        self.requests_routed += 1
        ledger = self.orchestrator.cluster.ledger
        ledger.charge(
            CostCategory.HTTP,
            INGRESS_OVERHEAD_S,
            cpu_domain=CpuDomain.USER,
            label="ingress:%s" % function,
        )
        return state.deployed

    def release(self, function: str, deployed: DeployedFunction) -> None:
        """Mark a routed request as finished (load-balancer bookkeeping)."""
        for state in self._require_pool(function):
            if state.deployed is deployed:
                state.in_flight = max(0, state.in_flight - 1)
                return
        raise GatewayError("replica %r does not belong to function %r" % (deployed.name, function))

    def served_per_replica(self, function: str) -> Dict[str, int]:
        return {state.deployed.name: state.served for state in self._require_pool(function)}

    def in_flight(self, function: str) -> Dict[str, int]:
        """Requests currently executing per replica (autoscaler load sample)."""
        return {state.deployed.name: state.in_flight for state in self._require_pool(function)}

    def total_in_flight(self, function: str) -> int:
        return sum(state.in_flight for state in self._require_pool(function))

    def pool_size(self, function: str) -> int:
        return len(self._pools.get(function, []))

    def _require_pool(self, function: str) -> List[_ReplicaState]:
        if function not in self._pools or not self._pools[function]:
            raise GatewayError("function %r has no registered replicas" % function)
        return self._pools[function]
