"""Platform ingress: how clients reach short-lived serverless functions.

"Since serverless functions are short-lived by design, a single function
cannot be directly addressed.  Therefore, clients rely on the platform
ingress and Load Balancers to access the serverless function" (Sec. 1).  The
gateway models that front door: it keeps a pool of replicas per function,
routes each client request to one of them (round-robin or least-loaded),
scales from zero by paying the runtime's cold-start cost, and charges the
ingress routing overhead per request.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.platform.deployment import DeployedFunction
from repro.platform.function import FunctionSpec
from repro.platform.orchestrator import Orchestrator
from repro.sim.ledger import CostCategory, CpuDomain


class GatewayError(RuntimeError):
    """Raised for unknown functions or invalid routing policies."""


class RoutingPolicy(enum.Enum):
    """How the load balancer spreads requests over replicas."""

    ROUND_ROBIN = "round_robin"
    LEAST_LOADED = "least_loaded"


#: Fixed per-request ingress cost (routing table lookup, connection handling).
INGRESS_OVERHEAD_S = 250.0e-6


@dataclass
class _ReplicaState:
    deployed: DeployedFunction
    in_flight: int = 0
    served: int = 0


class IngressGateway:
    """The platform's ingress / load-balancer pair."""

    def __init__(
        self,
        orchestrator: Orchestrator,
        policy: RoutingPolicy = RoutingPolicy.ROUND_ROBIN,
    ) -> None:
        self.orchestrator = orchestrator
        self.policy = policy
        self._pools: Dict[str, List[_ReplicaState]] = {}
        self._round_robin_cursor: Dict[str, int] = {}
        self.requests_routed = 0

    # -- pool management ----------------------------------------------------------

    def register(self, spec: FunctionSpec, replicas: int = 1, node_name: Optional[str] = None,
                 share_vm_key: Optional[str] = None, charge_cold_start: bool = True) -> List[DeployedFunction]:
        """Deploy ``replicas`` instances of ``spec`` and add them to the pool.

        Scale-from-zero is modelled by charging each replica's cold start at
        registration time (the paper's Fig. 2a costs).
        """
        if replicas < 1:
            raise GatewayError("replicas must be >= 1")
        nodes = list(self.orchestrator.cluster.nodes)
        if node_name is not None and node_name not in nodes:
            raise GatewayError("unknown node %r" % node_name)
        pool = self._pools.setdefault(spec.name, [])
        deployed_replicas: List[DeployedFunction] = []
        for index in range(replicas):
            replica_spec = spec.renamed("%s-r%d" % (spec.name, len(pool) + index))
            target_node = node_name or nodes[(len(pool) + index) % len(nodes)]
            deployed = self.orchestrator.deploy(
                replica_spec,
                target_node,
                share_vm_key=share_vm_key,
                materialize=True,
                charge_cold_start=charge_cold_start,
            )
            deployed_replicas.append(deployed)
        pool.extend(_ReplicaState(deployed=replica) for replica in deployed_replicas)
        self._round_robin_cursor.setdefault(spec.name, 0)
        return deployed_replicas

    def replicas(self, function: str) -> List[DeployedFunction]:
        return [state.deployed for state in self._require_pool(function)]

    def scale_to(self, spec: FunctionSpec, replicas: int) -> None:
        """Grow the pool to ``replicas`` instances (no scale-down modelled)."""
        current = len(self._pools.get(spec.name, []))
        if replicas > current:
            self.register(spec, replicas=replicas - current)

    # -- routing --------------------------------------------------------------------

    def route(self, function: str) -> DeployedFunction:
        """Pick a replica for one request and charge the ingress overhead."""
        pool = self._require_pool(function)
        if self.policy is RoutingPolicy.ROUND_ROBIN:
            cursor = self._round_robin_cursor[function]
            state = pool[cursor % len(pool)]
            self._round_robin_cursor[function] = cursor + 1
        else:
            state = min(pool, key=lambda replica: replica.in_flight)
        state.in_flight += 1
        state.served += 1
        self.requests_routed += 1
        ledger = self.orchestrator.cluster.ledger
        ledger.charge(
            CostCategory.HTTP,
            INGRESS_OVERHEAD_S,
            cpu_domain=CpuDomain.USER,
            label="ingress:%s" % function,
        )
        return state.deployed

    def release(self, function: str, deployed: DeployedFunction) -> None:
        """Mark a routed request as finished (load-balancer bookkeeping)."""
        for state in self._require_pool(function):
            if state.deployed is deployed:
                state.in_flight = max(0, state.in_flight - 1)
                return
        raise GatewayError("replica %r does not belong to function %r" % (deployed.name, function))

    def served_per_replica(self, function: str) -> Dict[str, int]:
        return {state.deployed.name: state.served for state in self._require_pool(function)}

    def _require_pool(self, function: str) -> List[_ReplicaState]:
        if function not in self._pools or not self._pools[function]:
            raise GatewayError("function %r has no registered replicas" % function)
        return self._pools[function]
