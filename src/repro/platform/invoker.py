"""The invoker: executes workflows over deployed functions and a channel.

Sequential workflows chain transfers edge by edge; fan-out workflows run one
transfer per branch and combine them with a bounded-concurrency makespan
(:class:`~repro.sim.engine.ParallelTracks`), reflecting how the runtimes
differ: a single shared Wasm VM serialises all branch work on one thread,
while per-sandbox deployments spread CPU work across the node's cores.  CPU
seconds, copies and memory always aggregate across branches regardless of
overlap — work does not disappear by being parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metrics.records import TransferMetrics
from repro.payload import Payload
from repro.platform.channel import DataPassingChannel, TransferOutcome
from repro.platform.deployment import DeployedFunction
from repro.platform.orchestrator import Orchestrator
from repro.platform.workflow import InvocationPattern, Workflow
from repro.sim.engine import ParallelTracks
from repro.sim.ledger import CostCategory, CpuDomain


class InvokerError(RuntimeError):
    """Raised when a workflow references functions that are not deployed."""


@dataclass(frozen=True)
class WorkflowResult:
    """Outcome of one workflow execution.

    ``total_latency_s`` is the makespan of the whole workflow.  For parallel
    workflows ``mean_branch_latency_s`` is the mean per-branch completion time
    (the latency an individual request observes under contention), which is
    what the paper's fan-out latency panels report, while throughput counts
    all branches completed over the makespan.
    """

    workflow: Workflow
    outcomes: Dict[str, TransferOutcome]
    total_latency_s: float
    aggregate: TransferMetrics
    mean_branch_latency_s: float = 0.0
    branches: int = 1

    @property
    def throughput_rps(self) -> float:
        """Requests completed per second over the workflow makespan."""
        if self.total_latency_s <= 0:
            return float("inf")
        return self.branches / self.total_latency_s


class Invoker:
    """Drives workflows through a data-passing channel."""

    def __init__(self, orchestrator: Orchestrator, channel: DataPassingChannel) -> None:
        self.orchestrator = orchestrator
        self.channel = channel

    # -- public API -----------------------------------------------------------------

    def invoke(self, workflow: Workflow, payload: Payload) -> WorkflowResult:
        """Execute ``workflow``, sending ``payload`` along every edge."""
        if workflow.pattern is InvocationPattern.SEQUENTIAL:
            return self._invoke_sequential(workflow, payload)
        return self._invoke_parallel(workflow, payload)

    # -- sequential -----------------------------------------------------------------------

    def _invoke_sequential(self, workflow: Workflow, payload: Payload) -> WorkflowResult:
        outcomes: Dict[str, TransferOutcome] = {}
        current = payload
        for source_name, target_name in workflow.edges:
            source, target = self._resolve(source_name), self._resolve(target_name)
            outcome = self.channel.transfer(source, target, current)
            outcomes["%s->%s" % (source_name, target_name)] = outcome
            current = outcome.delivered
        total = sum(o.metrics.total_latency_s for o in outcomes.values())
        aggregate = _combine(list(outcomes.values()), total, self.channel.mode, payload.size)
        return WorkflowResult(
            workflow=workflow,
            outcomes=outcomes,
            total_latency_s=total,
            aggregate=aggregate,
            mean_branch_latency_s=total,
            branches=1,
        )

    # -- fan-out / fan-in ---------------------------------------------------------------------

    def _invoke_parallel(self, workflow: Workflow, payload: Payload) -> WorkflowResult:
        outcomes: Dict[str, TransferOutcome] = {}
        tracks = ParallelTracks(workers=self._workers(workflow))
        per_branch_overhead = getattr(self.channel, "fanout_overhead_s", 0.0)
        for source_name, target_name in workflow.edges:
            source, target = self._resolve(source_name), self._resolve(target_name)
            outcome = self.channel.transfer(source, target, payload)
            outcomes["%s->%s" % (source_name, target_name)] = outcome
            metrics = outcome.metrics
            cpu = metrics.cpu_total_s + per_branch_overhead
            wait = max(metrics.total_latency_s - metrics.cpu_total_s, 0.0)
            tracks.add(cpu, wait)
        total = tracks.makespan()
        aggregate = _combine(list(outcomes.values()), total, self.channel.mode, payload.size)
        return WorkflowResult(
            workflow=workflow,
            outcomes=outcomes,
            total_latency_s=total,
            aggregate=aggregate,
            mean_branch_latency_s=tracks.mean_completion(),
            branches=len(workflow.edges),
        )

    def _workers(self, workflow: Workflow) -> int:
        """Concurrency available to the fan-out branches."""
        if getattr(self.channel, "single_threaded", False):
            return 1
        # Branch work spreads over the cores of the node hosting the source.
        source_name = workflow.edges[0][0]
        source = self._resolve(source_name)
        node = self.orchestrator.cluster.node(source.node_name)
        return max(1, node.cores)

    def _resolve(self, name: str) -> DeployedFunction:
        try:
            return self.orchestrator.deployment(name)
        except Exception as exc:
            raise InvokerError("workflow references undeployed function %r" % name) from exc


def _combine(
    outcomes: Sequence[TransferOutcome],
    total_latency_s: float,
    mode: str,
    payload_bytes: int,
) -> TransferMetrics:
    """Aggregate per-edge metrics into one workflow-level record."""
    if not outcomes:
        raise InvokerError("cannot combine zero outcomes")
    breakdown: Dict[str, float] = {}
    node_seconds: Dict[str, float] = {}
    for outcome in outcomes:
        for key, value in outcome.metrics.breakdown.items():
            breakdown[key] = breakdown.get(key, 0.0) + value
        # Per-node attribution survives aggregation: each edge already knows
        # which ledger shards its charges landed on.
        for node, value in outcome.metrics.node_seconds.items():
            node_seconds[node] = node_seconds.get(node, 0.0) + value
    metrics = [o.metrics for o in outcomes]
    return TransferMetrics(
        mode=mode,
        payload_bytes=payload_bytes,
        total_latency_s=total_latency_s,
        serialization_s=sum(m.serialization_s for m in metrics),
        wasm_io_s=sum(m.wasm_io_s for m in metrics),
        transfer_s=sum(m.transfer_s for m in metrics),
        cpu_user_s=sum(m.cpu_user_s for m in metrics),
        cpu_kernel_s=sum(m.cpu_kernel_s for m in metrics),
        copied_bytes=sum(m.copied_bytes for m in metrics),
        reference_bytes=sum(m.reference_bytes for m in metrics),
        syscalls=sum(m.syscalls for m in metrics),
        context_switches=sum(m.context_switches for m in metrics),
        peak_memory_mb=max(m.peak_memory_mb for m in metrics),
        breakdown=breakdown,
        node_seconds=node_seconds,
    )
