"""Cluster nodes: one kernel, one containerd, one Wasm runtime per node.

A node owns the per-host substrates and knows how to deploy a
:class:`~repro.platform.function.FunctionSpec` as either a RunC container or
a Wasm VM (optionally sharing an existing VM, which is how Roadrunner's
user-space mode colocates functions of the same workflow).

Accounting is node-scoped: the ledger handed to a node is its *own* shard
(a :class:`~repro.sim.ledger.NodeLedger` when created through
:meth:`~repro.platform.cluster.Cluster.add_node`), so everything the node's
kernel, container runtime, Wasm runtime and serializers charge lands on
that node — independent nodes never contend on one append path, and the
cluster ledger merges the shards for reporting.
"""

from __future__ import annotations

from typing import Optional

from repro.container.containerd import Containerd
from repro.container.image import ContainerImage, WasmImage
from repro.container.oci import OciBundle
from repro.container.runc import RunCRuntime
from repro.kernel.kernel import Kernel
from repro.platform.deployment import DeployedFunction
from repro.platform.function import FunctionSpec
from repro.serialization.serializer import ExecutionEnvironment, Serializer
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.ledger import CostLedger
from repro.wasm.module import WasmModule
from repro.wasm.runtime import RuntimeKind, WasmRuntime
from repro.wasm.vm import WasmVM
from repro.wasm.wasi import WasiInterface


class NodeError(RuntimeError):
    """Raised for invalid node operations."""


class ClusterNode:
    """One host of the emulated testbed."""

    def __init__(
        self,
        name: str,
        ledger: CostLedger,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        cores: Optional[int] = None,
    ) -> None:
        self.name = name
        self.ledger = ledger
        self.cost_model = cost_model
        self.cores = cores if cores is not None else cost_model.cores_per_node
        if self.cores < 1:
            raise NodeError("a node needs at least one core")
        self.kernel = Kernel(ledger=ledger, cost_model=cost_model, node_name=name)
        self.runc = RunCRuntime(kernel=self.kernel, ledger=ledger, cost_model=cost_model)
        self.wasm_runtime = WasmRuntime(ledger=ledger, cost_model=cost_model)
        self.containerd = Containerd(runc=self.runc)
        self._deployed = 0
        # Shared-VM bookkeeping: one shim process per VM created on this node.
        self._vm_processes: dict = {}

    # -- deployment -----------------------------------------------------------------

    def deploy_container(
        self, spec: FunctionSpec, charge_cold_start: bool = False
    ) -> DeployedFunction:
        """Deploy ``spec`` as a RunC container (the paper's RunC baseline)."""
        if spec.is_wasm:
            raise NodeError("spec %r targets a Wasm runtime, not RunC" % spec.name)
        self._deployed += 1
        bundle = OciBundle(
            name="%s-%d" % (spec.name, self._deployed),
            image=ContainerImage(name="%s:latest" % spec.name),
            runtime_class="runc",
        )
        handle = self.containerd.start(
            bundle,
            workflow=spec.workflow,
            tenant=spec.tenant,
            charge_cold_start=charge_cold_start,
        )
        sandbox = handle.sandbox
        serializer = Serializer(
            ledger=self.ledger,
            cost_model=self.cost_model,
            environment=ExecutionEnvironment.NATIVE,
        )
        return DeployedFunction(
            spec=spec,
            node_name=self.name,
            process=sandbox.process,
            serializer=serializer,
            sandbox=sandbox,
        )

    def deploy_wasm(
        self,
        spec: FunctionSpec,
        shared_vm: Optional[WasmVM] = None,
        materialize: bool = True,
        charge_cold_start: bool = False,
    ) -> DeployedFunction:
        """Deploy ``spec`` as a Wasm module.

        With ``shared_vm`` the module joins an existing VM (Roadrunner's
        user-space colocation); otherwise a fresh VM plus a shim process is
        created for it.
        """
        if not spec.is_wasm:
            raise NodeError("spec %r targets RunC, not a Wasm runtime" % spec.name)
        module = WasmModule(
            name=spec.name,
            binary_size=spec.binary_size,
            requires_wasi=spec.requires_wasi,
            handler=spec.handler,
        )
        if shared_vm is not None:
            if shared_vm.tenant != spec.tenant or shared_vm.workflow != spec.workflow:
                raise NodeError(
                    "function %r (workflow=%s, tenant=%s) cannot join VM %r "
                    "(workflow=%s, tenant=%s): trust domains differ"
                    % (
                        spec.name,
                        spec.workflow,
                        spec.tenant,
                        shared_vm.name,
                        shared_vm.workflow,
                        shared_vm.tenant,
                    )
                )
            vm = shared_vm
            process = self._vm_process(vm)
        else:
            vm = self.wasm_runtime.create_vm(
                name="%s-vm-%s" % (self.name, spec.name),
                tenant=spec.tenant,
                workflow=spec.workflow,
                materialize=materialize,
                charge_cold_start=charge_cold_start,
            )
            baseline = int(self.cost_model.wasm_baseline_rss_mb * 1024 * 1024)
            process = self.kernel.create_process("shim-%s" % spec.name, baseline_rss_bytes=baseline)
            self._vm_processes[vm.name] = process
        instance = self.wasm_runtime.load_module(vm, module, charge_cold_start=charge_cold_start)
        wasi = WasiInterface(vm=vm, process=process, kernel=self.kernel) if spec.requires_wasi else None
        serializer = Serializer(
            ledger=self.ledger,
            cost_model=self.cost_model,
            environment=ExecutionEnvironment.WASM,
        )
        return DeployedFunction(
            spec=spec,
            node_name=self.name,
            process=process,
            serializer=serializer,
            vm=vm,
            instance=instance,
            wasi=wasi,
        )

    # -- teardown -------------------------------------------------------------------

    def undeploy(self, deployed: DeployedFunction) -> Optional[str]:
        """Release everything ``deployed`` holds on this node.

        Containers are stopped through containerd (which exits the sandbox
        process) and their process is reaped from the kernel table.  Wasm
        deployments terminate their module instance; when that leaves the VM
        empty, the shim process driving it is exited and reaped too, and the
        retired VM's name is returned so the orchestrator can drop any
        VM-sharing entry pointing at it.
        """
        if deployed.node_name != self.name:
            raise NodeError(
                "function %r is deployed on %r, not %r"
                % (deployed.name, deployed.node_name, self.name)
            )
        if not deployed.is_wasm:
            sandbox = deployed.require_container()
            self.containerd.stop(sandbox.bundle.name)
            self.kernel.reap(deployed.process.pid)
            return None
        vm = deployed.vm
        vm.terminate(deployed.spec.name)
        if vm.instances:
            return None  # other colocated functions still share this VM
        process = self._vm_processes.pop(vm.name, None)
        if process is not None:
            self.kernel.reap(process.pid)
        return vm.name

    def _vm_process(self, vm: WasmVM):
        if vm.name not in self._vm_processes:
            raise NodeError(
                "VM %r was not created on node %r; cannot colocate into it" % (vm.name, self.name)
            )
        return self._vm_processes[vm.name]

    def vm_process(self, vm: WasmVM):
        """The shim process driving ``vm`` (public accessor for channels)."""
        return self._vm_process(vm)
