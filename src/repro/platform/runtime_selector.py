"""Dynamic runtime selection (the paper's future work, Sec. 9).

"Our future work will focus on developing Roadrunner into a dynamic
virtualization runtime that can autonomously select the runtime type, e.g.,
container and Wasm, and select the most suitable runtime for specific
serverless workflows based on workload and environment characteristics."

This module implements that selector as a cost-model-driven estimator: given
a workflow profile (payload size, invocation rate, chain length, how often a
cold start is paid, whether the stages can be colocated), it estimates the
per-invocation cost of each candidate configuration and recommends one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.wasm.runtime import RuntimeKind


class SelectorError(ValueError):
    """Raised for invalid workload profiles."""


class DataPassingMode(enum.Enum):
    """How the chained stages exchange data in a candidate configuration."""

    HTTP = "http"
    ROADRUNNER_USER = "roadrunner_user"
    ROADRUNNER_KERNEL = "roadrunner_kernel"
    ROADRUNNER_NETWORK = "roadrunner_network"


@dataclass(frozen=True)
class WorkflowProfile:
    """What the selector needs to know about a workflow."""

    #: Mean payload exchanged between consecutive stages, in bytes.
    payload_bytes: int
    #: Invocations per second the workflow sustains.
    invocations_per_second: float = 1.0
    #: Number of data-passing hops per invocation (stages - 1).
    hops: int = 1
    #: Fraction of invocations that pay a cold start (0..1).
    cold_start_fraction: float = 0.01
    #: Whether all stages can be placed on one node (same trust domain).
    colocatable: bool = True
    #: Container image size (bytes) if packaged as a container.
    container_image_bytes: int = 77 * 1024 * 1024
    #: Wasm binary size (bytes) if packaged as Wasm.
    wasm_binary_bytes: int = 3_190_000

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise SelectorError("payload_bytes must be positive")
        if self.invocations_per_second <= 0:
            raise SelectorError("invocations_per_second must be positive")
        if self.hops < 1:
            raise SelectorError("a workflow needs at least one hop")
        if not 0.0 <= self.cold_start_fraction <= 1.0:
            raise SelectorError("cold_start_fraction must lie in [0, 1]")


@dataclass(frozen=True)
class RuntimeRecommendation:
    """The selector's verdict for one workflow."""

    runtime: RuntimeKind
    data_passing: DataPassingMode
    estimated_latency_s: float
    per_candidate_latency_s: Dict[str, float]
    rationale: str


class RuntimeSelector:
    """Estimates per-invocation latency for each candidate and picks the best."""

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.cost_model = cost_model

    # -- per-candidate estimators ------------------------------------------------

    def _cold_start(self, profile: WorkflowProfile, runtime: RuntimeKind) -> float:
        model = self.cost_model
        if runtime is RuntimeKind.RUNC:
            unpack = model.transfer_time(profile.container_image_bytes, model.image_unpack_bandwidth)
            per_start = unpack + model.container_sandbox_setup
        else:
            per_start = model.wasm_vm_setup + model.transfer_time(
                profile.wasm_binary_bytes, model.wasm_instantiate_bandwidth
            )
        return per_start * profile.cold_start_fraction

    def _http_hop(self, profile: WorkflowProfile, in_wasm: bool) -> float:
        model = self.cost_model
        size = profile.payload_bytes
        serialization = model.serialize_time(size, in_wasm) + model.deserialize_time(size, in_wasm)
        overhead = (
            model.http_request_overhead_wasm if in_wasm else model.http_request_overhead_native
        )
        wire_bytes = model.serialized_size(size)
        if profile.colocatable:
            wire = wire_bytes / model.loopback_http_bandwidth
        else:
            wire = model.network_transfer_time(wire_bytes, wasi_mediated=in_wasm)
        copies = 2 * model.user_kernel_copy_time(size)
        boundary = 2 * model.wasm_io_time(size) if in_wasm else 0.0
        return serialization + overhead + wire + copies + boundary

    def _roadrunner_hop(self, profile: WorkflowProfile, mode: DataPassingMode) -> float:
        model = self.cost_model
        size = profile.payload_bytes
        wasm_io = 2 * model.wasm_io_time(size)
        preparation = model.region_metadata_overhead + model.transfer_time(
            size, model.pointer_registration_bandwidth
        )
        if mode is DataPassingMode.ROADRUNNER_USER:
            return wasm_io + preparation
        if mode is DataPassingMode.ROADRUNNER_KERNEL:
            ipc = size / model.unix_socket_bandwidth + model.async_task_overhead
            return wasm_io + preparation + ipc
        wire = model.network_transfer_time(size) + model.splice_time(size) * 2
        return wasm_io + preparation + wire + model.data_hose_setup_overhead * 2

    # -- selection -----------------------------------------------------------------

    def evaluate(self, profile: WorkflowProfile) -> Dict[str, float]:
        """Per-invocation latency estimate for every candidate configuration."""
        hops = profile.hops
        candidates: Dict[str, float] = {
            "runc+http": hops * self._http_hop(profile, in_wasm=False)
            + self._cold_start(profile, RuntimeKind.RUNC),
            "wasm+http": hops * self._http_hop(profile, in_wasm=True)
            + self._cold_start(profile, RuntimeKind.WASMEDGE),
        }
        if profile.colocatable:
            candidates["wasm+roadrunner-user"] = hops * self._roadrunner_hop(
                profile, DataPassingMode.ROADRUNNER_USER
            ) + self._cold_start(profile, RuntimeKind.ROADRUNNER)
            candidates["wasm+roadrunner-kernel"] = hops * self._roadrunner_hop(
                profile, DataPassingMode.ROADRUNNER_KERNEL
            ) + self._cold_start(profile, RuntimeKind.ROADRUNNER)
        else:
            candidates["wasm+roadrunner-network"] = hops * self._roadrunner_hop(
                profile, DataPassingMode.ROADRUNNER_NETWORK
            ) + self._cold_start(profile, RuntimeKind.ROADRUNNER)
        return candidates

    def recommend(self, profile: WorkflowProfile) -> RuntimeRecommendation:
        """Pick the cheapest candidate for the profile."""
        candidates = self.evaluate(profile)
        best_name = min(candidates, key=candidates.get)
        runtime = RuntimeKind.RUNC if best_name.startswith("runc") else RuntimeKind.ROADRUNNER
        if best_name == "wasm+http":
            runtime = RuntimeKind.WASMEDGE
        mode = {
            "runc+http": DataPassingMode.HTTP,
            "wasm+http": DataPassingMode.HTTP,
            "wasm+roadrunner-user": DataPassingMode.ROADRUNNER_USER,
            "wasm+roadrunner-kernel": DataPassingMode.ROADRUNNER_KERNEL,
            "wasm+roadrunner-network": DataPassingMode.ROADRUNNER_NETWORK,
        }[best_name]
        rationale = self._rationale(profile, best_name, candidates)
        return RuntimeRecommendation(
            runtime=runtime,
            data_passing=mode,
            estimated_latency_s=candidates[best_name],
            per_candidate_latency_s=candidates,
            rationale=rationale,
        )

    @staticmethod
    def _rationale(profile: WorkflowProfile, best: str, candidates: Dict[str, float]) -> str:
        ordered: List[str] = sorted(candidates, key=candidates.get)
        runner_up = ordered[1] if len(ordered) > 1 else best
        margin = candidates[runner_up] / candidates[best] if candidates[best] > 0 else float("inf")
        drivers = []
        if profile.cold_start_fraction > 0.2:
            drivers.append("frequent cold starts favour small Wasm binaries")
        if profile.payload_bytes >= 8 * 1024 * 1024:
            drivers.append("large payloads make serialization-free transfer decisive")
        if not profile.colocatable:
            drivers.append("stages cannot be colocated, so the network path applies")
        if not drivers:
            drivers.append("all candidates are close; the cheapest estimate wins")
        return "%s is %.2fx cheaper than %s; %s" % (best, margin, runner_up, "; ".join(drivers))
