"""The data-passing channel interface shared by Roadrunner and the baselines.

A channel moves one payload from a source deployed function to a target
deployed function and reports what it cost.  Keeping the interface identical
across Roadrunner's three modes and the two HTTP baselines is what makes the
evaluation an apples-to-apples comparison: the invoker and experiment harness
never special-case any of them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.metrics.records import LedgerWindow, TransferMetrics
from repro.payload import Payload
from repro.platform.deployment import DeployedFunction
from repro.sim.ledger import CostLedger


class ChannelError(RuntimeError):
    """Raised when a channel cannot serve a transfer (placement, trust, mode)."""


@dataclass(frozen=True)
class TransferOutcome:
    """What a channel returns: the delivered payload plus its measurements."""

    delivered: Payload
    metrics: TransferMetrics

    def verify_against(self, sent: Payload) -> None:
        """Raise if the delivered payload does not match what was sent."""
        sent.require_match(self.delivered)


class DataPassingChannel(ABC):
    """Moves payloads between deployed functions, charging the cluster ledgers.

    ``ledger`` is the cluster-scoped handle (the merged
    :class:`~repro.sim.ledger.ClusterLedger` view when the channel belongs
    to a cluster); node-local work should charge the owning node's shard via
    :meth:`node_ledger`, so per-node cost attribution survives the transfer.
    """

    #: Short mode label used in reports ("roadrunner-user", "runc-http", ...).
    mode: str = "abstract"

    def __init__(self, ledger: CostLedger) -> None:
        self.ledger = ledger
        self.transfers = 0

    def node_ledger(self, deployed: DeployedFunction) -> CostLedger:
        """The ledger shard of the node hosting ``deployed``.

        Channels that are not cluster-aware (no ``cluster`` attribute) fall
        back to their own ledger, keeping standalone/unit usage working.
        """
        cluster = getattr(self, "cluster", None)
        if cluster is None:
            return self.ledger
        return cluster.node(deployed.node_name).ledger

    @abstractmethod
    def _move(
        self, source: DeployedFunction, target: DeployedFunction, payload: Payload
    ) -> Payload:
        """Perform the actual transfer and return the delivered payload."""

    def supports(self, source: DeployedFunction, target: DeployedFunction) -> bool:
        """Whether this channel can serve the given placement.  Default: yes."""
        return True

    def transfer(
        self, source: DeployedFunction, target: DeployedFunction, payload: Payload
    ) -> TransferOutcome:
        """Transfer ``payload`` from ``source`` to ``target`` and measure it."""
        if payload.size <= 0:
            raise ChannelError("refusing to transfer an empty payload")
        if not self.supports(source, target):
            raise ChannelError(
                "channel %r does not support a transfer from %r (node %s) to %r (node %s)"
                % (self.mode, source.name, source.node_name, target.name, target.node_name)
            )
        with LedgerWindow(self.ledger, mode=self.mode, payload_bytes=payload.size) as window:
            delivered = self._move(source, target, payload)
        self.transfers += 1
        outcome = TransferOutcome(delivered=delivered, metrics=window.metrics)
        # Every transfer is integrity-checked; a channel that corrupts or
        # drops data should fail loudly rather than report a great latency.
        outcome.verify_against(payload)
        return outcome
