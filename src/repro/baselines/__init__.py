"""Baselines: the state-of-the-art data paths Roadrunner is compared against.

* :class:`~repro.baselines.runc_http.RunCHttpChannel` — functions in RunC
  containers exchanging serialized payloads over HTTP (the paper's
  performance upper bound);
* :class:`~repro.baselines.wasmedge_http.WasmEdgeHttpChannel` — WasmEdge
  functions doing the same through WASI-mediated sockets, paying Wasm-speed
  serialization and boundary copies on every byte.
"""

from repro.baselines.runc_http import RunCHttpChannel
from repro.baselines.wasmedge_http import WasmEdgeHttpChannel

__all__ = ["RunCHttpChannel", "WasmEdgeHttpChannel"]
