"""WasmEdge + HTTP baseline: state-of-the-art Wasm serverless data passing.

The same HTTP flow as the RunC baseline, but both endpoints are Wasm modules:
serialization runs at Wasm speed inside the VM, the serialized body has to be
copied across the VM boundary through WASI before it can reach the socket,
and every socket read/write on the receiving side is a WASI host call.  This
is the configuration the paper identifies as spending up to 60 % of its
transfer time serializing (Fig. 2b) and is the main comparison target for
Roadrunner.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.http import HttpTransport
from repro.payload import Payload
from repro.platform.channel import ChannelError, DataPassingChannel
from repro.platform.cluster import Cluster
from repro.platform.deployment import DeployedFunction


class WasmEdgeHttpChannel(DataPassingChannel):
    """Wasm-to-Wasm HTTP data passing through WASI."""

    mode = "wasmedge-http"
    single_threaded = False
    fanout_overhead_s = 0.0

    def __init__(self, cluster: Cluster) -> None:
        super().__init__(cluster.ledger)
        self.cluster = cluster
        self._transports: Dict[Tuple[str, str], HttpTransport] = {}

    def supports(self, source: DeployedFunction, target: DeployedFunction) -> bool:
        return (
            source.is_wasm
            and target.is_wasm
            and source.wasi is not None
            and target.wasi is not None
        )

    def _transport(self, source: DeployedFunction, target: DeployedFunction) -> HttpTransport:
        key = (source.name, target.name)
        if key not in self._transports:
            self._transports[key] = HttpTransport(
                source_kernel=self.cluster.node(source.node_name).kernel,
                target_kernel=self.cluster.node(target.node_name).kernel,
                link=self.cluster.link_between(source.node_name, target.node_name),
                name="wasi-http:%s->%s" % key,
            )
        return self._transports[key]

    def _move(
        self, source: DeployedFunction, target: DeployedFunction, payload: Payload
    ) -> Payload:
        if source.wasi is None or target.wasi is None:
            raise ChannelError("wasmedge-http requires WASI-enabled Wasm deployments")
        source_instance = source.require_wasm()
        target_instance = target.require_wasm()

        # 0. The source function already holds the payload in its linear
        #    memory (producing it is not part of the measured transfer).
        source_address = source_instance.produce_output(payload)

        # 1. Serialize inside the Wasm VM (single-threaded, Wasm-speed).
        wire_payload = source.serializer.serialize(payload, cgroup=source.cgroup)
        staged_address = source_instance.memory.store_payload(wire_payload)

        # 2. Copy the serialized body out of the VM through WASI (sock_send).
        host_body = source.wasi.sock_send(source_instance, staged_address, wire_payload.size)

        # 3. POST it over HTTP; both ends are WASI-mediated.
        transport = self._transport(source, target)
        response = transport.post(
            sender=source.process,
            receiver=target.process,
            body=host_body,
            sender_in_wasm=True,
            receiver_in_wasm=True,
        )
        # The sender-side WASI staging buffer dies once the kernel took the
        # bytes; its release pairs with sock_send's copy_out allocation.
        source.wasi.release_host_buffer(host_body)

        # 4. Copy the received body into the target VM through WASI (sock_recv).
        received_address = target.wasi.sock_recv(target_instance, response.body)

        # 5. Deserialize inside the target VM.
        delivered = target.serializer.deserialize(
            target_instance.memory.read_payload(received_address, response.body.size),
            original_size=payload.size,
            cgroup=target.cgroup,
        )
        target_instance.produce_output(delivered)

        # Staging buffers are released once the exchange completes.
        source_instance.memory.deallocate(staged_address)
        source.cgroup.memory.free(wire_payload.size)
        target.cgroup.memory.free(payload.size)
        # The source's original output stays live (the guest owns it); track
        # the address so repeated transfers do not leak allocator state.
        source_instance.memory.deallocate(source_address)
        return delivered
