"""RunC + HTTP baseline: native containers, conventional data passing.

The flow of Fig. 1a with native-speed serialization: the source container
serializes the payload, POSTs it over HTTP (loopback or the inter-node link),
the kernel copies it through the socket stack on both hosts, and the target
deserializes.  This is the paper's upper bound — "the best achievable
performance with Wasm" is to approach it (Sec. 6.1).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.http import HttpTransport
from repro.payload import Payload
from repro.platform.channel import ChannelError, DataPassingChannel
from repro.platform.cluster import Cluster
from repro.platform.deployment import DeployedFunction


class RunCHttpChannel(DataPassingChannel):
    """Container-to-container HTTP data passing."""

    mode = "runc-http"
    single_threaded = False
    fanout_overhead_s = 0.0

    def __init__(self, cluster: Cluster) -> None:
        super().__init__(cluster.ledger)
        self.cluster = cluster
        self._transports: Dict[Tuple[str, str], HttpTransport] = {}

    def supports(self, source: DeployedFunction, target: DeployedFunction) -> bool:
        return not source.is_wasm and not target.is_wasm

    def _transport(self, source: DeployedFunction, target: DeployedFunction) -> HttpTransport:
        key = (source.name, target.name)
        if key not in self._transports:
            self._transports[key] = HttpTransport(
                source_kernel=self.cluster.node(source.node_name).kernel,
                target_kernel=self.cluster.node(target.node_name).kernel,
                link=self.cluster.link_between(source.node_name, target.node_name),
                name="http:%s->%s" % key,
            )
        return self._transports[key]

    def _move(
        self, source: DeployedFunction, target: DeployedFunction, payload: Payload
    ) -> Payload:
        if source.is_wasm or target.is_wasm:
            raise ChannelError("runc-http requires container deployments on both ends")
        # 1. Serialize at native speed in the source container.
        wire_payload = source.serializer.serialize(payload, cgroup=source.cgroup)
        # 2. POST the serialized body over HTTP.
        transport = self._transport(source, target)
        response = transport.post(
            sender=source.process,
            receiver=target.process,
            body=wire_payload,
            sender_in_wasm=False,
            receiver_in_wasm=False,
        )
        # 3. Deserialize at native speed in the target container.
        delivered = target.serializer.deserialize(
            response.body, original_size=payload.size, cgroup=target.cgroup
        )
        # Release the staging buffers created for the exchange.
        source.cgroup.memory.free(wire_payload.size)
        target.cgroup.memory.free(payload.size)
        return delivered
