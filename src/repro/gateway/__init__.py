"""Gateway middleware: composable request policies at the platform ingress.

The :class:`~repro.platform.gateway.IngressGateway` used to be the only
place cross-cutting request policies could live, and each one grew into it
as a special case.  This package factors that policy surface out into an
ordered chain of small :class:`~repro.gateway.middleware.MiddlewareStage`
objects threaded through a :class:`~repro.gateway.middleware.MiddlewarePipeline`
— each stage can pass a request on, transform it, or short-circuit it with
an immediate response, and owns its own operator-visible counters.
"""

from repro.gateway.middleware import (
    STAGE_NAMES,
    Admission,
    AdmitAction,
    AuthQuotaStage,
    CoalesceStage,
    DispatchPlan,
    HedgeStage,
    MiddlewareError,
    MiddlewarePipeline,
    MiddlewareStage,
    RequestContext,
    ResponseCacheStage,
    TokenBucketStage,
    build_pipeline,
    response_key,
)

__all__ = [
    "STAGE_NAMES",
    "Admission",
    "AdmitAction",
    "AuthQuotaStage",
    "CoalesceStage",
    "DispatchPlan",
    "HedgeStage",
    "MiddlewareError",
    "MiddlewarePipeline",
    "MiddlewareStage",
    "RequestContext",
    "ResponseCacheStage",
    "TokenBucketStage",
    "build_pipeline",
    "response_key",
]
