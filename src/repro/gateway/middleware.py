"""The composable middleware pipeline the ingress threads requests through.

Every request admitted by the platform crosses a chain of small, ordered
stages before it reaches the fair queue, and crosses them again (in reverse)
when it reaches a terminal outcome.  Each stage sees a
:class:`RequestContext` and can

* **pass** the request unchanged to the next stage,
* **transform** it in place (rewrite its priority, stamp metadata), or
* **short-circuit** it with an immediate terminal outcome — a cache hit, a
  token-bucket rejection, an auth/quota refusal — or **park** it behind an
  identical in-flight request (coalescing), to be resolved when that
  request finishes.

The pipeline is registration-order deterministic: stages run in the order
they were registered, a short-circuit skips the *later* stages' admission
hooks but still unwinds the *earlier* stages' completion hooks, and every
stage owns plain integer counters the traffic report and the telemetry
registry render.  An empty (or fully disabled) pipeline is an exact no-op:
a run through it is byte-identical to a run without one.

Shipped stages, in the order :func:`build_pipeline` registers them:

``auth``        allow-list + per-tenant admission quota (REJECTED)
``rate-limit``  per-tenant token bucket (RATE_LIMITED)
``cache``       response cache, TTL + explicit invalidation, keyed on the
                function + payload digest (CACHED)
``coalesce``    duplicate-request coalescing: one backend invocation fans
                its result out to every identical concurrent waiter
                (COALESCED)
``hedge``       hedged retries: when the elapsed time threatens the latency
                budget, a second attempt races on another replica —
                first finisher wins, the loser is cancelled
"""

from __future__ import annotations

import enum
import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.traffic.slo import RequestOutcome, RequestRecord


class MiddlewareError(RuntimeError):
    """Raised for invalid pipeline configurations or stage parameters."""


def response_key(function: str, payload_bytes: int) -> str:
    """The response-identity digest cache/coalesce stages key on.

    Two requests with the same function and payload produce the same
    deterministic response, so the digest of those two fields *is* the
    response identity.  (Scheduling class and deadline affect *when* a
    request is served, never *what* it returns.)
    """
    return hashlib.sha1(
        ("%s:%d" % (function, payload_bytes)).encode("utf-8")
    ).hexdigest()


class AdmitAction(enum.Enum):
    """What one stage decided about an arriving request."""

    PASS = "pass"                    # unchanged, on to the next stage
    TRANSFORM = "transform"          # mutated in place, on to the next stage
    SHORT_CIRCUIT = "short_circuit"  # terminal outcome right now
    PARK = "park"                    # held by the stage until a peer resolves it


@dataclass(frozen=True)
class Admission:
    """One stage's admission decision (the pipeline returns the first stop)."""

    action: AdmitAction
    #: Terminal outcome for SHORT_CIRCUIT decisions.
    outcome: Optional[RequestOutcome] = None
    #: Completion instant for short-circuits that *serve* the request
    #: (cache hits); ``None`` for refusals, which produce no response.
    completion_s: Optional[float] = None
    #: Name of the stage that stopped the request (set by the pipeline).
    stage: str = ""

    @classmethod
    def passed(cls) -> "Admission":
        return _PASS

    @classmethod
    def transformed(cls) -> "Admission":
        return _TRANSFORM

    @classmethod
    def short_circuit(
        cls, outcome: RequestOutcome, completion_s: Optional[float] = None
    ) -> "Admission":
        return cls(AdmitAction.SHORT_CIRCUIT, outcome=outcome, completion_s=completion_s)

    @classmethod
    def parked(cls) -> "Admission":
        return cls(AdmitAction.PARK)


_PASS = Admission(AdmitAction.PASS)
_TRANSFORM = Admission(AdmitAction.TRANSFORM)


@dataclass
class RequestContext:
    """One request's trip through the pipeline.

    ``request`` stays the engine's opaque request object (anything with
    ``request_id``/``arrival_s``/``function``/``payload_bytes``); stages
    that transform it mutate ``priority``/``deadline_s`` style fields via
    ``override`` entries read back by the engine, never the frozen request
    itself.  ``entered`` records which stages admitted the request, so the
    completion unwind runs exactly those stages' hooks in reverse order.
    """

    tenant: str
    request: object
    key: str  # response-identity digest (function + payload)
    entered: List["MiddlewareStage"] = field(default_factory=list)
    #: Stage-to-stage scratch space (e.g. transform overrides).
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def arrival_s(self) -> float:
        return self.request.arrival_s


@dataclass
class DispatchPlan:
    """The pipeline's verdict on one dispatch: service time, maybe a hedge.

    ``service_s`` is the primary attempt's (possibly transformed) service
    time.  When a hedge fires, the second attempt launches
    ``hedge_delay_s`` after dispatch and runs for ``hedge_service_s``; the
    first finisher wins and the loser is cancelled at the winner's
    completion instant.
    """

    service_s: float
    hedge_delay_s: Optional[float] = None
    hedge_service_s: Optional[float] = None

    @property
    def hedged(self) -> bool:
        return self.hedge_service_s is not None

    def completion_offsets(self) -> Tuple[float, Optional[float]]:
        """(primary, hedge) completion offsets from the dispatch instant."""
        if not self.hedged:
            return self.service_s, None
        return self.service_s, self.hedge_delay_s + self.hedge_service_s


class MiddlewareStage:
    """Base stage: pass-through hooks plus a counter dictionary.

    Subclasses override whichever hooks they care about and bump
    ``self.counters`` — plain ints the pipeline exposes through
    :meth:`MiddlewarePipeline.stats` for the report and telemetry layers.
    """

    name: str = "stage"

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}

    def count(self, event: str, amount: int = 1) -> None:
        self.counters[event] = self.counters.get(event, 0) + amount

    # -- hooks ---------------------------------------------------------------------

    def on_admit(self, ctx: RequestContext, now: float) -> Admission:
        """Decide the arriving request's fate; default: pass it on."""
        return Admission.passed()

    def on_dispatch(self, ctx: RequestContext, now: float, plan: DispatchPlan,
                    spare_replica: bool) -> DispatchPlan:
        """Shape the dispatch (service time, hedging); default: unchanged."""
        return plan

    def on_complete(
        self, ctx: RequestContext, record: RequestRecord, now: float
    ) -> Iterable[Tuple[RequestContext, RequestRecord]]:
        """React to a terminal outcome; may release parked followers."""
        return ()


class MiddlewarePipeline:
    """An ordered, name-addressable chain of middleware stages.

    Stages register under their ``name`` and run in registration order;
    ``enable``/``disable`` toggle a stage without losing its slot, so a
    re-enabled stage runs exactly where it was registered.  The admission
    walk stops at the first stage that short-circuits or parks the request
    — later stages never see it — but completion always unwinds every stage
    the request *entered*, in reverse order, so earlier stages (cache
    fills, token refunds) observe every outcome they admitted.
    """

    def __init__(self, stages: Sequence[MiddlewareStage] = ()) -> None:
        self._stages: Dict[str, MiddlewareStage] = {}
        self._enabled: Dict[str, bool] = {}
        for stage in stages:
            self.register(stage)

    # -- registration --------------------------------------------------------------

    def register(self, stage: MiddlewareStage, enable: bool = True) -> MiddlewareStage:
        if not stage.name:
            raise MiddlewareError("middleware stages need a non-empty name")
        if stage.name in self._stages:
            raise MiddlewareError("middleware %r is already registered" % stage.name)
        self._stages[stage.name] = stage
        self._enabled[stage.name] = enable
        return stage

    def enable(self, name: str) -> None:
        self._require(name)
        self._enabled[name] = True

    def disable(self, name: str) -> None:
        self._require(name)
        self._enabled[name] = False

    def stage(self, name: str) -> MiddlewareStage:
        return self._require(name)

    def __contains__(self, name: str) -> bool:
        return name in self._stages

    @property
    def names(self) -> List[str]:
        """Every registered stage name, in registration (execution) order."""
        return list(self._stages)

    def enabled_stages(self) -> List[MiddlewareStage]:
        return [stage for name, stage in self._stages.items() if self._enabled[name]]

    # -- the request path ----------------------------------------------------------

    def context(self, tenant: str, request: object) -> RequestContext:
        return RequestContext(
            tenant=tenant,
            request=request,
            key=response_key(request.function, request.payload_bytes),
        )

    def admit(self, ctx: RequestContext, now: float) -> Admission:
        """Walk the enabled stages; return the first stopping decision."""
        for stage in self.enabled_stages():
            ctx.entered.append(stage)
            decision = stage.on_admit(ctx, now)
            if decision.action in (AdmitAction.SHORT_CIRCUIT, AdmitAction.PARK):
                return Admission(
                    action=decision.action,
                    outcome=decision.outcome,
                    completion_s=decision.completion_s,
                    stage=stage.name,
                )
        return Admission.passed()

    def plan_dispatch(
        self, ctx: RequestContext, now: float, service_s: float, spare_replica: bool
    ) -> DispatchPlan:
        """Let the entered stages shape one dispatch (jitter, hedging)."""
        plan = DispatchPlan(service_s=service_s)
        for stage in ctx.entered:
            plan = stage.on_dispatch(ctx, now, plan, spare_replica)
        return plan

    def complete(
        self, ctx: RequestContext, record: RequestRecord, now: float
    ) -> List[Tuple[RequestContext, RequestRecord]]:
        """Unwind the entered stages (reverse order); collect follow-ons.

        Follow-ons are parked requests the outcome resolves (coalesced
        waiters): the engine accounts each exactly like a request of its
        own, which recursively unwinds *its* entered stages.
        """
        followons: List[Tuple[RequestContext, RequestRecord]] = []
        for stage in reversed(ctx.entered):
            followons.extend(stage.on_complete(ctx, record, now))
        return followons

    # -- observability -------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage counters, stages in registration order, keys sorted."""
        return {
            name: dict(sorted(stage.counters.items()))
            for name, stage in self._stages.items()
        }

    def _require(self, name: str) -> MiddlewareStage:
        if name not in self._stages:
            raise MiddlewareError(
                "no middleware named %r (registered: %s)"
                % (name, ", ".join(self._stages) or "none")
            )
        return self._stages[name]


# -- shipped stages ------------------------------------------------------------------


class AuthQuotaStage(MiddlewareStage):
    """Allow-list authentication plus a per-tenant admission quota.

    ``allow`` (when given) names the tenants whose requests are authorized
    at all; ``quota`` (when given) caps how many requests one tenant may
    admit over the run — the modelled equivalent of an API-key plan limit.
    Refusals short-circuit with :attr:`RequestOutcome.REJECTED` and never
    reach the queue.
    """

    name = "auth"

    def __init__(
        self, allow: Optional[Iterable[str]] = None, quota: Optional[int] = None
    ) -> None:
        super().__init__()
        if quota is not None and quota < 1:
            raise MiddlewareError("auth quota must be >= 1, got %r" % quota)
        self.allow = frozenset(allow) if allow is not None else None
        self.quota = quota
        self._admitted: Dict[str, int] = {}

    def on_admit(self, ctx: RequestContext, now: float) -> Admission:
        if self.allow is not None and ctx.tenant not in self.allow:
            self.count("denied_auth")
            return Admission.short_circuit(RequestOutcome.REJECTED)
        used = self._admitted.get(ctx.tenant, 0)
        if self.quota is not None and used >= self.quota:
            self.count("denied_quota")
            return Admission.short_circuit(RequestOutcome.REJECTED)
        self._admitted[ctx.tenant] = used + 1
        self.count("authorized")
        return Admission.passed()


class TokenBucketStage(MiddlewareStage):
    """Per-tenant token-bucket rate limiting.

    Each tenant's bucket refills at ``rate_rps`` tokens per simulated
    second up to ``burst`` tokens (the bucket starts full, so a cold tenant
    can burst).  An arrival with no whole token available is refused with
    :attr:`RequestOutcome.RATE_LIMITED`.  ``per_tenant`` overrides the
    default rate for named tenants.
    """

    name = "rate-limit"

    def __init__(
        self,
        rate_rps: float,
        burst: Optional[float] = None,
        per_tenant: Optional[Dict[str, float]] = None,
    ) -> None:
        super().__init__()
        if rate_rps <= 0:
            raise MiddlewareError("rate_rps must be positive, got %r" % rate_rps)
        self.rate_rps = rate_rps
        self.burst = burst if burst is not None else max(1.0, rate_rps)
        if self.burst < 1.0:
            raise MiddlewareError("burst must allow at least one token")
        self.per_tenant = dict(per_tenant or {})
        for tenant, rate in self.per_tenant.items():
            if rate <= 0:
                raise MiddlewareError("tenant %r rate must be positive" % tenant)
        self._buckets: Dict[str, Tuple[float, float]] = {}  # tenant -> (tokens, asof)

    def _rate(self, tenant: str) -> float:
        return self.per_tenant.get(tenant, self.rate_rps)

    def tokens(self, tenant: str, now: float) -> float:
        """The tenant's current token balance (refilled to ``now``)."""
        tokens, asof = self._buckets.get(tenant, (self.burst, now))
        return min(self.burst, tokens + (now - asof) * self._rate(tenant))

    def on_admit(self, ctx: RequestContext, now: float) -> Admission:
        balance = self.tokens(ctx.tenant, now)
        if balance < 1.0:
            self._buckets[ctx.tenant] = (balance, now)
            self.count("rejected")
            return Admission.short_circuit(RequestOutcome.RATE_LIMITED)
        self._buckets[ctx.tenant] = (balance - 1.0, now)
        self.count("allowed")
        return Admission.passed()


@dataclass
class _CacheEntry:
    expires_s: float
    fills: int = 1


class ResponseCacheStage(MiddlewareStage):
    """A TTL response cache keyed on the function + payload digest.

    A hit short-circuits with :attr:`RequestOutcome.CACHED` and completes
    ``hit_latency_s`` after arrival (default: instantly — the ingress
    answers from memory).  Entries fill from completed backend responses on
    the unwind path, expire ``ttl_s`` simulated seconds later, and evict
    least-recently-used beyond ``capacity``.  :meth:`invalidate` drops one
    key or the whole cache — the explicit-invalidation path a deploy or a
    data change would trigger.
    """

    name = "cache"

    def __init__(
        self, ttl_s: float = 60.0, capacity: int = 4096, hit_latency_s: float = 0.0
    ) -> None:
        super().__init__()
        if ttl_s <= 0:
            raise MiddlewareError("cache ttl_s must be positive, got %r" % ttl_s)
        if capacity < 1:
            raise MiddlewareError("cache capacity must be >= 1, got %r" % capacity)
        if hit_latency_s < 0:
            raise MiddlewareError("hit_latency_s must be non-negative")
        self.ttl_s = ttl_s
        self.capacity = capacity
        self.hit_latency_s = hit_latency_s
        #: Insertion-ordered: oldest-used first (dicts re-insert on touch).
        self._entries: Dict[str, _CacheEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def on_admit(self, ctx: RequestContext, now: float) -> Admission:
        entry = self._entries.get(ctx.key)
        if entry is not None:
            if now < entry.expires_s:
                # LRU touch: move to the recently-used end.
                del self._entries[ctx.key]
                self._entries[ctx.key] = entry
                self.count("hits")
                return Admission.short_circuit(
                    RequestOutcome.CACHED, completion_s=now + self.hit_latency_s
                )
            del self._entries[ctx.key]
            self.count("expired")
        self.count("misses")
        return Admission.passed()

    def on_complete(
        self, ctx: RequestContext, record: RequestRecord, now: float
    ) -> Iterable[Tuple[RequestContext, RequestRecord]]:
        if record.outcome is RequestOutcome.COMPLETED:
            existing = self._entries.pop(ctx.key, None)
            self._entries[ctx.key] = _CacheEntry(
                expires_s=now + self.ttl_s,
                fills=existing.fills + 1 if existing else 1,
            )
            self.count("fills")
            while len(self._entries) > self.capacity:
                self._entries.pop(next(iter(self._entries)))
                self.count("evicted")
        return ()

    def invalidate(self, key: Optional[str] = None) -> int:
        """Drop one cached response (or all of them); returns entries removed."""
        if key is None:
            removed = len(self._entries)
            self._entries.clear()
        else:
            removed = 1 if self._entries.pop(key, None) is not None else 0
        self.count("invalidated", removed)
        return removed


class CoalesceStage(MiddlewareStage):
    """Duplicate-request coalescing (the classic single-flight pattern).

    The first request for a response key becomes the *leader* and proceeds
    normally; identical requests arriving while the leader is still in
    flight are parked as *followers* — no queue slot, no backend invocation
    — and resolve the instant the leader does.  A completed leader fans its
    result out as :attr:`RequestOutcome.COALESCED` responses at the same
    completion instant; a failed leader (drop/timeout/shed) shares its fate
    with every follower, exactly like single-flight callers sharing an
    error.
    """

    name = "coalesce"

    def __init__(self) -> None:
        super().__init__()
        self._followers: Dict[str, List[RequestContext]] = {}
        self._leaders: Dict[str, int] = {}  # key -> leader request_id

    def waiting(self, key: str) -> int:
        return len(self._followers.get(key, ()))

    def on_admit(self, ctx: RequestContext, now: float) -> Admission:
        if ctx.key in self._leaders:
            self._followers.setdefault(ctx.key, []).append(ctx)
            self.count("parked")
            return Admission.parked()
        self._leaders[ctx.key] = ctx.request_id
        self.count("leaders")
        return Admission.passed()

    def on_complete(
        self, ctx: RequestContext, record: RequestRecord, now: float
    ) -> Iterable[Tuple[RequestContext, RequestRecord]]:
        if self._leaders.get(ctx.key) != ctx.request_id:
            return ()
        del self._leaders[ctx.key]
        followers = self._followers.pop(ctx.key, [])
        results: List[Tuple[RequestContext, RequestRecord]] = []
        for follower in followers:
            request = follower.request
            if record.outcome in (RequestOutcome.COMPLETED, RequestOutcome.CACHED):
                self.count("fanned_out")
                outcome = RequestOutcome.COALESCED
                completion: Optional[float] = record.completion_s
            else:
                self.count("shared_failures")
                outcome = record.outcome
                completion = None
            results.append(
                (
                    follower,
                    RequestRecord(
                        request_id=request.request_id,
                        function=request.function,
                        outcome=outcome,
                        arrival_s=request.arrival_s,
                        completion_s=completion,
                        request_class=getattr(request, "request_class", "standard"),
                        deadline_s=getattr(request, "deadline_s", None),
                    ),
                )
            )
        return results


class HedgeStage(MiddlewareStage):
    """Hedged retries: race a second replica when the tail budget is at risk.

    The stage owns the run's straggler model: with probability
    ``straggler_prob`` an attempt's service time is inflated by
    ``straggler_factor`` (the seeded tail that motivates hedging at all —
    the deterministic per-payload cost never straggles on its own).  At
    dispatch, if the primary attempt would still be running once the
    request's total elapsed time reaches ``budget_s`` — the latency budget,
    typically the SLO's p99 target — and a spare eligible replica exists, a
    hedge launches at that instant on the spare.  First finisher wins; the
    engine cancels the loser at the winner's completion.
    """

    name = "hedge"

    def __init__(
        self,
        budget_s: float = 1.0,
        straggler_prob: float = 0.05,
        straggler_factor: float = 4.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if budget_s <= 0:
            raise MiddlewareError("hedge budget_s must be positive, got %r" % budget_s)
        if not 0.0 <= straggler_prob < 1.0:
            raise MiddlewareError("straggler_prob must be in [0, 1)")
        if straggler_factor < 1.0:
            raise MiddlewareError("straggler_factor must be >= 1.0")
        self.budget_s = budget_s
        self.straggler_prob = straggler_prob
        self.straggler_factor = straggler_factor
        self._rng = random.Random(seed)

    def _attempt_service(self, base_s: float) -> float:
        if self.straggler_prob > 0 and self._rng.random() < self.straggler_prob:
            self.count("stragglers")
            return base_s * self.straggler_factor
        return base_s

    def on_dispatch(self, ctx: RequestContext, now: float, plan: DispatchPlan,
                    spare_replica: bool) -> DispatchPlan:
        base = plan.service_s
        primary = self._attempt_service(base)
        plan.service_s = primary
        self.count("attempts")
        # The hedge trigger: the instant total elapsed time hits the budget.
        trigger = max(0.0, self.budget_s - (now - ctx.arrival_s))
        if not spare_replica or primary <= trigger:
            return plan
        hedge = self._attempt_service(base)
        plan.hedge_delay_s = trigger
        plan.hedge_service_s = hedge
        self.count("fired")
        if trigger + hedge < primary:
            self.count("won")
        else:
            self.count("lost")
        return plan


#: Canonical stage order (what ``build_pipeline`` registers when asked).
STAGE_NAMES: Tuple[str, ...] = ("auth", "rate-limit", "cache", "coalesce", "hedge")


def build_pipeline(
    names: Sequence[str],
    cache_ttl_s: float = 60.0,
    cache_capacity: int = 4096,
    cache_hit_latency_s: float = 0.0,
    rate_limit_rps: float = 50.0,
    rate_limit_burst: Optional[float] = None,
    hedge_budget_s: float = 1.0,
    hedge_straggler_prob: float = 0.05,
    hedge_straggler_factor: float = 4.0,
    hedge_seed: int = 0,
    auth_allow: Optional[Iterable[str]] = None,
    auth_quota: Optional[int] = None,
) -> MiddlewarePipeline:
    """Build a pipeline from stage names (the ``--middleware`` CLI format).

    Stages register in the order given — registration order is execution
    order, so ``cache,coalesce`` checks the cache before coalescing behind
    an in-flight leader.  Unknown names raise :class:`MiddlewareError`.
    """
    factories = {
        "auth": lambda: AuthQuotaStage(allow=auth_allow, quota=auth_quota),
        "rate-limit": lambda: TokenBucketStage(
            rate_rps=rate_limit_rps, burst=rate_limit_burst
        ),
        "cache": lambda: ResponseCacheStage(
            ttl_s=cache_ttl_s, capacity=cache_capacity, hit_latency_s=cache_hit_latency_s
        ),
        "coalesce": CoalesceStage,
        "hedge": lambda: HedgeStage(
            budget_s=hedge_budget_s,
            straggler_prob=hedge_straggler_prob,
            straggler_factor=hedge_straggler_factor,
            seed=hedge_seed,
        ),
    }
    pipeline = MiddlewarePipeline()
    for raw in names:
        name = raw.strip()
        if not name:
            continue
        if name not in factories:
            raise MiddlewareError(
                "unknown middleware %r (known: %s)" % (name, ", ".join(STAGE_NAMES))
            )
        pipeline.register(factories[name]())
    return pipeline
