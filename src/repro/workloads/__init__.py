"""Workloads: payload generators and the paper's experimental sweeps.

The evaluation exchanges serialized strings between chained I/O-bound
functions, sweeping payload sizes from 1 MB to 500 MB and fan-out degrees up
to 100 (Sec. 6.1).  This package produces those payloads — real bytes for the
functional tests and examples, virtual descriptors for the large modeled
sweeps — plus the domain-flavoured generators the examples use.
"""

from repro.workloads.generators import (
    DEFAULT_FANOUT_DEGREES,
    DEFAULT_SWEEP_SIZES_MB,
    fanout_degrees,
    make_payload,
    payload_sweep_sizes_mb,
)
from repro.workloads.scenarios import (
    image_frame,
    sensor_batch,
    video_frame_stream,
    traffic_records,
)
from repro.workloads.traces import (
    InvocationTrace,
    bursty_trace,
    compare_modes_on_trace,
    mixed_size_trace,
    poisson_trace,
    replay_trace,
)

__all__ = [
    "InvocationTrace",
    "bursty_trace",
    "compare_modes_on_trace",
    "mixed_size_trace",
    "poisson_trace",
    "replay_trace",
    "DEFAULT_FANOUT_DEGREES",
    "DEFAULT_SWEEP_SIZES_MB",
    "fanout_degrees",
    "make_payload",
    "payload_sweep_sizes_mb",
    "image_frame",
    "sensor_batch",
    "video_frame_stream",
    "traffic_records",
]
