"""Trace-driven workloads: replay realistic invocation patterns.

The paper's evaluation uses fixed-size sweeps; production serverless traffic
is bursty and skewed (Shahrad et al., "Serverless in the Wild").  This module
generates deterministic synthetic invocation traces (Poisson arrivals, bursty
on/off periods, payload-size mixes) and replays them against any data-passing
mode, reporting the latency distribution and resource totals.  It is used by
tests and available to downstream users who want to evaluate Roadrunner under
their own traffic shape rather than the paper's sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.environment import build_pair_setup
from repro.metrics.records import TransferMetrics
from repro.metrics.stats import mean, p95
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.workloads.generators import make_payload

MB = 1024 * 1024


class TraceError(ValueError):
    """Raised for invalid trace parameters."""


@dataclass(frozen=True)
class Invocation:
    """One invocation: when it arrives and how much data it moves."""

    arrival_s: float
    payload_bytes: int

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise TraceError("arrival time must be non-negative")
        if self.payload_bytes <= 0:
            raise TraceError("payload size must be positive")


@dataclass(frozen=True)
class InvocationTrace:
    """A time-ordered sequence of invocations."""

    name: str
    invocations: Tuple[Invocation, ...]

    def __post_init__(self) -> None:
        if not self.invocations:
            raise TraceError("a trace needs at least one invocation")
        arrivals = [inv.arrival_s for inv in self.invocations]
        if arrivals != sorted(arrivals):
            raise TraceError("invocations must be ordered by arrival time")

    def __len__(self) -> int:
        return len(self.invocations)

    @property
    def duration_s(self) -> float:
        return self.invocations[-1].arrival_s

    @property
    def total_bytes(self) -> int:
        return sum(inv.payload_bytes for inv in self.invocations)


def poisson_trace(
    rate_per_s: float,
    duration_s: float,
    payload_mb: float = 10.0,
    seed: int = 0,
    name: str = "poisson",
) -> InvocationTrace:
    """Poisson arrivals at ``rate_per_s`` with a fixed payload size."""
    if rate_per_s <= 0 or duration_s <= 0:
        raise TraceError("rate and duration must be positive")
    rng = random.Random(seed)
    now = 0.0
    invocations: List[Invocation] = []
    while True:
        now += rng.expovariate(rate_per_s)
        if now > duration_s:
            break
        invocations.append(Invocation(arrival_s=now, payload_bytes=int(payload_mb * MB)))
    if not invocations:
        invocations.append(Invocation(arrival_s=0.0, payload_bytes=int(payload_mb * MB)))
    return InvocationTrace(name=name, invocations=tuple(invocations))


def bursty_trace(
    bursts: int = 5,
    burst_size: int = 20,
    gap_s: float = 10.0,
    payload_mb: float = 10.0,
    intra_burst_gap_s: float = 0.05,
    name: str = "bursty",
) -> InvocationTrace:
    """On/off traffic: ``bursts`` bursts of ``burst_size`` back-to-back calls."""
    if bursts <= 0 or burst_size <= 0:
        raise TraceError("bursts and burst_size must be positive")
    invocations: List[Invocation] = []
    clock = 0.0
    for _ in range(bursts):
        for _ in range(burst_size):
            invocations.append(Invocation(arrival_s=clock, payload_bytes=int(payload_mb * MB)))
            clock += intra_burst_gap_s
        clock += gap_s
    return InvocationTrace(name=name, invocations=tuple(invocations))


def mixed_size_trace(
    count: int = 100,
    sizes_mb: Sequence[float] = (1, 10, 60, 100),
    weights: Sequence[float] = (0.6, 0.25, 0.1, 0.05),
    inter_arrival_s: float = 0.5,
    seed: int = 0,
    name: str = "mixed",
) -> InvocationTrace:
    """A skewed payload-size mix (mostly small, occasionally large)."""
    if count <= 0:
        raise TraceError("count must be positive")
    if len(sizes_mb) != len(weights):
        raise TraceError("sizes_mb and weights must have the same length")
    rng = random.Random(seed)
    invocations = []
    for i in range(count):
        size_mb = rng.choices(list(sizes_mb), weights=list(weights))[0]
        invocations.append(
            Invocation(arrival_s=i * inter_arrival_s, payload_bytes=int(size_mb * MB))
        )
    return InvocationTrace(name=name, invocations=tuple(invocations))


@dataclass(frozen=True)
class TraceReplayResult:
    """Aggregate results of replaying a trace in one mode."""

    trace_name: str
    mode: str
    invocations: int
    mean_latency_s: float
    p95_latency_s: float
    max_latency_s: float
    total_cpu_s: float
    total_copied_bytes: int
    busy_fraction: float

    def summary(self) -> str:
        return (
            "%s on %s: %d invocations, mean %.4fs, p95 %.4fs, max %.4fs, "
            "cpu %.2fs, busy %.1f%%"
            % (
                self.trace_name,
                self.mode,
                self.invocations,
                self.mean_latency_s,
                self.p95_latency_s,
                self.max_latency_s,
                self.total_cpu_s,
                100 * self.busy_fraction,
            )
        )


def replay_trace(
    trace: InvocationTrace,
    mode: str,
    internode: bool = False,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> TraceReplayResult:
    """Replay every invocation of ``trace`` through a fresh environment.

    Transfers with the same payload size share a cached measurement (the
    simulation is deterministic), so replaying long traces stays cheap.
    """
    cache: Dict[int, TransferMetrics] = {}
    latencies: List[float] = []
    total_cpu = 0.0
    total_copied = 0
    for invocation in trace.invocations:
        metrics = cache.get(invocation.payload_bytes)
        if metrics is None:
            setup = build_pair_setup(mode, internode=internode, cost_model=cost_model)
            payload = make_payload(invocation.payload_bytes / MB)
            metrics = setup.channel.transfer(setup.source, setup.target, payload).metrics
            cache[invocation.payload_bytes] = metrics
        latencies.append(metrics.total_latency_s)
        total_cpu += metrics.cpu_total_s
        total_copied += metrics.copied_bytes
    slowest = max(latencies)
    window = max(trace.duration_s + slowest, slowest)
    busy = min(1.0, sum(latencies) / window) if window > 0 else 1.0
    return TraceReplayResult(
        trace_name=trace.name,
        mode=mode,
        invocations=len(trace),
        mean_latency_s=mean(latencies),
        p95_latency_s=p95(latencies),
        max_latency_s=slowest,
        total_cpu_s=total_cpu,
        total_copied_bytes=total_copied,
        busy_fraction=busy,
    )


def compare_modes_on_trace(
    trace: InvocationTrace,
    modes: Sequence[str],
    internode: bool = False,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Dict[str, TraceReplayResult]:
    """Replay the same trace in several modes (keyed by mode)."""
    return {
        mode: replay_trace(trace, mode, internode=internode, cost_model=cost_model)
        for mode in modes
    }
