"""Payload sweeps matching the paper's evaluation parameters."""

from __future__ import annotations

from typing import List, Sequence

from repro.payload import Payload

MB = 1024 * 1024

#: Payload sizes (MB) swept by Figs. 7 and 8 (1 MB to 500 MB, Sec. 6.1).
DEFAULT_SWEEP_SIZES_MB: Sequence[int] = (1, 10, 50, 100, 200, 300, 400, 500)

#: Fan-out degrees swept by Figs. 9 and 10.
DEFAULT_FANOUT_DEGREES: Sequence[int] = (1, 10, 25, 50, 75, 100)

#: Payload size used by the fan-out experiments (10 MB, Sec. 6.4).
FANOUT_PAYLOAD_MB = 10

#: Payload size of the inter-node breakdown figure (100 MB, Fig. 6).
BREAKDOWN_PAYLOAD_MB = 100


class WorkloadError(ValueError):
    """Raised for invalid workload parameters."""


def payload_sweep_sizes_mb(
    maximum_mb: int = 500, sizes: Sequence[int] = DEFAULT_SWEEP_SIZES_MB
) -> List[int]:
    """The sweep sizes, truncated to ``maximum_mb`` (useful for quick runs)."""
    if maximum_mb <= 0:
        raise WorkloadError("maximum_mb must be positive")
    return [size for size in sizes if size <= maximum_mb]


def fanout_degrees(
    maximum: int = 100, degrees: Sequence[int] = DEFAULT_FANOUT_DEGREES
) -> List[int]:
    """The fan-out degrees, truncated to ``maximum``."""
    if maximum <= 0:
        raise WorkloadError("maximum must be positive")
    return [degree for degree in degrees if degree <= maximum]


def make_payload(size_mb: float, real: bool = False, seed: int = 0) -> Payload:
    """A payload of ``size_mb`` megabytes.

    ``real=True`` materialises actual bytes (keep it small); the default
    virtual payload is what the large modeled sweeps use.
    """
    if size_mb <= 0:
        raise WorkloadError("size_mb must be positive")
    size = int(size_mb * MB)
    if real:
        return Payload.random(size, seed=seed)
    return Payload.virtual(size, seed=seed)
