"""Domain-flavoured payload generators for the example applications.

The paper motivates Roadrunner with data-intensive edge-cloud scenarios:
ML-based image processing pipelines (ingestion, frame extraction, processing,
inference) and traffic data analytics (Sec. 1).  These generators produce
small but structurally realistic payloads for those scenarios so the examples
exercise real bytes end to end.
"""

from __future__ import annotations

import json
import struct
from typing import Iterator, List

from repro.payload import Payload


class ScenarioError(ValueError):
    """Raised for invalid scenario parameters."""


def image_frame(width: int = 640, height: int = 360, channels: int = 3, seed: int = 0) -> Payload:
    """A synthetic raw image frame (deterministic pixel pattern)."""
    if width <= 0 or height <= 0 or channels not in (1, 3, 4):
        raise ScenarioError("invalid frame geometry")
    row = bytes((x * 7 + seed) % 256 for x in range(width * channels))
    data = b"".join(bytes((byte + y) % 256 for byte in row) for y in range(height))
    header = struct.pack("<HHB", width, height, channels)
    return Payload.from_bytes(header + data, content_type="image/raw")


def video_frame_stream(frames: int = 8, width: int = 320, height: int = 180) -> List[Payload]:
    """A short stream of frames, as produced by a frame-extraction function."""
    if frames <= 0:
        raise ScenarioError("frames must be positive")
    return [image_frame(width=width, height=height, seed=i) for i in range(frames)]


def sensor_batch(readings: int = 256, sensor_id: str = "edge-sensor-1") -> Payload:
    """A batch of IoT sensor readings serialized as JSON text."""
    if readings <= 0:
        raise ScenarioError("readings must be positive")
    records = [
        {
            "sensor": sensor_id,
            "sequence": i,
            "temperature_c": round(20.0 + (i % 17) * 0.25, 2),
            "humidity_pct": round(40.0 + (i % 11) * 0.5, 2),
        }
        for i in range(readings)
    ]
    return Payload.from_text(json.dumps({"readings": records}, separators=(",", ":")))


def traffic_records(vehicles: int = 500, intersection: str = "A-12") -> Payload:
    """Traffic analytics records (the paper's second motivating workload)."""
    if vehicles <= 0:
        raise ScenarioError("vehicles must be positive")
    rows = [
        {
            "intersection": intersection,
            "vehicle": i,
            "speed_kmh": 30 + (i * 13) % 70,
            "lane": i % 4,
            "timestamp_ms": 1_700_000_000_000 + i * 40,
        }
        for i in range(vehicles)
    ]
    return Payload.from_text(json.dumps({"records": rows}, separators=(",", ":")))
