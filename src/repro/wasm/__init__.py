"""Wasm substrate: linear memory, modules, VMs, a WasmEdge-like runtime, WASI.

This package models the pieces of WebAssembly that Roadrunner's mechanism
depends on:

* a byte-addressable, bounds-checked **linear memory** with 64 KiB pages and
  a guest-side allocator (`allocate_memory` / `deallocate_memory` in the
  paper's Table 1);
* **module instances** owning their linear memory, hosted inside a sandboxed
  **Wasm VM**;
* a **runtime** (WasmEdge-like) that creates VMs, loads modules and exposes
  host-side memory access APIs;
* a **WASI** layer whose host calls pay the boundary-crossing costs the paper
  identifies as the main Wasm I/O overhead.
"""

from repro.wasm.values import WasmValueType, pack_value, unpack_value
from repro.wasm.linear_memory import LinearMemory, MemoryAccessError, OutOfMemoryError
from repro.wasm.module import WasmModule, WasmInstance
from repro.wasm.vm import WasmVM, HostMemoryApi
from repro.wasm.runtime import WasmRuntime, RuntimeKind
from repro.wasm.wasi import WasiInterface

__all__ = [
    "WasmValueType",
    "pack_value",
    "unpack_value",
    "LinearMemory",
    "MemoryAccessError",
    "OutOfMemoryError",
    "WasmModule",
    "WasmInstance",
    "WasmVM",
    "HostMemoryApi",
    "WasmRuntime",
    "RuntimeKind",
    "WasiInterface",
]
