"""Wasm value types and little-endian encoding helpers.

Wasm only defines four primitive value types (i32, i64, f32, f64); complex
data such as strings live in linear memory and are referred to by
(pointer, length) pairs.  Roadrunner's serialization-free transfer relies on
both ends agreeing on endianness (little-endian, as on x86 and ARM) and on
the explicit integer widths — these helpers encode exactly that contract.
"""

from __future__ import annotations

import enum
import struct
from typing import Union

Number = Union[int, float]


class WasmValueError(ValueError):
    """Raised when a value does not fit its declared Wasm type."""


class WasmValueType(enum.Enum):
    """The four Wasm primitive value types."""

    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"

    @property
    def size(self) -> int:
        """Width of the type in bytes."""
        return _SIZES[self]

    @property
    def struct_format(self) -> str:
        """Little-endian ``struct`` format character."""
        return _FORMATS[self]


_SIZES = {
    WasmValueType.I32: 4,
    WasmValueType.I64: 8,
    WasmValueType.F32: 4,
    WasmValueType.F64: 8,
}

_FORMATS = {
    WasmValueType.I32: "<i",
    WasmValueType.I64: "<q",
    WasmValueType.F32: "<f",
    WasmValueType.F64: "<d",
}

I32_MIN, I32_MAX = -(2 ** 31), 2 ** 31 - 1
I64_MIN, I64_MAX = -(2 ** 63), 2 ** 63 - 1

#: Unsigned 32-bit ceiling, used for pointer/length validation.
U32_MAX = 2 ** 32 - 1


def pack_value(value_type: WasmValueType, value: Number) -> bytes:
    """Encode ``value`` as the little-endian byte representation of its type."""
    if value_type is WasmValueType.I32:
        if not isinstance(value, int) or not I32_MIN <= value <= I32_MAX:
            raise WasmValueError("value %r does not fit i32" % (value,))
    elif value_type is WasmValueType.I64:
        if not isinstance(value, int) or not I64_MIN <= value <= I64_MAX:
            raise WasmValueError("value %r does not fit i64" % (value,))
    elif not isinstance(value, (int, float)):
        raise WasmValueError("value %r is not numeric" % (value,))
    return struct.pack(value_type.struct_format, value)


def unpack_value(value_type: WasmValueType, data: bytes) -> Number:
    """Decode a value of ``value_type`` from its little-endian bytes."""
    if len(data) != value_type.size:
        raise WasmValueError(
            "expected %d bytes for %s, got %d" % (value_type.size, value_type.value, len(data))
        )
    return struct.unpack(value_type.struct_format, data)[0]


def pack_pointer_length(address: int, length: int) -> bytes:
    """Encode the (pointer, length) pair returned by ``locate_memory_region``."""
    if not 0 <= address <= U32_MAX:
        raise WasmValueError("address %r does not fit u32" % (address,))
    if not 0 <= length <= U32_MAX:
        raise WasmValueError("length %r does not fit u32" % (length,))
    return struct.pack("<II", address, length)


def unpack_pointer_length(data: bytes) -> "tuple[int, int]":
    """Decode a (pointer, length) pair."""
    if len(data) != 8:
        raise WasmValueError("expected 8 bytes for a pointer/length pair, got %d" % len(data))
    address, length = struct.unpack("<II", data)
    return address, length
