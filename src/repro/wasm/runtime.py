"""A WasmEdge-like runtime: creates VMs, loads modules, models cold starts.

The runtime is what the shim drives during the function lifecycle described
in Sec. 3.2.5: create a dedicated Wasm VM, configure resource limits, load the
function binary into the VM's isolated memory space.  Cold-start latency
(module load + compile + VM setup) is what Fig. 2a compares against container
cold starts.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.ledger import CostCategory, CostLedger, CpuDomain
from repro.wasm.module import WasmModule
from repro.wasm.vm import WasmVM


class RuntimeKind(enum.Enum):
    """The runtimes compared in the evaluation."""

    WASMEDGE = "wasmedge"
    RUNC = "runc"
    ROADRUNNER = "roadrunner"


class WasmRuntime:
    """Creates and configures Wasm VMs (the WasmEdge role in the paper)."""

    def __init__(
        self,
        ledger: CostLedger,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        kind: RuntimeKind = RuntimeKind.WASMEDGE,
    ) -> None:
        self.ledger = ledger
        self.cost_model = cost_model
        self.kind = kind
        self._vm_counter = 0

    def create_vm(
        self,
        name: Optional[str] = None,
        tenant: str = "default",
        workflow: str = "default",
        materialize: bool = True,
        max_pages: int = 65536,
        charge_cold_start: bool = False,
    ) -> WasmVM:
        """Create a sandboxed VM, optionally charging the VM setup cost."""
        self._vm_counter += 1
        vm_name = name or "%s-vm-%d" % (self.kind.value, self._vm_counter)
        if charge_cold_start:
            self.ledger.charge(
                CostCategory.COLD_START,
                self.cost_model.wasm_vm_setup,
                cpu_domain=CpuDomain.USER,
                label="wasm-vm-setup:%s" % vm_name,
            )
        return WasmVM(
            name=vm_name,
            ledger=self.ledger,
            cost_model=self.cost_model,
            tenant=tenant,
            workflow=workflow,
            materialize=materialize,
            max_pages=max_pages,
        )

    def load_module(self, vm: WasmVM, module: WasmModule, charge_cold_start: bool = False):
        """Instantiate ``module`` in ``vm``; optionally charge compile time."""
        if charge_cold_start:
            compile_time = self.cost_model.transfer_time(
                module.binary_size, self.cost_model.wasm_instantiate_bandwidth
            )
            self.ledger.charge(
                CostCategory.COLD_START,
                compile_time,
                cpu_domain=CpuDomain.USER,
                nbytes=module.binary_size,
                copied=True,
                label="wasm-compile:%s" % module.name,
            )
        return vm.instantiate(module)

    def cold_start_time(self, module: WasmModule) -> float:
        """Total cold-start latency for a function packaged as ``module``."""
        return self.cost_model.wasm_vm_setup + self.cost_model.transfer_time(
            module.binary_size, self.cost_model.wasm_instantiate_bandwidth
        )
