"""Wasm modules and module instances.

A :class:`WasmModule` is the compiled artifact (the ``.wasm`` binary): a name,
a binary size, exported functions and whether it needs WASI.  A
:class:`WasmInstance` is that module instantiated inside a VM, owning its own
linear memory — the unit Roadrunner's shim talks to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.payload import Payload
from repro.wasm.linear_memory import LinearMemory


class ModuleError(RuntimeError):
    """Raised for invalid module definitions or lookups."""


@dataclass(frozen=True)
class WasmModule:
    """A compiled Wasm binary."""

    name: str
    binary_size: int = 3_190_000  # ~3.19 MB, the paper's Fig. 2a example binary
    exports: Tuple[str, ...] = ("handle",)
    requires_wasi: bool = False
    #: Guest handler invoked by the platform; receives and returns a Payload.
    handler: Optional[Callable[[Payload], Payload]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ModuleError("module name must be non-empty")
        if self.binary_size <= 0:
            raise ModuleError("binary_size must be positive")
        if not self.exports:
            raise ModuleError("a module must export at least one function")

    @classmethod
    def passthrough(cls, name: str, requires_wasi: bool = False) -> "WasmModule":
        """A module whose handler returns its input unchanged (I/O-bound)."""
        return cls(name=name, requires_wasi=requires_wasi, handler=lambda payload: payload)


class WasmInstance:
    """A module instantiated inside a Wasm VM, with its own linear memory."""

    def __init__(self, module: WasmModule, memory: LinearMemory, vm_name: str) -> None:
        self.module = module
        self.memory = memory
        self.vm_name = vm_name
        self._exports: Dict[str, Callable[..., object]] = {}
        self._input_address: Optional[int] = None
        self._output_address: Optional[int] = None

    @property
    def name(self) -> str:
        return self.module.name

    # -- exports -----------------------------------------------------------------

    def register_export(self, name: str, func: Callable[..., object]) -> None:
        """Register a host-callable export (used by the guest-side API)."""
        if name not in self.module.exports:
            raise ModuleError(
                "module %r does not declare export %r" % (self.module.name, name)
            )
        self._exports[name] = func

    def call_export(self, name: str, *args: object) -> object:
        if name not in self._exports:
            raise ModuleError("export %r is not registered on %r" % (name, self.module.name))
        return self._exports[name](*args)

    # -- guest-visible data slots --------------------------------------------------

    def set_input(self, address: int) -> None:
        """Record where the shim placed this instance's input payload."""
        self._input_address = address

    def set_output(self, address: int) -> None:
        """Record where the guest placed its output payload."""
        self._output_address = address

    @property
    def input_address(self) -> Optional[int]:
        return self._input_address

    @property
    def output_address(self) -> Optional[int]:
        return self._output_address

    def read_input(self) -> Payload:
        """Guest-side helper: read the payload the shim delivered."""
        if self._input_address is None:
            raise ModuleError("instance %r has no input payload" % self.module.name)
        length = self.memory.allocation_size(self._input_address)
        return self.memory.read_payload(self._input_address, length)

    def produce_output(self, payload: Payload) -> int:
        """Guest-side helper: store an output payload and remember its address."""
        address = self.memory.store_payload(payload)
        self._output_address = address
        return address

    def run_handler(self) -> Payload:
        """Execute the module's handler on its input and store the result."""
        if self.module.handler is None:
            raise ModuleError("module %r has no handler" % self.module.name)
        result = self.module.handler(self.read_input())
        self.produce_output(result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "WasmInstance(module=%r, vm=%r)" % (self.module.name, self.vm_name)
