"""The Wasm VM sandbox and the host-side memory API.

A :class:`WasmVM` is one isolation sandbox.  In Roadrunner's user-space mode
several module instances of the same workflow and tenant share one VM; in the
kernel-space and network modes each function has its own VM.  The host (the
shim) never touches linear memory directly — it goes through
:class:`HostMemoryApi`, which performs bounds-checked accesses and charges the
"Wasm VM I/O" cost the paper's Fig. 6 breaks out.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.payload import Payload
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.ledger import CostCategory, CostLedger, CpuDomain, MemoryMeter
from repro.wasm.linear_memory import LinearMemory, MemoryAccessError
from repro.wasm.module import ModuleError, WasmInstance, WasmModule


class VmError(RuntimeError):
    """Raised for invalid VM operations (unknown instances, tenant mismatch)."""


class WasmVM:
    """A sandboxed Wasm virtual machine hosting one or more module instances."""

    def __init__(
        self,
        name: str,
        ledger: CostLedger,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        tenant: str = "default",
        workflow: str = "default",
        materialize: bool = True,
        initial_pages: int = 2,
        max_pages: int = 65536,
    ) -> None:
        self.name = name
        self.ledger = ledger
        self.cost_model = cost_model
        self.tenant = tenant
        self.workflow = workflow
        self.materialize = materialize
        self.initial_pages = initial_pages
        self.max_pages = max_pages
        self._instances: Dict[str, WasmInstance] = {}
        baseline = int(cost_model.wasm_baseline_rss_mb * 1024 * 1024)
        self.meter: MemoryMeter = ledger.meter(name, baseline_bytes=baseline)

    # -- lifecycle -----------------------------------------------------------------

    def instantiate(self, module: WasmModule) -> WasmInstance:
        """Instantiate ``module`` inside this VM with a fresh linear memory."""
        if module.name in self._instances:
            raise VmError("module %r is already instantiated in VM %r" % (module.name, self.name))
        memory = LinearMemory(
            initial_pages=self.initial_pages,
            max_pages=self.max_pages,
            materialize=self.materialize,
            meter=self.meter,
            name="%s/%s" % (self.name, module.name),
        )
        instance = WasmInstance(module=module, memory=memory, vm_name=self.name)
        self._instances[module.name] = instance
        return instance

    def instance(self, module_name: str) -> WasmInstance:
        if module_name not in self._instances:
            raise VmError("VM %r has no instance of module %r" % (self.name, module_name))
        return self._instances[module_name]

    @property
    def instances(self) -> List[WasmInstance]:
        return list(self._instances.values())

    def terminate(self, module_name: str) -> None:
        """Drop an instance (its memory becomes unreachable)."""
        if module_name not in self._instances:
            raise VmError("VM %r has no instance of module %r" % (self.name, module_name))
        del self._instances[module_name]

    # -- host access ----------------------------------------------------------------

    def host_api(self) -> "HostMemoryApi":
        """The host-side memory API used by the Roadrunner shim."""
        return HostMemoryApi(self)


class HostMemoryApi:
    """Host-side access to the linear memories of a VM's instances.

    Implements the "Shim" rows of the paper's Table 1
    (``read_memory_host`` / ``write_memory_host``) plus allocation on behalf
    of a target instance.  Every call charges Wasm-I/O time to the VM's
    ledger, because data crossing the VM boundary is exactly the penalty the
    paper accepts in exchange for removing serialization.
    """

    def __init__(self, vm: WasmVM) -> None:
        self.vm = vm

    def _charge_io(self, nbytes: int, label: str) -> None:
        self.vm.ledger.charge(
            CostCategory.WASM_IO,
            self.vm.cost_model.wasm_io_time(nbytes),
            cpu_domain=CpuDomain.USER,
            nbytes=nbytes,
            copied=True,
            label=label,
        )

    def read_memory_host(self, module_name: str, address: int, length: int) -> Payload:
        """Read ``length`` bytes from an instance's memory (shim ingress)."""
        instance = self.vm.instance(module_name)
        payload = instance.memory.read_payload(address, length)
        self._charge_io(length, "read_memory_host:%s" % module_name)
        return payload

    def write_memory_host(self, module_name: str, payload: Payload, address: int) -> None:
        """Write a payload into an instance's memory (shim egress)."""
        instance = self.vm.instance(module_name)
        instance.memory.write_payload(address, payload)
        instance.set_input(address)
        self._charge_io(payload.size, "write_memory_host:%s" % module_name)

    def allocate_memory(self, module_name: str, length: int) -> int:
        """Allocate ``length`` bytes in an instance on behalf of the shim."""
        instance = self.vm.instance(module_name)
        address = instance.memory.allocate(length)
        # Allocation is cheap relative to copies, but it is not free: charge
        # the metadata overhead once.
        self.vm.ledger.charge(
            CostCategory.WASM_IO,
            self.vm.cost_model.region_metadata_overhead,
            cpu_domain=CpuDomain.USER,
            label="allocate_memory:%s" % module_name,
        )
        return address

    def deallocate_memory(self, module_name: str, address: int) -> int:
        """Free an allocation previously made in an instance."""
        instance = self.vm.instance(module_name)
        length = instance.memory.deallocate(address)
        self.vm.ledger.charge(
            CostCategory.WASM_IO,
            self.vm.cost_model.region_metadata_overhead,
            cpu_domain=CpuDomain.USER,
            label="deallocate_memory:%s" % module_name,
        )
        return length

    def locate_memory_region(self, module_name: str, address: int) -> "tuple[int, int]":
        """Return the (pointer, length) of a guest allocation."""
        instance = self.vm.instance(module_name)
        pointer, length = instance.memory.locate(address)
        self.vm.ledger.charge(
            CostCategory.WASM_IO,
            self.vm.cost_model.region_metadata_overhead,
            cpu_domain=CpuDomain.USER,
            label="locate_memory_region:%s" % module_name,
        )
        return pointer, length
