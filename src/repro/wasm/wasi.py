"""WASI: the host interface Wasm functions must use for I/O.

Wasm follows deny-by-default; any interaction with the host (files, sockets,
clocks) goes through WASI host calls.  Each call marshals arguments across the
VM boundary and copies data in or out of linear memory — the overhead the
paper's Fig. 2 motivates and that the WasmEdge baseline pays on every byte it
sends or receives over HTTP.
"""

from __future__ import annotations

from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.payload import Payload
from repro.sim.ledger import CostCategory, CpuDomain
from repro.wasm.module import WasmInstance
from repro.wasm.vm import WasmVM


class WasiError(RuntimeError):
    """Raised when a WASI capability is missing or misused."""


class WasiInterface:
    """WASI host-call layer for one VM, bound to the host process running it."""

    def __init__(self, vm: WasmVM, process: Process, kernel: Kernel) -> None:
        self.vm = vm
        self.process = process
        self.kernel = kernel
        self.host_calls = 0

    # -- internals ------------------------------------------------------------

    def _charge_call(self, label: str) -> None:
        self.host_calls += 1
        seconds = self.vm.cost_model.wasi_call_overhead
        self.vm.ledger.charge(
            CostCategory.WASM_IO,
            seconds,
            cpu_domain=CpuDomain.USER,
            label="wasi:%s" % label,
        )
        self.process.charge_cpu(CpuDomain.USER, seconds)

    def _charge_boundary_copy(self, nbytes: int, label: str) -> None:
        seconds = self.vm.cost_model.wasm_io_time(nbytes)
        self.vm.ledger.charge(
            CostCategory.WASM_IO,
            seconds,
            cpu_domain=CpuDomain.USER,
            nbytes=nbytes,
            copied=True,
            label="wasi-copy:%s" % label,
        )
        self.process.charge_cpu(CpuDomain.USER, seconds)

    # -- data movement across the VM boundary --------------------------------------

    def copy_out(self, instance: WasmInstance, address: int, length: int) -> Payload:
        """Copy ``length`` bytes from linear memory to a host buffer."""
        self._require_wasi(instance)
        self._charge_call("copy_out:%s" % instance.name)
        payload = instance.memory.read_payload(address, length)
        self._charge_boundary_copy(length, instance.name)
        # The host-side staging buffer is real memory in the shim process.
        self.process.cgroup.memory.allocate(length)
        return payload

    def copy_in(self, instance: WasmInstance, payload: Payload) -> int:
        """Copy a host buffer into linear memory; returns the guest address.

        The host buffer's accounting stays with whoever allocated it: a
        buffer staged by :meth:`copy_out` is returned via
        :meth:`release_host_buffer` once the caller is done with it.  (The
        old unconditional free here charged the *receiving* shim for send-
        side staging it never allocated.)
        """
        self._require_wasi(instance)
        self._charge_call("copy_in:%s" % instance.name)
        address = instance.memory.allocate(payload.size)
        instance.memory.write_payload(address, payload)
        instance.set_input(address)
        self._charge_boundary_copy(payload.size, instance.name)
        return address

    def release_host_buffer(self, payload: Payload) -> None:
        """Release a host staging buffer created by :meth:`copy_out`."""
        self.process.cgroup.memory.free(payload.size)

    # -- classic WASI entry points (thin wrappers used by examples/tests) ----------------

    def fd_write(self, instance: WasmInstance, address: int, length: int) -> Payload:
        """``fd_write``-like call: guest hands (ptr, len) to the host."""
        return self.copy_out(instance, address, length)

    def fd_read(self, instance: WasmInstance, payload: Payload) -> int:
        """``fd_read``-like call: host delivers data into guest memory."""
        return self.copy_in(instance, payload)

    def sock_send(self, instance: WasmInstance, address: int, length: int) -> Payload:
        """``sock_send``: copy out of the VM; the caller pushes it to a socket."""
        return self.copy_out(instance, address, length)

    def sock_recv(self, instance: WasmInstance, payload: Payload) -> int:
        """``sock_recv``: copy a received buffer into the VM."""
        return self.copy_in(instance, payload)

    # -- file access (path_open / fd_read over a virtual filesystem) ------------------

    def read_host_file(self, instance: WasmInstance, filesystem, path: str) -> int:
        """Read a host file into linear memory (``path_open`` + ``fd_read``).

        The filesystem charges the kernel-side costs (syscalls, page-cache
        copy); this call adds the WASI host-call and VM-boundary-copy costs —
        the combination the paper's Fig. 2a identifies as the Wasm execution
        penalty for file-bound workloads.
        """
        self._require_wasi(instance)
        self._charge_call("path_open:%s" % path)
        payload = filesystem.read_file(self.process, path)
        return self.copy_in(instance, payload)

    def write_host_file(self, instance: WasmInstance, filesystem, path: str,
                        address: int, length: int) -> None:
        """Write a region of linear memory to a host file (``fd_write``)."""
        self._require_wasi(instance)
        self._charge_call("path_create:%s" % path)
        payload = self.copy_out(instance, address, length)
        filesystem.write_file(self.process, path, payload)
        # The staging buffer dies once the kernel has the bytes.
        self.release_host_buffer(payload)

    def _require_wasi(self, instance: WasmInstance) -> None:
        if not instance.module.requires_wasi:
            raise WasiError(
                "module %r was not granted WASI capabilities (deny-by-default)"
                % instance.module.name
            )
