"""Wasm linear memory: contiguous, byte-addressable, bounds-checked.

The memory grows in 64 KiB Wasm pages and exposes a small guest-side
allocator, mirroring the ``allocate_memory`` / ``deallocate_memory`` functions
of the paper's Table 1.  Two operating modes share the same interface:

* **materialized** (default) — a real ``bytearray`` backs the memory; raw
  reads and writes move actual bytes and payload integrity can be verified.
* **modeled** — no backing array is kept; allocations, bounds checks and
  payload bookkeeping still happen, but only payload descriptors move.  This
  is what lets the experiment harness sweep 500 MB payloads without turning
  the benchmark into a host memcpy test.

All accesses are bounds-checked; a violation raises
:class:`MemoryAccessError`, matching Wasm's trap-on-out-of-bounds semantics
("the function execution simply fails without affecting other parts of the
system", Sec. 7).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.payload import Payload, PayloadError
from repro.sim.costs import WASM_PAGE_SIZE
from repro.sim.ledger import MemoryMeter


class MemoryAccessError(RuntimeError):
    """Out-of-bounds or otherwise invalid linear memory access (a Wasm trap)."""


class OutOfMemoryError(RuntimeError):
    """The allocator could not satisfy a request within ``max_pages``."""


class AllocationError(RuntimeError):
    """Invalid allocator usage (double free, unknown address)."""


class LinearMemory:
    """A single module instance's linear memory."""

    #: Allocations start above a small reserved region (module data/stack),
    #: like wasm-ld's default data layout.
    RESERVED_BYTES = 1024

    def __init__(
        self,
        initial_pages: int = 2,
        max_pages: int = 4096,
        materialize: bool = True,
        meter: Optional[MemoryMeter] = None,
        name: str = "memory",
    ) -> None:
        if initial_pages < 1:
            raise MemoryAccessError("linear memory needs at least one page")
        if max_pages < initial_pages:
            raise MemoryAccessError("max_pages must be >= initial_pages")
        self.name = name
        self._pages = initial_pages
        self._max_pages = max_pages
        self._materialize = materialize
        self._buffer: Optional[bytearray] = (
            bytearray(initial_pages * WASM_PAGE_SIZE) if materialize else None
        )
        self._meter = meter
        # Allocator state: address -> size for live allocations, plus a free list.
        self._allocations: Dict[int, int] = {}
        self._free_list: Dict[int, int] = {}
        self._bump = self.RESERVED_BYTES
        # Virtual payload segments (modeled mode): address -> Payload.
        self._segments: Dict[int, Payload] = {}
        if meter is not None:
            meter.allocate(initial_pages * WASM_PAGE_SIZE if materialize else 0)

    # -- geometry ---------------------------------------------------------------

    @property
    def pages(self) -> int:
        return self._pages

    @property
    def size_bytes(self) -> int:
        return self._pages * WASM_PAGE_SIZE

    @property
    def max_pages(self) -> int:
        return self._max_pages

    @property
    def materialized(self) -> bool:
        return self._materialize

    def grow(self, delta_pages: int) -> int:
        """Grow the memory by ``delta_pages``; returns the previous page count.

        Mirrors ``memory.grow``: growing beyond ``max_pages`` raises
        :class:`OutOfMemoryError` (instead of Wasm's -1 return, which is too
        easy to ignore in Python).
        """
        if delta_pages < 0:
            raise MemoryAccessError("cannot grow by a negative number of pages")
        new_pages = self._pages + delta_pages
        if new_pages > self._max_pages:
            raise OutOfMemoryError(
                "grow to %d pages exceeds the limit of %d pages" % (new_pages, self._max_pages)
            )
        previous = self._pages
        self._pages = new_pages
        if self._buffer is not None:
            self._buffer.extend(bytes(delta_pages * WASM_PAGE_SIZE))
        if self._meter is not None and self._materialize:
            self._meter.allocate(delta_pages * WASM_PAGE_SIZE)
        return previous

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0:
            raise MemoryAccessError(
                "negative address or length (address=%d, length=%d)" % (address, length)
            )
        if address + length > self.size_bytes:
            raise MemoryAccessError(
                "access [%d, %d) is out of bounds for memory of %d bytes"
                % (address, address + length, self.size_bytes)
            )

    # -- allocator -----------------------------------------------------------------

    def allocate(self, length: int) -> int:
        """Reserve ``length`` bytes and return the start address.

        A first-fit free list is consulted before bump allocation; memory
        grows automatically up to ``max_pages``.
        """
        if length <= 0:
            raise AllocationError("allocation length must be positive, got %r" % length)
        # First fit from the free list.
        for address, size in sorted(self._free_list.items()):
            if size >= length:
                del self._free_list[address]
                if size > length:
                    self._free_list[address + length] = size - length
                self._allocations[address] = length
                self._meter_allocate(length)
                return address
        address = self._bump
        end = address + length
        if end > self.size_bytes:
            needed_pages = -(-(end - self.size_bytes) // WASM_PAGE_SIZE)
            self.grow(needed_pages)
        self._bump = end
        self._allocations[address] = length
        self._meter_allocate(length)
        return address

    def _meter_allocate(self, length: int) -> None:
        # In modeled mode the meter tracks logical allocations instead of
        # backing pages.  Free-list reuse charges too: ``deallocate`` freed
        # those bytes from the meter, so re-occupying the slot re-allocates
        # them (skipping it made the paired deallocate an over-free).
        if self._meter is not None and not self._materialize:
            self._meter.allocate(length)

    def deallocate(self, address: int) -> int:
        """Release an allocation; returns the freed length."""
        if address not in self._allocations:
            raise AllocationError("address %d is not an active allocation" % address)
        length = self._allocations.pop(address)
        self._free_list[address] = length
        self._segments.pop(address, None)
        if self._meter is not None and not self._materialize:
            self._meter.free(length)
        return length

    def allocation_size(self, address: int) -> int:
        """Size of the live allocation starting at ``address``."""
        if address not in self._allocations:
            raise AllocationError("address %d is not an active allocation" % address)
        return self._allocations[address]

    @property
    def allocated_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def live_allocations(self) -> int:
        return len(self._allocations)

    # -- raw byte access ----------------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        """Read raw bytes (materialized memories only)."""
        self._check_range(address, length)
        if self._buffer is None:
            raise MemoryAccessError(
                "raw reads require a materialized memory; use read_payload instead"
            )
        return bytes(self._buffer[address : address + length])

    def write(self, address: int, data: bytes) -> None:
        """Write raw bytes (materialized memories only)."""
        self._check_range(address, len(data))
        if self._buffer is None:
            raise MemoryAccessError(
                "raw writes require a materialized memory; use write_payload instead"
            )
        self._buffer[address : address + len(data)] = data

    # -- payload access -------------------------------------------------------------------

    def write_payload(self, address: int, payload: Payload) -> None:
        """Store a payload at ``address`` (which must be a live allocation).

        Real payloads are written into the backing array when the memory is
        materialized; virtual payloads are tracked as segments.
        """
        if address not in self._allocations:
            raise MemoryAccessError(
                "payloads must be written into an active allocation (address=%d)" % address
            )
        if self._allocations[address] < payload.size:
            raise MemoryAccessError(
                "allocation of %d bytes at %d cannot hold a %d byte payload"
                % (self._allocations[address], address, payload.size)
            )
        if payload.is_real and self._materialize:
            self.write(address, payload.data)  # type: ignore[arg-type]
        self._segments[address] = payload

    def read_payload(self, address: int, length: int) -> Payload:
        """Read the payload stored at ``address``."""
        segment = self._segments.get(address)
        if segment is not None:
            if segment.size != length:
                raise MemoryAccessError(
                    "stored payload at %d has %d bytes, read requested %d"
                    % (address, segment.size, length)
                )
            if segment.is_real and self._materialize:
                # Re-read from the backing store so corruption would be caught.
                return Payload.from_bytes(self.read(address, length), segment.content_type)
            return segment
        if self._buffer is None:
            raise MemoryAccessError("no payload stored at address %d" % address)
        return Payload.from_bytes(self.read(address, length))

    def store_payload(self, payload: Payload) -> int:
        """Allocate space for ``payload``, write it, and return the address."""
        if payload.size == 0:
            raise PayloadError("cannot store an empty payload")
        address = self.allocate(payload.size)
        self.write_payload(address, payload)
        return address

    def locate(self, address: int) -> "tuple[int, int]":
        """Return the (pointer, length) pair for the allocation at ``address``."""
        return address, self.allocation_size(address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "materialized" if self._materialize else "modeled"
        return "LinearMemory(%s, pages=%d, allocations=%d)" % (
            mode,
            self._pages,
            len(self._allocations),
        )
