"""Shared summary statistics: percentiles and latency summaries.

Sustained-load experiments care about the tail, not just the mean: an
autoscaler that keeps p50 flat while p99 explodes is not keeping its SLO.
Every consumer of latency distributions (the traffic engine's SLO accounting,
trace replay, figure summaries) goes through these helpers so "p95" means the
same thing everywhere in the reproduction.

Percentiles use linear interpolation between closest ranks (the numpy
default), which is exact for the small sample counts the simulated
experiments produce and monotone in the requested quantile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


class StatsError(ValueError):
    """Raised for empty samples or out-of-range quantiles."""


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise StatsError("cannot take a percentile of zero samples")
    if not 0.0 <= q <= 100.0:
        raise StatsError("percentile must be in [0, 100], got %r" % q)
    ordered = sorted(values)
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def p50(values: Sequence[float]) -> float:
    """Median."""
    return percentile(values, 50.0)


def p95(values: Sequence[float]) -> float:
    """95th percentile."""
    return percentile(values, 95.0)


def p99(values: Sequence[float]) -> float:
    """99th percentile."""
    return percentile(values, 99.0)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise StatsError("cannot take the mean of zero samples")
    return sum(values) / len(values)


@dataclass(frozen=True)
class LatencySummary:
    """One latency distribution collapsed to the numbers reports print."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_samples(cls, values: Sequence[float]) -> "LatencySummary":
        if not values:
            raise StatsError("cannot summarize zero samples")
        return cls(
            count=len(values),
            mean_s=mean(values),
            p50_s=p50(values),
            p95_s=p95(values),
            p99_s=p99(values),
            max_s=max(values),
        )

    @classmethod
    def empty(cls) -> "LatencySummary":
        """The all-zero summary (no requests completed)."""
        return cls(count=0, mean_s=0.0, p50_s=0.0, p95_s=0.0, p99_s=0.0, max_s=0.0)

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }
