"""Metrics: the latency / throughput / CPU / RAM measurements of the paper.

:class:`~repro.metrics.records.TransferMetrics` captures one data transfer;
:class:`~repro.metrics.records.LedgerWindow` measures it by snapshotting the
cost ledger around the transfer; collectors aggregate repetitions and fan-out
branches; the report module renders the tables the experiment harness prints.
"""

from repro.metrics.records import LedgerWindow, TransferMetrics
from repro.metrics.collector import MetricsCollector, AggregateMetrics
from repro.metrics.report import format_latency_summaries, format_table, format_figure_result
from repro.metrics.stats import LatencySummary, mean, p50, p95, p99, percentile
from repro.metrics.export import (
    figure_from_csv,
    figure_from_dict,
    figure_from_json,
    figure_to_csv,
    figure_to_dict,
    figure_to_json,
    multi_tenant_to_figure,
    traffic_from_figure,
    traffic_to_figure,
    write_figure,
)
from repro.metrics.timeline import export_chrome_trace, ledger_to_spans

__all__ = [
    "export_chrome_trace",
    "ledger_to_spans",
    "LedgerWindow",
    "TransferMetrics",
    "MetricsCollector",
    "AggregateMetrics",
    "LatencySummary",
    "percentile",
    "mean",
    "p50",
    "p95",
    "p99",
    "format_table",
    "format_figure_result",
    "format_latency_summaries",
    "figure_to_csv",
    "figure_to_dict",
    "figure_to_json",
    "figure_from_csv",
    "figure_from_dict",
    "figure_from_json",
    "traffic_to_figure",
    "traffic_from_figure",
    "multi_tenant_to_figure",
    "write_figure",
]
