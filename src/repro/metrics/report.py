"""Plain-text rendering of experiment results.

The benchmark harness prints one table per figure with the same rows/series
the paper reports; these helpers keep the formatting in one place so the
tables stay consistent across figures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Union

from repro.metrics.stats import LatencySummary

Number = Union[int, float]


def _format_cell(value: object, precision: int = 4) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return "%.3e" % value
        return ("%." + str(precision) + "g") % value
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width table."""
    materialized: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_figure_result(
    title: str,
    x_label: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    unit: str = "",
) -> str:
    """Render one figure panel: x values down the rows, one column per series."""
    headers = [x_label] + ["%s%s" % (name, " (%s)" % unit if unit else "") for name in series]
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_latency_summaries(
    summaries: Mapping[str, LatencySummary],
    title: str = "",
    label: str = "series",
    unit: str = "s",
) -> str:
    """Render one row of distribution statistics per labelled summary.

    This is how every latency distribution in the reproduction is printed:
    figure summaries, trace replays and the traffic engine's SLO tables all
    share the same columns (count, mean, p50, p95, p99, max).

    Summaries with no samples render their statistics as ``n/a`` — a tenant
    or class that saw zero requests has no distribution, and printing zeros
    would read as "instant", not "absent".
    """
    headers = [label, "count"] + ["%s (%s)" % (h, unit) for h in ("mean", "p50", "p95", "p99", "max")]
    rows = [
        [name, s.count, s.mean_s, s.p50_s, s.p95_s, s.p99_s, s.max_s]
        if s.count
        else [name, 0, "n/a", "n/a", "n/a", "n/a", "n/a"]
        for name, s in summaries.items()
    ]
    return format_table(headers, rows, title=title)


def improvement_percent(baseline: float, candidate: float) -> float:
    """Relative improvement of ``candidate`` over ``baseline`` in percent."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - candidate) / baseline


def speedup(baseline: float, candidate: float) -> float:
    """How many times larger ``baseline`` is than ``candidate``."""
    if candidate <= 0:
        return float("inf")
    return baseline / candidate
