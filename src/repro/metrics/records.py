"""Transfer metrics and the ledger window used to measure them.

The paper's latency metric is "the duration from when function a initiates
the data transfer to when function b has successfully received the message"
(Sec. 6.1).  A :class:`LedgerWindow` brackets exactly that interval on the
cost ledger; the resulting :class:`TransferMetrics` carries the breakdown
needed for every figure panel (total, serialization, Wasm VM I/O, CPU split,
RAM, copies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.ledger import (
    SERIALIZATION_CATEGORIES,
    CostCategory,
    CostLedger,
    CpuDomain,
)


@dataclass(frozen=True)
class TransferMetrics:
    """Measurements for one logical data transfer (or one fan-out branch)."""

    mode: str
    payload_bytes: int
    total_latency_s: float
    serialization_s: float
    wasm_io_s: float
    transfer_s: float
    cpu_user_s: float
    cpu_kernel_s: float
    copied_bytes: int
    reference_bytes: int
    syscalls: int
    context_switches: int
    peak_memory_mb: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: Charged seconds per ledger shard ("" for a standalone ledger) — the
    #: per-node attribution of this transfer's cost.
    node_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def cpu_total_s(self) -> float:
        return self.cpu_user_s + self.cpu_kernel_s

    @property
    def throughput_rps(self) -> float:
        """Requests per second, extrapolated from a single transfer (Sec. 6.1)."""
        if self.total_latency_s <= 0:
            return float("inf")
        return 1.0 / self.total_latency_s

    @property
    def serialization_throughput_rps(self) -> float:
        """Throughput considering only the serialization component."""
        if self.serialization_s <= 0:
            return float("inf")
        return 1.0 / self.serialization_s

    @property
    def serialization_share(self) -> float:
        """Fraction of total latency spent (de)serializing."""
        if self.total_latency_s <= 0:
            return 0.0
        return self.serialization_s / self.total_latency_s

    @property
    def wasm_io_share(self) -> float:
        if self.total_latency_s <= 0:
            return 0.0
        return self.wasm_io_s / self.total_latency_s

    def cpu_percent(self, cores: int = 1) -> float:
        if self.total_latency_s <= 0:
            return 0.0
        return 100.0 * self.cpu_total_s / (self.total_latency_s * cores)

    def user_cpu_percent(self, cores: int = 1) -> float:
        if self.total_latency_s <= 0:
            return 0.0
        return 100.0 * self.cpu_user_s / (self.total_latency_s * cores)

    def kernel_cpu_percent(self, cores: int = 1) -> float:
        if self.total_latency_s <= 0:
            return 0.0
        return 100.0 * self.cpu_kernel_s / (self.total_latency_s * cores)

    def with_total_latency(self, total_latency_s: float) -> "TransferMetrics":
        """A copy with an overridden total latency (fan-out makespans)."""
        return TransferMetrics(
            mode=self.mode,
            payload_bytes=self.payload_bytes,
            total_latency_s=total_latency_s,
            serialization_s=self.serialization_s,
            wasm_io_s=self.wasm_io_s,
            transfer_s=self.transfer_s,
            cpu_user_s=self.cpu_user_s,
            cpu_kernel_s=self.cpu_kernel_s,
            copied_bytes=self.copied_bytes,
            reference_bytes=self.reference_bytes,
            syscalls=self.syscalls,
            context_switches=self.context_switches,
            peak_memory_mb=self.peak_memory_mb,
            breakdown=dict(self.breakdown),
            node_seconds=dict(self.node_seconds),
        )


#: Categories counted as "transfer" (everything that moves bytes, minus
#: serialization and Wasm VM I/O which the paper breaks out separately).
_TRANSFER_CATEGORIES = (
    CostCategory.TRANSFER,
    CostCategory.MEMCPY,
    CostCategory.SYSCALL,
    CostCategory.CONTEXT_SWITCH,
    CostCategory.IPC,
    CostCategory.NETWORK,
    CostCategory.SPLICE,
    CostCategory.HTTP,
)


class LedgerWindow:
    """Context manager measuring the ledger activity inside a ``with`` block.

    Works over a plain :class:`CostLedger` and over the sharded
    :class:`~repro.sim.ledger.ClusterLedger` alike: the window brackets the
    interval with a :meth:`~repro.sim.ledger.CostLedger.snapshot`, so charges
    are captured whichever node shard they landed on.
    """

    def __init__(self, ledger: CostLedger, mode: str, payload_bytes: int) -> None:
        self.ledger = ledger
        self.mode = mode
        self.payload_bytes = payload_bytes
        self._start: Optional[object] = None
        self._start_time = 0.0
        self._metrics: Optional[TransferMetrics] = None

    def __enter__(self) -> "LedgerWindow":
        self._start = self.ledger.snapshot()
        self._start_time = self.ledger.clock.now
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        self._metrics = self._build()

    @property
    def metrics(self) -> TransferMetrics:
        if self._metrics is None:
            raise RuntimeError("LedgerWindow metrics requested before the window closed")
        return self._metrics

    def _build(self) -> TransferMetrics:
        charges = self.ledger.charges_since(self._start)
        total = self.ledger.clock.now - self._start_time
        serialization = sum(c.seconds for c in charges if c.category in SERIALIZATION_CATEGORIES)
        wasm_io = sum(c.seconds for c in charges if c.category is CostCategory.WASM_IO)
        transfer = sum(c.seconds for c in charges if c.category in _TRANSFER_CATEGORIES)
        cpu_user = sum(c.seconds for c in charges if c.cpu_domain is CpuDomain.USER)
        cpu_kernel = sum(c.seconds for c in charges if c.cpu_domain is CpuDomain.KERNEL)
        copied = sum(c.nbytes for c in charges if c.copied)
        referenced = sum(c.nbytes for c in charges if not c.copied and c.nbytes)
        syscalls = sum(c.units for c in charges if c.category is CostCategory.SYSCALL)
        switches = sum(1 for c in charges if c.category is CostCategory.CONTEXT_SWITCH)
        breakdown: Dict[str, float] = {}
        node_seconds: Dict[str, float] = {}
        for c in charges:
            breakdown[c.category.value] = breakdown.get(c.category.value, 0.0) + c.seconds
            node_seconds[c.node] = node_seconds.get(c.node, 0.0) + c.seconds
        return TransferMetrics(
            mode=self.mode,
            payload_bytes=self.payload_bytes,
            total_latency_s=total,
            serialization_s=serialization,
            wasm_io_s=wasm_io,
            transfer_s=transfer,
            cpu_user_s=cpu_user,
            cpu_kernel_s=cpu_kernel,
            copied_bytes=copied,
            reference_bytes=referenced,
            syscalls=syscalls,
            context_switches=switches,
            peak_memory_mb=self.ledger.peak_memory_mb(),
            breakdown=breakdown,
            node_seconds=node_seconds,
        )
