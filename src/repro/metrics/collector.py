"""Aggregation of repeated measurements and fan-out branches.

The paper runs every configuration 10 times and reports means (Sec. 6.2).
:class:`MetricsCollector` accumulates :class:`TransferMetrics` samples and
produces an :class:`AggregateMetrics` with mean / min / max per field, plus a
makespan-aware aggregate for fan-out experiments.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metrics.records import TransferMetrics


class CollectorError(RuntimeError):
    """Raised when aggregating an empty collection."""


@dataclass(frozen=True)
class AggregateMetrics:
    """Summary statistics over repeated transfers of one configuration."""

    mode: str
    payload_bytes: int
    samples: int
    mean_latency_s: float
    min_latency_s: float
    max_latency_s: float
    stdev_latency_s: float
    mean_serialization_s: float
    mean_wasm_io_s: float
    mean_transfer_s: float
    mean_cpu_user_s: float
    mean_cpu_kernel_s: float
    mean_peak_memory_mb: float
    mean_copied_bytes: float
    mean_syscalls: float
    #: Mean charged seconds per ledger shard (per-node attribution).
    mean_node_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_throughput_rps(self) -> float:
        if self.mean_latency_s <= 0:
            return float("inf")
        return 1.0 / self.mean_latency_s

    @property
    def mean_serialization_throughput_rps(self) -> float:
        if self.mean_serialization_s <= 0:
            return float("inf")
        return 1.0 / self.mean_serialization_s

    @property
    def mean_cpu_total_s(self) -> float:
        return self.mean_cpu_user_s + self.mean_cpu_kernel_s

    def cpu_percent(self, cores: int = 1) -> float:
        if self.mean_latency_s <= 0:
            return 0.0
        return 100.0 * self.mean_cpu_total_s / (self.mean_latency_s * cores)

    def user_cpu_percent(self, cores: int = 1) -> float:
        if self.mean_latency_s <= 0:
            return 0.0
        return 100.0 * self.mean_cpu_user_s / (self.mean_latency_s * cores)

    def kernel_cpu_percent(self, cores: int = 1) -> float:
        if self.mean_latency_s <= 0:
            return 0.0
        return 100.0 * self.mean_cpu_kernel_s / (self.mean_latency_s * cores)


class MetricsCollector:
    """Accumulates per-transfer samples grouped by (mode, payload size)."""

    def __init__(self) -> None:
        self._samples: Dict[tuple, List[TransferMetrics]] = {}

    def add(self, metrics: TransferMetrics) -> None:
        key = (metrics.mode, metrics.payload_bytes)
        self._samples.setdefault(key, []).append(metrics)

    def extend(self, samples: Sequence[TransferMetrics]) -> None:
        for sample in samples:
            self.add(sample)

    def samples(self, mode: str, payload_bytes: int) -> List[TransferMetrics]:
        return list(self._samples.get((mode, payload_bytes), []))

    def aggregate(self, mode: str, payload_bytes: int) -> AggregateMetrics:
        samples = self._samples.get((mode, payload_bytes))
        if not samples:
            raise CollectorError(
                "no samples for mode=%r payload=%d" % (mode, payload_bytes)
            )
        return aggregate_samples(samples)

    def aggregates(self) -> List[AggregateMetrics]:
        return [aggregate_samples(v) for v in self._samples.values()]

    def __len__(self) -> int:
        return sum(len(v) for v in self._samples.values())


def aggregate_samples(samples: Sequence[TransferMetrics]) -> AggregateMetrics:
    """Collapse a list of samples (same mode and size) into summary statistics."""
    if not samples:
        raise CollectorError("cannot aggregate an empty sample list")
    modes = {s.mode for s in samples}
    sizes = {s.payload_bytes for s in samples}
    if len(modes) != 1 or len(sizes) != 1:
        raise CollectorError(
            "samples mix modes (%s) or sizes (%s); aggregate them separately" % (modes, sizes)
        )
    latencies = [s.total_latency_s for s in samples]
    nodes = sorted({node for s in samples for node in s.node_seconds})
    node_means = {
        node: statistics.fmean(s.node_seconds.get(node, 0.0) for s in samples)
        for node in nodes
    }
    return AggregateMetrics(
        mode=samples[0].mode,
        payload_bytes=samples[0].payload_bytes,
        samples=len(samples),
        mean_latency_s=statistics.fmean(latencies),
        min_latency_s=min(latencies),
        max_latency_s=max(latencies),
        stdev_latency_s=statistics.pstdev(latencies) if len(latencies) > 1 else 0.0,
        mean_serialization_s=statistics.fmean(s.serialization_s for s in samples),
        mean_wasm_io_s=statistics.fmean(s.wasm_io_s for s in samples),
        mean_transfer_s=statistics.fmean(s.transfer_s for s in samples),
        mean_cpu_user_s=statistics.fmean(s.cpu_user_s for s in samples),
        mean_cpu_kernel_s=statistics.fmean(s.cpu_kernel_s for s in samples),
        mean_peak_memory_mb=statistics.fmean(s.peak_memory_mb for s in samples),
        mean_copied_bytes=statistics.fmean(s.copied_bytes for s in samples),
        mean_syscalls=statistics.fmean(s.syscalls for s in samples),
        mean_node_seconds=node_means,
    )
